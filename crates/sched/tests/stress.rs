//! Scheduler stress: 16 mixed-priority jobs plus a cached-chain tenant
//! pair on 4 ranks under a tight memory budget, wrapped in a watchdog.
//! The service must retire every job deterministically, never violate
//! the node budget (the pool's hard cap plus the admission reservations
//! plus the cross-job cache's retained pages), and end with the pool
//! fully credited.

use std::time::{Duration, Instant};

use mimir_apps::wordcount::{wordcount_mimir, WcOptions};
use mimir_core::{lock_cache, typed, KvMeta};
use mimir_datagen::UniformWords;
use mimir_io::IoModel;
use mimir_mem::MemPool;
use mimir_mpi::{run_world_on, Comm, TransportKind};
use mimir_obs::{CacheCounters, CacheNameRecord, MemCounters, RankReport, Recorder};
use mimir_sched::{JobOutcome, JobService, JobSpec, JobYield, SchedConfig};

const RANKS: usize = 4;
/// Tight: a handful of concurrent WordCounts saturate it, forcing the
/// admission queue to actually queue.
const BUDGET: usize = 6 << 20;
const JOBS: usize = 16;
const WATCHDOG: Duration = Duration::from_secs(120);
/// KVs each rank's chain producer emits (16 B apiece): the cached
/// dataset holds ~512 KiB per rank against the budget while the
/// WordCount tenants churn through admission.
const CHAIN_KVS_PER_RANK: u64 = 32 * 1024;
/// The cached dataset's name, shared by the producer/consumer pair.
const CHAIN_NAME: &str = "chain.data";

fn word_total(data: &[u8]) -> u64 {
    // Each encoded record is `word \0 count(8B le)`; sum the counts.
    let mut total = 0;
    let mut i = 0;
    while i < data.len() {
        let nul = i + data[i..].iter().position(|&b| b == 0).unwrap();
        total += u64::from_le_bytes(data[nul + 1..nul + 9].try_into().unwrap());
        i = nul + 9;
    }
    total
}

/// When `MIMIR_TRACE` is set, assembles this rank's report (comm, pool,
/// job records, trace events), gathers every report onto rank 0, and
/// writes `<MIMIR_TRACE_DIR|traces>/sched_stress.jsonl` plus the chrome
/// trace — the input `mimir-doctor` consumes in CI.
fn export_trace(
    comm: &mut Comm,
    pool: &MemPool,
    records: Vec<mimir_obs::JobRecord>,
    cache: (CacheCounters, Vec<CacheNameRecord>),
) {
    let mut r = RankReport::new(comm.rank());
    r.ranks = comm.size() as u64;
    let cs = comm.stats();
    r.comm = cs.counters();
    r.waits = cs.wait_counters();
    let ps = pool.stats();
    r.mem = MemCounters {
        pages_allocated: ps.page_allocs,
        pages_recycled: ps.page_frees,
        bytes_in_use: ps.used as u64,
        peak_bytes: ps.peak as u64,
        budget_bytes: if ps.budget == usize::MAX {
            0
        } else {
            ps.budget as u64
        },
        oom_events: ps.oom_events,
    };
    r.jobs = records;
    (r.cache, r.cache_names) = cache;
    if let Some(rec) = mimir_obs::take() {
        r.events = rec.events();
        r.events_dropped = rec.dropped();
    }
    let payload = r.to_json_string().into_bytes();
    if let Some(gathered) = comm.gather(0, payload) {
        let reports: Vec<RankReport> = gathered
            .iter()
            .map(|b| RankReport::from_json_string(std::str::from_utf8(b).unwrap()).unwrap())
            .collect();
        let dir = std::path::PathBuf::from(
            std::env::var("MIMIR_TRACE_DIR").unwrap_or_else(|_| "traces".into()),
        );
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("sched_stress.jsonl"),
            mimir_obs::jsonl_string(&reports),
        )
        .unwrap();
        std::fs::write(
            dir.join("sched_stress.trace.json"),
            mimir_obs::chrome_trace(&reports).to_string(),
        )
        .unwrap();
        eprintln!(
            "trace: wrote {}/sched_stress.{{jsonl,trace.json}}",
            dir.display()
        );
    }
}

type RankResult = (
    Vec<Option<JobOutcome>>,
    u64,
    usize,
    usize,
    (Option<JobOutcome>, Option<JobOutcome>),
    u64,
);

fn stress_world() -> Vec<RankResult> {
    let epoch = Instant::now();
    run_world_on(TransportKind::from_env(), RANKS, move |comm| {
        if mimir_obs::env_enabled() {
            mimir_obs::install(Recorder::with_epoch(
                comm.rank(),
                mimir_obs::env_capacity(),
                epoch,
            ));
        }
        let pool = MemPool::new(format!("node{}", comm.rank()), 64 * 1024, BUDGET).unwrap();
        let cfg = SchedConfig {
            queue_cap: 8,
            max_running: 3,
            max_retries: 3,
        };
        let mut svc = JobService::new(comm, pool.clone(), IoModel::free(), cfg);

        let ids: Vec<u64> = (0..JOBS as u64)
            .map(|j| {
                let bytes_per_rank = 4 * 1024 + (j as usize % 4) * 4 * 1024;
                let spec = JobSpec::new(format!("wc{j}"), 256 * 1024, move |ctx| {
                    let text =
                        UniformWords::new(j + 1).generate(ctx.rank(), ctx.size(), bytes_per_rank);
                    let (mut counts, _m) = wordcount_mimir(ctx, &text, &WcOptions::default())?;
                    counts.sort();
                    let mut data = Vec::new();
                    for (word, n) in &counts {
                        data.extend_from_slice(word);
                        data.push(0);
                        data.extend_from_slice(&n.to_le_bytes());
                    }
                    let kvs = counts.len() as u64;
                    Ok(JobYield {
                        data,
                        kvs_out: kvs,
                        spill_bytes: 0,
                    })
                })
                .priority(j % 3); // mixed priorities
                svc.submit(spec)
            })
            .collect();

        // Cached-chain tenant pair: the producer stashes a partitioned
        // dataset in the service's cross-job cache (its pages stay
        // charged against the shared budget, visible to admission); the
        // consumer waits for the name to appear, chains over it with the
        // shuffle elided, and releases it so the pool credits to zero.
        let producer = JobSpec::new("chain.produce", 256 * 1024, move |ctx| {
            let rank = ctx.rank() as u64;
            let out = ctx
                .job()
                .kv_meta(KvMeta::fixed(8, 8))
                .output_cached(CHAIN_NAME)
                .map_shuffle(&mut |em| {
                    for i in 0..CHAIN_KVS_PER_RANK {
                        em.emit(
                            &typed::enc_u64(rank * CHAIN_KVS_PER_RANK + i),
                            &typed::enc_u64(1),
                        )?;
                    }
                    Ok(())
                })?;
            Ok(JobYield {
                data: Vec::new(),
                kvs_out: out.stats.kvs_out,
                spill_bytes: 0,
            })
        })
        .priority(10);
        let consumer = JobSpec::new("chain.consume", 256 * 1024, move |ctx| {
            let deadline = Instant::now() + Duration::from_secs(60);
            while !ctx.cache_contains(CHAIN_NAME) {
                if Instant::now() > deadline {
                    return Err(mimir_core::MimirError::Cache(
                        "chain.consume: the producer never cached its output".into(),
                    ));
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            let mut sum = 0u64;
            ctx.job()
                .kv_meta(KvMeta::fixed(8, 8))
                .input_cached(CHAIN_NAME)
                .chain_shuffle(&mut |k, v, em| {
                    sum += typed::dec_u64(v);
                    em.emit(k, v)
                })?;
            ctx.cache_remove(CHAIN_NAME);
            Ok(JobYield {
                data: Vec::new(),
                kvs_out: sum,
                spill_bytes: 0,
            })
        })
        .priority(9);
        let pid = svc.submit(producer);
        let cid = svc.submit(consumer);

        svc.run_until_idle();

        let outcomes: Vec<_> = ids.iter().map(|&id| svc.outcome(id)).collect();
        let chain_outcomes = (svc.outcome(pid), svc.outcome(cid));
        let chain_kvs = svc.take_output(cid).map(|y| y.kvs_out).unwrap_or(0);
        // Deterministic content check: the total word count across all
        // ranks of every job equals the generated word count.
        let mut words_counted = 0;
        for &id in &ids {
            if let Some(y) = svc.take_output(id) {
                words_counted += word_total(&y.data);
            }
        }
        let records = svc.job_records();
        let (peak, used) = (svc.pool().peak(), svc.pool().used());
        let cache = {
            let shared = svc.cache();
            let guard = lock_cache(&shared);
            let s = guard.stats();
            let counters = CacheCounters {
                hits: s.hits,
                misses: s.misses,
                elisions: s.elisions,
                evictions: s.evictions,
                reloads: s.reloads,
                cached_bytes: s.cached_bytes,
            };
            let names = guard
                .entry_snapshots()
                .into_iter()
                .map(|(name, bytes, elisions)| CacheNameRecord {
                    name,
                    bytes,
                    elisions,
                })
                .collect();
            (counters, names)
        };
        drop(svc);
        if mimir_obs::env_enabled() {
            export_trace(comm, &pool, records, cache);
        }
        (
            outcomes,
            words_counted,
            peak,
            used,
            chain_outcomes,
            chain_kvs,
        )
    })
}

#[test]
fn sixteen_mixed_priority_jobs_on_a_tight_budget() {
    // When the telemetry plane is armed (MIMIR_LIVE_DIR set — CI does
    // this), attach an in-process online doctor to the live directory
    // for the duration of the stress: it tails the per-rank sidecars,
    // evaluates the live rules, and leaves `findings.jsonl` behind as
    // the live-findings log CI uploads.
    let live_dir = std::env::var_os("MIMIR_LIVE_DIR").map(std::path::PathBuf::from);

    // Watchdog: the whole SPMD run must finish well inside the bound —
    // a deadlocked vote or a lost wakeup would otherwise hang CI.
    let start = Instant::now();
    let runner = std::thread::spawn(stress_world);
    let mut watcher = live_dir.map(mimir_doctor::LiveWatcher::new);
    while !runner.is_finished() {
        assert!(
            start.elapsed() < WATCHDOG,
            "watchdog: scheduler stress did not finish within {WATCHDOG:?}"
        );
        if let Some(w) = &mut watcher {
            w.step();
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let outs = runner.join().unwrap();
    if let Some(w) = &mut watcher {
        // Final step drains whatever the ranks published on their way
        // out, then the fired findings land in the test log for triage.
        w.step();
        eprintln!("{}", w.render());
    }

    let mut per_rank_words = Vec::new();
    let mut chain_total = 0u64;
    for (outcomes, words, peak, used, chain_outcomes, chain_kvs) in outs {
        assert_eq!(outcomes.len(), JOBS);
        for (j, outcome) in outcomes.iter().enumerate() {
            assert_eq!(
                *outcome,
                Some(JobOutcome::Done),
                "job {j} should finish despite the tight budget"
            );
        }
        assert_eq!(
            chain_outcomes,
            (Some(JobOutcome::Done), Some(JobOutcome::Done)),
            "the cached-chain tenants should finish"
        );
        assert!(
            peak <= BUDGET,
            "budget violation: peak {peak} B over the {BUDGET} B node budget"
        );
        assert_eq!(
            used, 0,
            "all reservations, pages, and cached datasets credited back"
        );
        per_rank_words.push(words);
        chain_total += chain_kvs;
    }
    // Each rank's consumer summed its own cached partition; the global
    // sum must equal every KV the producers emitted, exactly once.
    assert_eq!(
        chain_total,
        RANKS as u64 * CHAIN_KVS_PER_RANK,
        "the chained consumer lost or duplicated cached KVs"
    );
    // Every rank holds a deterministic slice of each job's output, and
    // the world-wide totals must match the generated corpora exactly:
    // the sum over ranks is the same regardless of scheduling order.
    let total: u64 = per_rank_words.iter().sum();
    assert!(total > 0, "the jobs counted nothing");
    let rerun_total: u64 = {
        let outs = {
            let runner = std::thread::spawn(stress_world);
            runner.join().unwrap()
        };
        outs.iter().map(|(_, words, _, _, _, _)| words).sum()
    };
    assert_eq!(
        total, rerun_total,
        "scheduling nondeterminism changed job outputs"
    );
}
