//! Cancellation accounting: a cancelled job must release 100% of its
//! memory — the admission reservation *and* every pool page its
//! containers held when the cooperative vote fired. Because the vote is
//! collective, every rank unwinds at the same phase boundary, so the
//! credit happens on every node.

use mimir_core::KvMeta;
use mimir_io::IoModel;
use mimir_mem::MemPool;
use mimir_mpi::run_world;
use mimir_sched::{JobOutcome, JobService, JobSpec, JobState, JobYield, SchedConfig};

const RANKS: usize = 2;
const BUDGET: usize = 16 << 20;

#[test]
fn cancelled_job_releases_every_reserved_and_held_byte() {
    let outs = run_world(RANKS, |comm| {
        let pool = MemPool::new(format!("node{}", comm.rank()), 64 * 1024, BUDGET).unwrap();
        let used_before = pool.used();
        let mut svc = JobService::new(comm, pool, IoModel::free(), SchedConfig::default());

        // A long-running job: thousands of tiny shuffles, each opening
        // with a cancellation checkpoint. Big enough that the cancel
        // below lands mid-run; finite so a broken cancellation fails the
        // outcome assertion instead of hanging the suite.
        let spec = JobSpec::new("long-runner", 1 << 20, |ctx| {
            for i in 0..20_000u64 {
                let out = ctx
                    .job()
                    .kv_meta(KvMeta::cstr_key_u64_val())
                    .out_meta(KvMeta::cstr_key_u64_val())
                    .map_shuffle(&mut |em| {
                        em.emit(b"key", &i.to_le_bytes())?;
                        Ok(())
                    })?;
                out.output.drain(|_k, _v| Ok(()))?;
            }
            Ok(JobYield::default())
        });

        let id = svc.submit(spec);
        // Drive until the job is admitted and running, then cancel.
        while svc.state(id) != Some(JobState::Running) {
            svc.tick();
        }
        let reserved_while_running = svc.pool().used();
        svc.cancel(id);
        svc.run_until_idle();

        (
            svc.outcome(id),
            svc.take_output(id).is_none(),
            used_before,
            reserved_while_running,
            svc.pool().used(),
        )
    });

    for (outcome, no_output, used_before, reserved_while_running, used_after) in outs {
        assert_eq!(outcome, Some(JobOutcome::Cancelled));
        assert!(no_output, "a cancelled job yields no output");
        assert!(
            reserved_while_running >= 1 << 20,
            "the admission reservation was charged while running"
        );
        assert_eq!(
            used_after, used_before,
            "cancellation must release 100% of reservations and pages"
        );
    }
}

/// The cancellation surfaces as `MimirError::Cancelled` inside the
/// body too — a job that wants to clean up external state can observe
/// it before returning the error.
#[test]
fn body_observes_cancelled_error_at_a_phase_boundary() {
    let outs = run_world(RANKS, |comm| {
        let pool = MemPool::new(format!("node{}", comm.rank()), 64 * 1024, BUDGET).unwrap();
        let mut svc = JobService::new(comm, pool, IoModel::free(), SchedConfig::default());
        let spec = JobSpec::new("observer", 64 * 1024, |ctx| {
            for _ in 0..20_000u64 {
                let r = ctx
                    .job()
                    .kv_meta(KvMeta::cstr_key_u64_val())
                    .out_meta(KvMeta::cstr_key_u64_val())
                    .map_shuffle(&mut |em| {
                        em.emit(b"key", &1u64.to_le_bytes())?;
                        Ok(())
                    });
                match r {
                    Ok(out) => out.output.drain(|_k, _v| Ok(()))?,
                    // The body sees the cancellation as an ordinary
                    // error — the hook for external cleanup.
                    Err(e) if e.is_cancelled() => return Err(e),
                    Err(e) => panic!("expected only a cancellation, got {e}"),
                }
            }
            panic!("ran to completion without seeing the cancel");
        });
        let id = svc.submit(spec);
        while svc.state(id) != Some(mimir_sched::JobState::Running) {
            svc.tick();
        }
        svc.cancel(id);
        svc.run_until_idle();
        svc.outcome(id)
    });
    for outcome in outs {
        assert_eq!(outcome, Some(JobOutcome::Cancelled));
    }
}
