//! # mimir — memory-efficient MapReduce for large parallel systems
//!
//! One-stop facade for the Mimir reproduction (IPDPS 2017, Gao et al.):
//! re-exports the framework ([`core`]), the substrates it runs on
//! ([`mem`], [`mpi`], [`io`]), the MR-MPI baseline ([`mrmpi`]), the
//! workload generators ([`datagen`]), and the three paper benchmarks
//! ([`apps`]).
//!
//! ## Quickstart
//!
//! ```
//! use mimir::prelude::*;
//!
//! // Four ranks (threads), one simulated node with 16 MiB of memory.
//! let nodes = NodeMap::new(4, 4, 64 * 1024, 16 << 20).unwrap();
//! let counts = run_world(4, |comm| {
//!     let pool = nodes.pool_for_rank(comm.rank());
//!     let mut ctx =
//!         MimirContext::new(comm, pool, IoModel::free(), MimirConfig::default()).unwrap();
//!     // WordCount with the paper's KV-hint + partial reduction.
//!     let text: &[u8] = b"to be or not to be\n";
//!     let out = ctx
//!         .job()
//!         .kv_meta(KvMeta::cstr_key_u64_val())
//!         .out_meta(KvMeta::cstr_key_u64_val())
//!         .map_partial_reduce(
//!             &mut |em| {
//!                 for w in text.split(|b| b.is_ascii_whitespace()).filter(|w| !w.is_empty()) {
//!                     em.emit(w, &1u64.to_le_bytes())?;
//!                 }
//!                 Ok(())
//!             },
//!             Box::new(|_k, a, b, out| {
//!                 let sum = u64::from_le_bytes(a.try_into().unwrap())
//!                     + u64::from_le_bytes(b.try_into().unwrap());
//!                 out.extend_from_slice(&sum.to_le_bytes());
//!             }),
//!         )
//!         .unwrap();
//!     let mut local = 0u64;
//!     out.output.drain(|_k, _v| { local += 1; Ok(()) }).unwrap();
//!     local
//! });
//! assert_eq!(counts.iter().sum::<u64>(), 4); // "to", "be", "or", "not"
//! ```

pub use mimir_apps as apps;
pub use mimir_core as core;
pub use mimir_datagen as datagen;
pub use mimir_doctor as doctor;
pub use mimir_io as io;
pub use mimir_mem as mem;
pub use mimir_mpi as mpi;
pub use mimir_sched as sched;
pub use mrmpi;

/// The names most programs need.
pub mod prelude {
    pub use mimir_core::{
        run_iterative_with_recovery, typed, CacheStats, CancelToken, ChainMapFn, CheckpointStore,
        Emitter, JobOutput, JobStats, KvCache, KvContainer, KvMeta, LenHint, MimirConfig,
        MimirContext, MimirError, Partitioner, StagedKvs, ValueIter,
    };
    pub use mimir_datagen::{Graph500, PointGen, UniformWords, WikipediaWords};
    pub use mimir_io::{IoModel, IoModelConfig, SpillStore};
    pub use mimir_mem::{MemPool, NodeMap};
    pub use mimir_mpi::{
        run_world, run_world_on, run_world_result, run_world_result_on, Comm, ReduceOp,
        TransportKind, WorldError,
    };
    pub use mimir_sched::{JobOutcome, JobService, JobSpec, JobState, JobYield, SchedConfig};
    pub use mrmpi::{MapReduce, MrMpiConfig, OocMode};
}
