use crate::{MemError, MemPool, Result};

/// Maps simulated ranks onto simulated compute nodes, one shared
/// [`MemPool`] per node.
///
/// The paper's platforms place 24 (Comet) or 16 (Mira) MPI processes on a
/// node that they collectively must fit inside. Sharing a pool between the
/// ranks of a node reproduces the failure mode behind the weak-scaling
/// results (Figures 10 and 14): a skewed dataset concentrates intermediate
/// KVs on a few ranks, those ranks' *nodes* run out of memory, and the job
/// spills or dies even though the aggregate memory across the machine would
/// have sufficed.
#[derive(Clone)]
pub struct NodeMap {
    ranks_per_node: usize,
    pools: Vec<MemPool>,
}

impl NodeMap {
    /// Builds pools for `n_ranks` ranks packed `ranks_per_node` to a node,
    /// each node holding `node_budget` bytes served in `page_size` pages.
    ///
    /// # Errors
    /// [`MemError::InvalidConfig`] on zero ranks, zero ranks-per-node, or a
    /// page size/budget combination [`MemPool::new`] rejects.
    pub fn new(
        n_ranks: usize,
        ranks_per_node: usize,
        page_size: usize,
        node_budget: usize,
    ) -> Result<Self> {
        if n_ranks == 0 {
            return Err(MemError::InvalidConfig("need at least one rank".into()));
        }
        if ranks_per_node == 0 {
            return Err(MemError::InvalidConfig(
                "need at least one rank per node".into(),
            ));
        }
        let n_nodes = n_ranks.div_ceil(ranks_per_node);
        let pools = (0..n_nodes)
            .map(|n| MemPool::new(format!("node{n}"), page_size, node_budget))
            .collect::<Result<Vec<_>>>()?;
        Ok(Self {
            ranks_per_node,
            pools,
        })
    }

    /// All ranks share one unlimited pool; for tests.
    pub fn unlimited(n_ranks: usize, page_size: usize) -> Self {
        Self {
            ranks_per_node: n_ranks.max(1),
            pools: vec![MemPool::unlimited("node0", page_size)],
        }
    }

    /// The pool backing `rank`'s node.
    ///
    /// # Panics
    /// Panics if `rank` is outside the world this map was built for.
    pub fn pool_for_rank(&self, rank: usize) -> MemPool {
        self.pools[self.node_of(rank)].clone()
    }

    /// The node index hosting `rank`.
    pub fn node_of(&self, rank: usize) -> usize {
        let node = rank / self.ranks_per_node;
        assert!(node < self.pools.len(), "rank {rank} outside node map");
        node
    }

    /// Number of simulated nodes.
    pub fn n_nodes(&self) -> usize {
        self.pools.len()
    }

    /// Ranks packed onto each node.
    pub fn ranks_per_node(&self) -> usize {
        self.ranks_per_node
    }

    /// Iterator over the per-node pools.
    pub fn pools(&self) -> impl Iterator<Item = &MemPool> {
        self.pools.iter()
    }

    /// Largest per-node peak across the machine — the number the paper's
    /// "peak memory usage" plots report (per node, worst case).
    pub fn max_node_peak(&self) -> usize {
        self.pools.iter().map(MemPool::peak).max().unwrap_or(0)
    }

    /// Resets every node pool's peak tracker.
    pub fn reset_peaks(&self) {
        for p in &self.pools {
            p.reset_peak();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_map_to_expected_nodes() {
        let m = NodeMap::new(10, 4, 16, 160).unwrap();
        assert_eq!(m.n_nodes(), 3);
        assert_eq!(m.node_of(0), 0);
        assert_eq!(m.node_of(3), 0);
        assert_eq!(m.node_of(4), 1);
        assert_eq!(m.node_of(9), 2);
    }

    #[test]
    fn same_node_ranks_share_budget() {
        let m = NodeMap::new(4, 2, 16, 32).unwrap();
        let p0 = m.pool_for_rank(0);
        let p1 = m.pool_for_rank(1);
        let _a = p0.alloc_page().unwrap();
        let _b = p1.alloc_page().unwrap();
        assert!(p0.alloc_page().is_err(), "node budget shared by both ranks");
        let p2 = m.pool_for_rank(2);
        assert!(p2.alloc_page().is_ok(), "other node unaffected");
    }

    #[test]
    fn max_node_peak_reports_worst_node() {
        let m = NodeMap::new(4, 2, 16, 64).unwrap();
        let _a = m.pool_for_rank(0).alloc_pages(2).unwrap();
        let _b = m.pool_for_rank(2).alloc_page().unwrap();
        assert_eq!(m.max_node_peak(), 32);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(NodeMap::new(0, 1, 16, 64).is_err());
        assert!(NodeMap::new(4, 0, 16, 64).is_err());
        assert!(NodeMap::new(4, 2, 128, 64).is_err());
    }
}
