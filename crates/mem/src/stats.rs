/// Point-in-time snapshot of a pool's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemStats {
    /// Bytes currently charged.
    pub used: usize,
    /// High-water mark of `used`.
    pub peak: usize,
    /// Hard budget (`usize::MAX` when unlimited).
    pub budget: usize,
    /// Fixed page size.
    pub page_size: usize,
    /// Cumulative page allocations.
    pub page_allocs: u64,
    /// Cumulative page frees.
    pub page_frees: u64,
    /// Allocations refused for exceeding the budget.
    pub oom_events: u64,
}

impl MemStats {
    /// Pages currently outstanding (allocated minus freed).
    pub fn pages_live(&self) -> u64 {
        self.page_allocs - self.page_frees
    }

    /// Peak usage as a fraction of the budget, or `None` when unlimited.
    pub fn peak_fraction(&self) -> Option<f64> {
        (self.budget != usize::MAX).then(|| self.peak as f64 / self.budget as f64)
    }
}

#[cfg(test)]
mod tests {
    use crate::MemPool;

    #[test]
    fn snapshot_reflects_activity() {
        let pool = MemPool::new("t", 32, 320).unwrap();
        let pages = pool.alloc_pages(3).unwrap();
        drop(pages);
        let _held = pool.alloc_page().unwrap();
        let s = pool.stats();
        assert_eq!(s.used, 32);
        assert_eq!(s.peak, 96);
        assert_eq!(s.pages_live(), 1);
        assert!((s.peak_fraction().unwrap() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn unlimited_pool_has_no_peak_fraction() {
        let pool = MemPool::unlimited("t", 32);
        assert_eq!(pool.stats().peak_fraction(), None);
    }
}
