use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use std::sync::Mutex;

use crate::{MemError, MemStats, Page, Reservation, Result};

/// A budgeted memory pool modeling one compute node's DRAM.
///
/// The pool hands out fixed-size [`Page`]s (the paper's fragmentation-free
/// allocation unit) and byte-granular [`Reservation`]s (for hash tables and
/// other non-page state that still counts against the node). Both are RAII:
/// dropping them credits the pool. `MemPool` is a cheap `Arc` handle; clones
/// share the same budget and counters, which is how multiple ranks on one
/// simulated node share a node's memory.
///
/// Freed page buffers are cached and reused rather than returned to the
/// system allocator. This mirrors the paper's motivation for fixed-size
/// pages — the BG/Q lightweight kernel cannot compact a fragmented heap —
/// and keeps the host allocator out of the measured path.
///
/// ```
/// use mimir_mem::MemPool;
///
/// let pool = MemPool::new("node0", 64 * 1024, 1 << 20).unwrap();
/// let page = pool.alloc_page().unwrap();
/// assert_eq!(pool.used(), 64 * 1024);
/// drop(page);
/// assert_eq!(pool.used(), 0);
/// assert_eq!(pool.peak(), 64 * 1024); // peak survives the free
/// ```
#[derive(Clone)]
pub struct MemPool {
    inner: Arc<PoolInner>,
}

pub(crate) struct PoolInner {
    name: String,
    page_size: usize,
    budget: usize,
    used: AtomicUsize,
    peak: AtomicUsize,
    /// Separate high-water mark for phase-scoped measurement
    /// ([`MemPool::phase_peak`]); resettable without disturbing the
    /// cumulative peak.
    phase_peak: AtomicUsize,
    page_allocs: AtomicU64,
    page_frees: AtomicU64,
    oom_events: AtomicU64,
    /// Usage level at the last emitted trace sample. The sampler is
    /// decimated: charges and credits only emit a `MemSample` event once
    /// usage has moved at least one page away from this watermark, so
    /// byte-granular reservation churn costs one atomic load per call,
    /// not one trace event.
    last_sample: AtomicUsize,
    free_pages: Mutex<Vec<Box<[u8]>>>,
}

impl MemPool {
    /// Creates a pool with the given page size and hard byte budget.
    ///
    /// # Errors
    /// Returns [`MemError::InvalidConfig`] if `page_size` is zero or larger
    /// than `budget`.
    pub fn new(name: impl Into<String>, page_size: usize, budget: usize) -> Result<Self> {
        let name = name.into();
        if page_size == 0 {
            return Err(MemError::InvalidConfig(format!(
                "pool `{name}`: page size must be non-zero"
            )));
        }
        if page_size > budget {
            return Err(MemError::InvalidConfig(format!(
                "pool `{name}`: page size {page_size} exceeds budget {budget}"
            )));
        }
        Ok(Self {
            inner: Arc::new(PoolInner {
                name,
                page_size,
                budget,
                used: AtomicUsize::new(0),
                peak: AtomicUsize::new(0),
                phase_peak: AtomicUsize::new(0),
                page_allocs: AtomicU64::new(0),
                page_frees: AtomicU64::new(0),
                oom_events: AtomicU64::new(0),
                last_sample: AtomicUsize::new(0),
                free_pages: Mutex::new(Vec::new()),
            }),
        })
    }

    /// Creates a pool with an effectively unlimited budget, for tests and
    /// for components whose memory the experiment does not meter.
    pub fn unlimited(name: impl Into<String>, page_size: usize) -> Self {
        Self::new(name, page_size, usize::MAX).expect("unlimited pool config is always valid")
    }

    /// Allocates one zero-length page of `page_size()` capacity.
    ///
    /// # Errors
    /// [`MemError::OutOfMemory`] if the page would exceed the budget.
    pub fn alloc_page(&self) -> Result<Page> {
        self.charge(self.inner.page_size)?;
        self.inner.page_allocs.fetch_add(1, Ordering::Relaxed);
        let buf = self
            .inner
            .free_pages
            .lock()
            .unwrap()
            .pop()
            .unwrap_or_else(|| vec![0u8; self.inner.page_size].into_boxed_slice());
        Ok(Page::new(buf, Arc::clone(&self.inner)))
    }

    /// Allocates `n` pages, releasing any partial progress on failure.
    pub fn alloc_pages(&self, n: usize) -> Result<Vec<Page>> {
        let mut pages = Vec::with_capacity(n);
        for _ in 0..n {
            pages.push(self.alloc_page()?);
        }
        Ok(pages)
    }

    /// Reserves `bytes` of non-page memory (hash buckets, index arrays, …).
    ///
    /// # Errors
    /// [`MemError::OutOfMemory`] if the reservation would exceed the budget.
    pub fn try_reserve(&self, bytes: usize) -> Result<Reservation> {
        self.charge(bytes)?;
        Ok(Reservation::new(bytes, Arc::clone(&self.inner)))
    }

    /// Admission-control variant of [`Self::try_reserve`]: attempts the
    /// same budget charge but returns `None` instead of an error on
    /// refusal, **without** counting an OOM event.
    ///
    /// A scheduler probing "would this job fit right now?" expects the
    /// answer to routinely be no while the node is busy; those probes are
    /// policy, not failures, and must not pollute the pool's OOM
    /// diagnostics (which the paper's missing-data-points analysis and the
    /// stress tests treat as real budget violations).
    pub fn probe_reserve(&self, bytes: usize) -> Option<Reservation> {
        self.inner
            .charge(bytes)
            .ok()
            .map(|()| Reservation::new(bytes, Arc::clone(&self.inner)))
    }

    /// The pool's fixed page size in bytes.
    pub fn page_size(&self) -> usize {
        self.inner.page_size
    }

    /// The hard budget in bytes (`usize::MAX` when unlimited).
    pub fn budget(&self) -> usize {
        self.inner.budget
    }

    /// Bytes currently charged to the pool.
    pub fn used(&self) -> usize {
        self.inner.used.load(Ordering::Acquire)
    }

    /// High-water mark of [`Self::used`] since creation or the last
    /// [`Self::reset_peak`].
    pub fn peak(&self) -> usize {
        self.inner.peak.load(Ordering::Acquire)
    }

    /// Bytes still available under the budget.
    pub fn available(&self) -> usize {
        self.inner.budget.saturating_sub(self.used())
    }

    /// Number of whole pages still allocatable under the budget.
    pub fn available_pages(&self) -> usize {
        self.available() / self.inner.page_size
    }

    /// The pool's diagnostic name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Count of allocations refused for exceeding the budget.
    pub fn oom_events(&self) -> u64 {
        self.inner.oom_events.load(Ordering::Relaxed)
    }

    /// Resets the peak tracker to the current usage, for phase-scoped
    /// measurements.
    pub fn reset_peak(&self) {
        self.inner.peak.store(self.used(), Ordering::Release);
    }

    /// High-water mark since the last [`Self::reset_phase_peak`]. Tracked
    /// separately from [`Self::peak`] so phase-scoped measurement (the
    /// paper's per-phase memory curves) can reset between phases without
    /// losing the job-wide peak.
    pub fn phase_peak(&self) -> usize {
        self.inner.phase_peak.load(Ordering::Acquire)
    }

    /// Resets the phase-scoped peak tracker to the current usage.
    pub fn reset_phase_peak(&self) {
        self.inner.phase_peak.store(self.used(), Ordering::Release);
    }

    /// Snapshot of the pool counters.
    pub fn stats(&self) -> MemStats {
        MemStats {
            used: self.used(),
            peak: self.peak(),
            budget: self.inner.budget,
            page_size: self.inner.page_size,
            page_allocs: self.inner.page_allocs.load(Ordering::Relaxed),
            page_frees: self.inner.page_frees.load(Ordering::Relaxed),
            oom_events: self.oom_events(),
        }
    }

    /// Drops cached free-page buffers, returning their memory to the host
    /// allocator. Accounting is unaffected (cached buffers are not charged).
    pub fn trim_cache(&self) {
        self.inner.free_pages.lock().unwrap().clear();
    }

    fn charge(&self, bytes: usize) -> Result<()> {
        self.inner.charge(bytes).inspect_err(|_| {
            self.inner.oom_events.fetch_add(1, Ordering::Relaxed);
        })
    }
}

impl std::fmt::Debug for MemPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemPool")
            .field("name", &self.inner.name)
            .field("page_size", &self.inner.page_size)
            .field("budget", &self.inner.budget)
            .field("used", &self.used())
            .field("peak", &self.peak())
            .finish()
    }
}

impl PoolInner {
    pub(crate) fn charge(&self, bytes: usize) -> Result<()> {
        let mut current = self.used.load(Ordering::Relaxed);
        loop {
            let next = current
                .checked_add(bytes)
                .ok_or_else(|| self.oom(bytes, current))?;
            if next > self.budget {
                return Err(self.oom(bytes, current));
            }
            match self.used.compare_exchange_weak(
                current,
                next,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.peak.fetch_max(next, Ordering::AcqRel);
                    self.phase_peak.fetch_max(next, Ordering::AcqRel);
                    self.maybe_sample(next);
                    return Ok(());
                }
                Err(actual) => current = actual,
            }
        }
    }

    pub(crate) fn credit(&self, bytes: usize) {
        let prev = self.used.fetch_sub(bytes, Ordering::AcqRel);
        debug_assert!(prev >= bytes, "pool accounting underflow");
        self.maybe_sample(prev.saturating_sub(bytes));
    }

    pub(crate) fn recycle_page(&self, buf: Box<[u8]>) {
        self.page_frees.fetch_add(1, Ordering::Relaxed);
        self.credit(self.page_size);
        let mut cache = self.free_pages.lock().unwrap();
        // Bound the cache so long-lived unlimited pools don't hoard host
        // memory: keep at most budget/page_size or 1024 buffers.
        let cap = (self.budget / self.page_size).min(1024);
        if cache.len() < cap {
            cache.push(buf);
        }
    }

    /// Emits a pool high-water sample on the calling rank's trace when
    /// usage has drifted at least one page from the last sample. No-op
    /// when tracing is off; one relaxed load when it is on but the
    /// watermark hasn't moved far enough — cheap enough to hang off every
    /// charge/credit, including byte-granular reservations.
    fn maybe_sample(&self, used_now: usize) {
        if !mimir_obs::active() {
            return;
        }
        let last = self.last_sample.load(Ordering::Relaxed);
        if used_now.abs_diff(last) >= self.page_size
            && self
                .last_sample
                .compare_exchange(last, used_now, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            mimir_obs::emit(
                mimir_obs::EventKind::MemSample,
                used_now as u64,
                self.peak.load(Ordering::Relaxed) as u64,
            );
        }
    }

    fn oom(&self, requested: usize, used: usize) -> MemError {
        MemError::OutOfMemory {
            pool: self.name.clone(),
            requested,
            used,
            budget: self.budget,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_page_size() {
        assert!(matches!(
            MemPool::new("t", 0, 1024),
            Err(MemError::InvalidConfig(_))
        ));
    }

    #[test]
    fn rejects_page_larger_than_budget() {
        assert!(matches!(
            MemPool::new("t", 2048, 1024),
            Err(MemError::InvalidConfig(_))
        ));
    }

    #[test]
    fn page_alloc_charges_and_drop_credits() {
        let pool = MemPool::new("t", 64, 256).unwrap();
        let p = pool.alloc_page().unwrap();
        assert_eq!(pool.used(), 64);
        assert_eq!(pool.peak(), 64);
        drop(p);
        assert_eq!(pool.used(), 0);
        assert_eq!(pool.peak(), 64, "peak survives frees");
    }

    #[test]
    fn budget_is_enforced() {
        let pool = MemPool::new("t", 64, 128).unwrap();
        let _a = pool.alloc_page().unwrap();
        let _b = pool.alloc_page().unwrap();
        let err = pool.alloc_page().unwrap_err();
        assert!(matches!(err, MemError::OutOfMemory { used: 128, .. }));
        assert_eq!(pool.oom_events(), 1);
    }

    #[test]
    fn freed_budget_is_reusable() {
        let pool = MemPool::new("t", 64, 64).unwrap();
        for _ in 0..10 {
            let p = pool.alloc_page().unwrap();
            drop(p);
        }
        assert_eq!(pool.used(), 0);
        assert_eq!(pool.stats().page_allocs, 10);
        assert_eq!(pool.stats().page_frees, 10);
    }

    #[test]
    fn reservation_accounts_bytes() {
        let pool = MemPool::new("t", 64, 1000).unwrap();
        let r = pool.try_reserve(300).unwrap();
        assert_eq!(pool.used(), 300);
        drop(r);
        assert_eq!(pool.used(), 0);
    }

    #[test]
    fn mixed_pages_and_reservations_share_budget() {
        let pool = MemPool::new("t", 64, 100).unwrap();
        let _p = pool.alloc_page().unwrap();
        assert!(pool.try_reserve(37).is_err());
        let _r = pool.try_reserve(36).unwrap();
        assert_eq!(pool.used(), 100);
    }

    #[test]
    fn reset_peak_tracks_phase_scoped_high_water() {
        let pool = MemPool::new("t", 64, 1024).unwrap();
        let a = pool.alloc_pages(4).unwrap();
        drop(a);
        assert_eq!(pool.peak(), 256);
        pool.reset_peak();
        assert_eq!(pool.peak(), 0);
        let _b = pool.alloc_page().unwrap();
        assert_eq!(pool.peak(), 64);
    }

    #[test]
    fn alloc_pages_partial_failure_releases_everything() {
        let pool = MemPool::new("t", 64, 128).unwrap();
        assert!(pool.alloc_pages(3).is_err());
        assert_eq!(pool.used(), 0);
    }

    #[test]
    fn concurrent_charging_is_consistent() {
        let pool = MemPool::new("t", 8, 8 * 1000).unwrap();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let pool = pool.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        let p = pool.alloc_page().unwrap();
                        drop(p);
                    }
                });
            }
        });
        assert_eq!(pool.used(), 0);
        assert!(pool.peak() <= 8 * 8 * 8 * 1000); // sanity: bounded
        assert_eq!(pool.stats().page_allocs, 800);
    }

    #[test]
    fn probe_reserve_does_not_count_oom() {
        let pool = MemPool::new("t", 64, 128).unwrap();
        let held = pool.probe_reserve(100).expect("fits");
        assert_eq!(pool.used(), 100);
        assert!(pool.probe_reserve(29).is_none(), "over budget");
        assert_eq!(pool.oom_events(), 0, "probe refusals are not OOM events");
        drop(held);
        assert_eq!(pool.used(), 0);
        assert!(pool.probe_reserve(29).is_some());
    }

    #[test]
    fn sampler_is_decimated_to_page_granularity() {
        let pool = MemPool::new("t", 1024, 1 << 20).unwrap();
        mimir_obs::install(mimir_obs::Recorder::new(0, 4096));
        // Sub-page reservation churn never crosses the watermark.
        for _ in 0..50 {
            let r = pool.try_reserve(16).unwrap();
            drop(r);
        }
        // Page-scale traffic does: one sample per alloc, one per free.
        let pages = pool.alloc_pages(4).unwrap();
        drop(pages);
        let rec = mimir_obs::take().expect("recorder installed");
        let events = rec.events();
        let samples: Vec<_> = events
            .iter()
            .filter(|e| e.kind == mimir_obs::EventKind::MemSample)
            .collect();
        assert_eq!(
            samples.len(),
            8,
            "4 allocs + 4 frees each move a full page; 16-byte churn is decimated"
        );
        assert_eq!(samples[3].a, 4 * 1024, "sample carries bytes used");
    }

    #[test]
    fn available_pages_reflects_budget() {
        let pool = MemPool::new("t", 64, 640).unwrap();
        assert_eq!(pool.available_pages(), 10);
        let _p = pool.alloc_page().unwrap();
        assert_eq!(pool.available_pages(), 9);
    }
}
