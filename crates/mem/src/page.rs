use std::sync::Arc;

use crate::pool::PoolInner;

/// A fixed-size memory buffer charged against a [`crate::MemPool`].
///
/// Pages are the paper's unit of allocation: MR-MPI statically allocates a
/// handful of large pages per phase; Mimir's containers grow and shrink one
/// page at a time. A page tracks a write cursor (`len`) within its fixed
/// capacity, supports append-style writes, and returns its bytes to the pool
/// on drop.
pub struct Page {
    buf: Box<[u8]>,
    len: usize,
    pool: Arc<PoolInner>,
}

impl Page {
    pub(crate) fn new(buf: Box<[u8]>, pool: Arc<PoolInner>) -> Self {
        Self { buf, len: 0, pool }
    }

    /// Total capacity in bytes (the pool's page size).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Bytes written so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no bytes have been written.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Remaining writable bytes.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.len
    }

    /// The written prefix of the page.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[..self.len]
    }

    /// Mutable view of the written prefix.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        &mut self.buf[..self.len]
    }

    /// The full backing buffer regardless of the cursor. Used by code that
    /// fills a page wholesale (e.g. receiving an exchange) before calling
    /// [`Self::set_len`].
    #[inline]
    pub fn raw_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }

    /// Sets the write cursor.
    ///
    /// # Panics
    /// Panics if `len` exceeds the capacity.
    #[inline]
    pub fn set_len(&mut self, len: usize) {
        assert!(len <= self.buf.len(), "page cursor beyond capacity");
        self.len = len;
    }

    /// Appends `bytes` if they fit, returning `false` (without writing)
    /// otherwise.
    #[inline]
    pub fn try_write(&mut self, bytes: &[u8]) -> bool {
        if bytes.len() > self.remaining() {
            return false;
        }
        self.buf[self.len..self.len + bytes.len()].copy_from_slice(bytes);
        self.len += bytes.len();
        true
    }

    /// Resets the cursor to zero; capacity and accounting are unchanged.
    #[inline]
    pub fn clear(&mut self) {
        self.len = 0;
    }
}

impl Drop for Page {
    fn drop(&mut self) {
        let buf = std::mem::take(&mut self.buf);
        self.pool.recycle_page(buf);
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Page")
            .field("len", &self.len)
            .field("capacity", &self.buf.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use crate::MemPool;

    #[test]
    fn write_and_read_back() {
        let pool = MemPool::unlimited("t", 16);
        let mut p = pool.alloc_page().unwrap();
        assert!(p.try_write(b"hello"));
        assert!(p.try_write(b" world"));
        assert_eq!(p.as_slice(), b"hello world");
        assert_eq!(p.remaining(), 5);
    }

    #[test]
    fn write_past_capacity_is_refused_atomically() {
        let pool = MemPool::unlimited("t", 8);
        let mut p = pool.alloc_page().unwrap();
        assert!(p.try_write(b"1234567"));
        assert!(!p.try_write(b"89"));
        assert_eq!(p.as_slice(), b"1234567", "failed write leaves page intact");
        assert!(p.try_write(b"8"));
        assert_eq!(p.remaining(), 0);
    }

    #[test]
    fn clear_resets_cursor_only() {
        let pool = MemPool::new("t", 8, 8).unwrap();
        let mut p = pool.alloc_page().unwrap();
        p.try_write(b"abc");
        p.clear();
        assert!(p.is_empty());
        assert_eq!(pool.used(), 8, "clear does not release memory");
    }

    #[test]
    fn set_len_exposes_raw_fill() {
        let pool = MemPool::unlimited("t", 8);
        let mut p = pool.alloc_page().unwrap();
        p.raw_mut()[..3].copy_from_slice(b"xyz");
        p.set_len(3);
        assert_eq!(p.as_slice(), b"xyz");
    }

    #[test]
    #[should_panic(expected = "beyond capacity")]
    fn set_len_past_capacity_panics() {
        let pool = MemPool::unlimited("t", 8);
        let mut p = pool.alloc_page().unwrap();
        p.set_len(9);
    }
}
