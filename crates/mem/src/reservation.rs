use std::sync::Arc;

use crate::pool::PoolInner;
use crate::Result;

/// A byte-granular charge against a [`crate::MemPool`], released on drop.
///
/// Reservations account for intermediate state that is not stored in pages
/// but still occupies node memory: the hash buckets used by the convert
/// phase, the KV-compression and partial-reduction tables, MR-MPI's
/// partition scratch structures. Keeping them on the books is what makes
/// the paper's observation reproducible that KV compression "reduces memory
/// usage only if the compression ratio reaches a certain threshold"
/// (Section III-C2): the table itself costs memory.
pub struct Reservation {
    bytes: usize,
    pool: Arc<PoolInner>,
}

impl Reservation {
    pub(crate) fn new(bytes: usize, pool: Arc<PoolInner>) -> Self {
        Self { bytes, pool }
    }

    /// Currently reserved bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Grows or shrinks the reservation to `new_bytes`.
    ///
    /// # Errors
    /// Growing can hit the pool budget; the reservation is unchanged then.
    pub fn resize(&mut self, new_bytes: usize) -> Result<()> {
        if new_bytes > self.bytes {
            self.pool.charge(new_bytes - self.bytes)?;
        } else {
            self.pool.credit(self.bytes - new_bytes);
        }
        self.bytes = new_bytes;
        Ok(())
    }
}

impl Drop for Reservation {
    fn drop(&mut self) {
        self.pool.credit(self.bytes);
    }
}

impl std::fmt::Debug for Reservation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reservation")
            .field("bytes", &self.bytes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use crate::{MemError, MemPool};

    #[test]
    fn resize_up_and_down() {
        let pool = MemPool::new("t", 16, 100).unwrap();
        let mut r = pool.try_reserve(10).unwrap();
        r.resize(60).unwrap();
        assert_eq!(pool.used(), 60);
        r.resize(20).unwrap();
        assert_eq!(pool.used(), 20);
        drop(r);
        assert_eq!(pool.used(), 0);
    }

    #[test]
    fn resize_past_budget_fails_and_preserves_state() {
        let pool = MemPool::new("t", 16, 100).unwrap();
        let mut r = pool.try_reserve(50).unwrap();
        let err = r.resize(150).unwrap_err();
        assert!(matches!(err, MemError::OutOfMemory { .. }));
        assert_eq!(r.bytes(), 50);
        assert_eq!(pool.used(), 50);
    }

    #[test]
    fn resize_to_zero_keeps_reservation_alive() {
        let pool = MemPool::new("t", 16, 100).unwrap();
        let mut r = pool.try_reserve(50).unwrap();
        r.resize(0).unwrap();
        assert_eq!(pool.used(), 0);
        r.resize(100).unwrap();
        assert_eq!(pool.used(), 100);
    }
}
