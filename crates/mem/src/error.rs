use std::fmt;

/// Errors produced by the memory substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// An allocation would have pushed a pool past its hard budget.
    ///
    /// This is the signal the frameworks react to: Mimir fails the job (its
    /// containers are in-memory only), MR-MPI spills pages to the I/O
    /// subsystem.
    OutOfMemory {
        /// Name of the pool (usually `node<N>`).
        pool: String,
        /// Bytes the caller asked for.
        requested: usize,
        /// Bytes charged to the pool at the time of the request.
        used: usize,
        /// The pool's hard budget in bytes.
        budget: usize,
    },
    /// A pool or node map was configured with impossible parameters.
    InvalidConfig(String),
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfMemory {
                pool,
                requested,
                used,
                budget,
            } => write!(
                f,
                "out of memory in pool `{pool}`: requested {requested} B with {used}/{budget} B in use"
            ),
            MemError::InvalidConfig(msg) => write!(f, "invalid memory configuration: {msg}"),
        }
    }
}

impl std::error::Error for MemError {}
