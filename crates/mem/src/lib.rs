//! # mimir-mem — budgeted, page-oriented memory accounting
//!
//! The Mimir paper's headline metric is *peak memory usage* against a hard
//! per-node budget: a compute node has a fixed amount of DRAM, every byte of
//! intermediate MapReduce state must fit in it, and the moment it does not,
//! either the framework spills to the (slow, shared) parallel file system or
//! the job dies. This crate reproduces that economics in-process.
//!
//! A [`MemPool`] models one compute node's memory: a hard byte budget, a
//! fixed page size, and precise `used`/`peak` counters. All intermediate data
//! in the reproduction — Mimir's KV/KMV container pages, its send/receive
//! communication buffers, MR-MPI's statically allocated page sets, and the
//! hash tables used by the optional optimizations — is carved out of a pool,
//! either as fixed-size [`Page`]s (mirroring the paper's fragmentation-free
//! fixed-size buffer units) or as byte-granular [`Reservation`]s.
//!
//! Several simulated ranks (threads) that live on the same simulated node
//! share one pool via [`NodeMap`], so data imbalance across ranks exhausts
//! the *node* budget exactly as it does on the real machine — the effect
//! that breaks MR-MPI's weak scaling on skewed datasets in the paper's
//! Figures 10 and 14.

mod error;
mod node;
mod page;
mod pool;
mod reservation;
mod stats;

pub use error::MemError;
pub use node::NodeMap;
pub use page::Page;
pub use pool::MemPool;
pub use reservation::Reservation;
pub use stats::MemStats;

/// Result alias for fallible memory operations.
pub type Result<T> = std::result::Result<T, MemError>;

/// Bytes in one kibibyte. Handy for tests and platform presets.
pub const KIB: usize = 1024;
/// Bytes in one mebibyte.
pub const MIB: usize = 1024 * 1024;
/// Bytes in one gibibyte.
pub const GIB: usize = 1024 * 1024 * 1024;
