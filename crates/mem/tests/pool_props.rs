//! Randomized tests for the memory pool: accounting invariants under
//! arbitrary allocation/free interleavings, single- and multi-threaded.
//! Driven by a seeded PRNG so failures replay deterministically.

use mimir_datagen::rank_rng;
use mimir_mem::{MemPool, NodeMap};

#[derive(Debug, Clone)]
enum Op {
    AllocPage,
    FreeOldestPage,
    Reserve(usize),
    FreeOldestReservation,
    ResizeNewest(usize),
}

fn random_op(rng: &mut mimir_datagen::RankRng) -> Op {
    match rng.gen_range(0..5) {
        0 => Op::AllocPage,
        1 => Op::FreeOldestPage,
        2 => Op::Reserve(rng.gen_range(0..5000)),
        3 => Op::FreeOldestReservation,
        _ => Op::ResizeNewest(rng.gen_range(0..5000)),
    }
}

#[test]
fn accounting_invariants_hold() {
    for case in 0..64u64 {
        let mut rng = rank_rng(0x0070_0150 ^ case, case as usize);
        let ops: Vec<Op> = (0..rng.gen_range(0..100))
            .map(|_| random_op(&mut rng))
            .collect();
        check_accounting(&ops, case);
    }
}

fn check_accounting(ops: &[Op], case: u64) {
    let page = 256;
    let budget = 16 * 1024;
    let pool = MemPool::new("prop", page, budget).unwrap();
    let mut pages = std::collections::VecDeque::new();
    let mut reservations = std::collections::VecDeque::new();
    let mut expected_used = 0usize;

    for op in ops {
        match op {
            Op::AllocPage => {
                if let Ok(p) = pool.alloc_page() {
                    pages.push_back(p);
                    expected_used += page;
                } else {
                    assert!(
                        expected_used + page > budget,
                        "case {case}: refused under budget"
                    );
                }
            }
            Op::FreeOldestPage => {
                if pages.pop_front().is_some() {
                    expected_used -= page;
                }
            }
            Op::Reserve(bytes) => {
                if let Ok(r) = pool.try_reserve(*bytes) {
                    reservations.push_back(r);
                    expected_used += bytes;
                } else {
                    assert!(expected_used + bytes > budget, "case {case}");
                }
            }
            Op::FreeOldestReservation => {
                if let Some(r) = reservations.pop_front() {
                    expected_used -= r.bytes();
                }
            }
            Op::ResizeNewest(bytes) => {
                if let Some(r) = reservations.back_mut() {
                    let before = r.bytes();
                    if r.resize(*bytes).is_ok() {
                        expected_used = expected_used - before + bytes;
                    } else {
                        assert_eq!(r.bytes(), before, "case {case}: failed resize is a no-op");
                    }
                }
            }
        }
        // Invariants after every operation.
        assert_eq!(pool.used(), expected_used, "case {case}");
        assert!(pool.peak() >= pool.used(), "case {case}");
        assert!(pool.used() <= budget, "case {case}");
    }
    drop(pages);
    drop(reservations);
    assert_eq!(pool.used(), 0, "case {case}: all RAII releases balance");
}

#[test]
fn node_map_partitions_ranks_completely() {
    let mut rng = rank_rng(0x0000_DEA7, 0);
    for case in 0..64 {
        let n_ranks = rng.gen_range(1..40);
        let rpn = rng.gen_range(1..10);
        let m = NodeMap::new(n_ranks, rpn, 64, 4096).unwrap();
        // Every rank maps to a valid node; node indices are contiguous.
        let mut max_node = 0;
        for r in 0..n_ranks {
            let node = m.node_of(r);
            assert!(node < m.n_nodes(), "case {case}");
            max_node = max_node.max(node);
        }
        assert_eq!(max_node + 1, m.n_nodes(), "case {case}");
        // Ranks per node never exceeds rpn.
        let mut counts = vec![0usize; m.n_nodes()];
        for r in 0..n_ranks {
            counts[m.node_of(r)] += 1;
        }
        assert!(counts.iter().all(|&c| c <= rpn), "case {case}");
    }
}

#[test]
fn concurrent_stress_never_exceeds_budget() {
    let page = 128;
    let budget = 8 * 1024;
    let pool = MemPool::new("stress", page, budget).unwrap();
    std::thread::scope(|s| {
        for t in 0..8 {
            let pool = pool.clone();
            s.spawn(move || {
                let mut held = Vec::new();
                for i in 0..500 {
                    match (i + t) % 3 {
                        0 => {
                            if let Ok(p) = pool.alloc_page() {
                                held.push(p);
                            }
                        }
                        1 => {
                            held.pop();
                        }
                        _ => {
                            assert!(pool.used() <= budget, "budget violated");
                        }
                    }
                }
            });
        }
    });
    assert!(pool.peak() <= budget);
    assert_eq!(pool.used(), 0);
}

#[test]
fn phase_peak_resets_independently_of_cumulative_peak() {
    let pool = MemPool::new("phased", 64, 4096).unwrap();
    let burst = pool.alloc_pages(8).unwrap();
    drop(burst);
    assert_eq!(pool.peak(), 512);
    assert_eq!(pool.phase_peak(), 512);
    pool.reset_phase_peak();
    assert_eq!(pool.phase_peak(), 0, "phase peak resets");
    assert_eq!(pool.peak(), 512, "cumulative peak survives the reset");
    let _p = pool.alloc_page().unwrap();
    assert_eq!(pool.phase_peak(), 64);
    assert_eq!(pool.peak(), 512);
}
