//! Property tests for the memory pool: accounting invariants under
//! arbitrary allocation/free interleavings, single- and multi-threaded.

use mimir_mem::{MemPool, NodeMap};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    AllocPage,
    FreeOldestPage,
    Reserve(usize),
    FreeOldestReservation,
    ResizeNewest(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::AllocPage),
        Just(Op::FreeOldestPage),
        (0usize..5000).prop_map(Op::Reserve),
        Just(Op::FreeOldestReservation),
        (0usize..5000).prop_map(Op::ResizeNewest),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn accounting_invariants_hold(ops in prop::collection::vec(op_strategy(), 0..100)) {
        let page = 256;
        let budget = 16 * 1024;
        let pool = MemPool::new("prop", page, budget).unwrap();
        let mut pages = std::collections::VecDeque::new();
        let mut reservations = std::collections::VecDeque::new();
        let mut expected_used = 0usize;

        for op in ops {
            match op {
                Op::AllocPage => {
                    if let Ok(p) = pool.alloc_page() {
                        pages.push_back(p);
                        expected_used += page;
                    } else {
                        prop_assert!(expected_used + page > budget, "refused under budget");
                    }
                }
                Op::FreeOldestPage => {
                    if pages.pop_front().is_some() {
                        expected_used -= page;
                    }
                }
                Op::Reserve(bytes) => {
                    if let Ok(r) = pool.try_reserve(bytes) {
                        reservations.push_back(r);
                        expected_used += bytes;
                    } else {
                        prop_assert!(expected_used + bytes > budget);
                    }
                }
                Op::FreeOldestReservation => {
                    if let Some(r) = reservations.pop_front() {
                        expected_used -= r.bytes();
                    }
                }
                Op::ResizeNewest(bytes) => {
                    if let Some(r) = reservations.back_mut() {
                        let before = r.bytes();
                        if r.resize(bytes).is_ok() {
                            expected_used = expected_used - before + bytes;
                        } else {
                            prop_assert_eq!(r.bytes(), before, "failed resize is a no-op");
                        }
                    }
                }
            }
            // Invariants after every operation.
            prop_assert_eq!(pool.used(), expected_used);
            prop_assert!(pool.peak() >= pool.used());
            prop_assert!(pool.used() <= budget);
        }
        drop(pages);
        drop(reservations);
        prop_assert_eq!(pool.used(), 0, "all RAII releases balance");
    }

    #[test]
    fn node_map_partitions_ranks_completely(
        n_ranks in 1usize..40,
        rpn in 1usize..10,
    ) {
        let m = NodeMap::new(n_ranks, rpn, 64, 4096).unwrap();
        // Every rank maps to a valid node; node indices are contiguous.
        let mut max_node = 0;
        for r in 0..n_ranks {
            let node = m.node_of(r);
            prop_assert!(node < m.n_nodes());
            max_node = max_node.max(node);
        }
        prop_assert_eq!(max_node + 1, m.n_nodes());
        // Ranks per node never exceeds rpn.
        let mut counts = vec![0usize; m.n_nodes()];
        for r in 0..n_ranks {
            counts[m.node_of(r)] += 1;
        }
        prop_assert!(counts.iter().all(|&c| c <= rpn));
    }
}

#[test]
fn concurrent_stress_never_exceeds_budget() {
    let page = 128;
    let budget = 8 * 1024;
    let pool = MemPool::new("stress", page, budget).unwrap();
    std::thread::scope(|s| {
        for t in 0..8 {
            let pool = pool.clone();
            s.spawn(move || {
                let mut held = Vec::new();
                for i in 0..500 {
                    match (i + t) % 3 {
                        0 => {
                            if let Ok(p) = pool.alloc_page() {
                                held.push(p);
                            }
                        }
                        1 => {
                            held.pop();
                        }
                        _ => {
                            assert!(pool.used() <= budget, "budget violated");
                        }
                    }
                }
            });
        }
    });
    assert!(pool.peak() <= budget);
    assert_eq!(pool.used(), 0);
}
