use crate::rank_rng;
use crate::rng::RankRng;

/// A point in the unit cube used by the octree-clustering benchmark.
pub type Point = [f32; 3];

/// Generator for the octree-clustering dataset.
///
/// Matches the paper's description of the protein-ligand docking dataset
/// (Zhang et al.): "the position of the points follows a normal
/// distribution with a 0.5 standard deviation and a 1 % density, meaning
/// that the MapReduce library searches for and finds regions that have
/// more than 1 % of the total points". Coordinates are drawn from
/// `Normal(0.5, 0.5)` and clamped to the unit cube, producing a dense core
/// whose octants exceed the density threshold for several refinement
/// levels.
#[derive(Debug, Clone, Copy)]
pub struct PointGen {
    /// Per-coordinate standard deviation.
    pub sigma: f32,
    /// Generator seed.
    pub seed: u64,
}

impl PointGen {
    /// The paper's parameters: σ = 0.5 around the cube centre.
    pub fn new(seed: u64) -> Self {
        Self { sigma: 0.5, seed }
    }

    /// Generates this rank's share (≈ `total_points / n_ranks`) of the
    /// dataset.
    pub fn generate(&self, rank: usize, n_ranks: usize, total_points: usize) -> Vec<Point> {
        let base = total_points / n_ranks;
        let extra = total_points % n_ranks;
        let n = base + usize::from(rank < extra);
        let mut normals = NormalStream {
            rng: rank_rng(self.seed ^ 0x000C_7EE0, rank),
            spare: None,
        };
        (0..n)
            .map(|_| {
                [(); 3].map(|()| (0.5 + self.sigma * normals.next()).clamp(0.0, 1.0 - f32::EPSILON))
            })
            .collect()
    }
}

/// Standard-normal stream via the Box-Muller transform (two variates per
/// uniform pair, one cached).
struct NormalStream {
    rng: RankRng,
    spare: Option<f32>,
}

impl NormalStream {
    fn next(&mut self) -> f32 {
        if let Some(v) = self.spare.take() {
            return v;
        }
        let u1: f32 = self.rng.gen_f32().max(f32::EPSILON); // keep ln() finite
        let u2: f32 = self.rng.gen_f32();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count() {
        let g = PointGen::new(1);
        let total = 1001;
        let n: usize = (0..3).map(|r| g.generate(r, 3, total).len()).sum();
        assert_eq!(n, total);
    }

    #[test]
    fn points_stay_in_unit_cube() {
        let g = PointGen::new(2);
        for p in g.generate(0, 1, 5000) {
            for c in p {
                assert!((0.0..1.0).contains(&c), "coordinate {c}");
            }
        }
    }

    #[test]
    fn distribution_is_centred_and_octants_are_skewed() {
        let g = PointGen::new(3);
        let pts = g.generate(0, 1, 20_000);
        let mean: f32 = pts.iter().map(|p| p[0]).sum::<f32>() / pts.len() as f32;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        // What the octree benchmark needs is non-uniform density: at
        // refinement level 3 (512 cells) the densest cell must clearly
        // exceed the 1 % threshold a uniform distribution would sit near.
        let mut cells = std::collections::HashMap::new();
        for p in &pts {
            let key: [u32; 3] = [p[0], p[1], p[2]].map(|c| (c * 8.0) as u32);
            *cells.entry(key).or_insert(0usize) += 1;
        }
        let max = *cells.values().max().unwrap();
        let uniform_expect = pts.len() / 512;
        assert!(
            max > 4 * uniform_expect,
            "densest level-3 cell {max} vs uniform {uniform_expect}"
        );
    }

    #[test]
    fn deterministic_per_rank() {
        let g = PointGen::new(4);
        assert_eq!(g.generate(1, 2, 100), g.generate(1, 2, 100));
        assert_ne!(g.generate(0, 2, 100), g.generate(1, 2, 100));
    }
}
