use crate::{rank_rng, WORDS_PER_LINE};

/// The *WC (Uniform)* corpus: words drawn uniformly from a fixed-size
/// vocabulary, fixed word length, newline-separated lines.
///
/// Because every word is equally likely, the intermediate KVs of a
/// WordCount over this corpus partition evenly across ranks — the
/// balanced case in the paper's evaluation, where even MR-MPI's static
/// paging scales until the per-process page fills.
#[derive(Debug, Clone, Copy)]
pub struct UniformWords {
    /// Number of distinct words.
    pub vocab: usize,
    /// Length of every word in bytes.
    pub word_len: usize,
    /// Generator seed.
    pub seed: u64,
}

impl UniformWords {
    /// Sensible defaults: 64 Ki distinct 8-byte words.
    pub fn new(seed: u64) -> Self {
        Self {
            vocab: 64 * 1024,
            word_len: 8,
            seed,
        }
    }

    /// Generates this rank's share (≈ `total_bytes / n_ranks`) of the
    /// corpus as newline-separated text.
    pub fn generate(&self, rank: usize, n_ranks: usize, total_bytes: usize) -> Vec<u8> {
        let share = share_of(total_bytes, rank, n_ranks);
        let mut rng = rank_rng(self.seed, rank);
        let mut out = Vec::with_capacity(share + 64);
        let mut col = 0usize;
        while out.len() < share {
            let w = rng.gen_range(0..self.vocab);
            push_word(&mut out, w, self.word_len);
            col += 1;
            if col == WORDS_PER_LINE {
                out.push(b'\n');
                col = 0;
            } else {
                out.push(b' ');
            }
        }
        if out.last() != Some(&b'\n') {
            out.push(b'\n');
        }
        out
    }
}

/// Writes word number `idx` as a fixed-length lowercase token.
pub(crate) fn push_word(out: &mut Vec<u8>, idx: usize, len: usize) {
    let start = out.len();
    out.resize(start + len, b'a');
    let mut v = idx;
    for slot in out[start..].iter_mut().rev() {
        *slot = b'a' + (v % 26) as u8;
        v /= 26;
        if v == 0 {
            break;
        }
    }
}

/// This rank's byte share of a `total`-byte dataset.
pub(crate) fn share_of(total: usize, rank: usize, n_ranks: usize) -> usize {
    let base = total / n_ranks;
    let extra = total % n_ranks;
    base + usize::from(rank < extra)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_total_approximately() {
        let g = UniformWords::new(1);
        let total = 10_000;
        let n = 4;
        let bytes: usize = (0..n).map(|r| g.generate(r, n, total).len()).sum();
        // Each rank rounds up to a whole line.
        assert!(bytes >= total);
        assert!(bytes < total + n * 128);
    }

    #[test]
    fn words_have_fixed_length_and_vocab() {
        let g = UniformWords {
            vocab: 100,
            word_len: 5,
            seed: 7,
        };
        let data = g.generate(0, 1, 5_000);
        let mut distinct = std::collections::HashSet::new();
        for line in data.split(|&b| b == b'\n').filter(|l| !l.is_empty()) {
            for w in line.split(|&b| b == b' ').filter(|w| !w.is_empty()) {
                assert_eq!(w.len(), 5, "word {:?}", String::from_utf8_lossy(w));
                assert!(w.iter().all(u8::is_ascii_lowercase));
                distinct.insert(w.to_vec());
            }
        }
        assert!(distinct.len() <= 100);
        assert!(distinct.len() > 50, "uniform draw should hit most of vocab");
    }

    #[test]
    fn deterministic_per_rank() {
        let g = UniformWords::new(3);
        assert_eq!(g.generate(2, 4, 9999), g.generate(2, 4, 9999));
        assert_ne!(g.generate(0, 4, 9999), g.generate(1, 4, 9999));
    }

    #[test]
    fn push_word_is_injective_within_vocab() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000 {
            let mut buf = Vec::new();
            push_word(&mut buf, i, 8);
            assert!(seen.insert(buf), "collision at {i}");
        }
    }
}
