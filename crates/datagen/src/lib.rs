//! # mimir-datagen — workload generators for the Mimir reproduction
//!
//! The paper evaluates on four datasets; each generator here reproduces
//! the statistical properties the evaluation depends on:
//!
//! * [`UniformWords`] — the *WC (Uniform)* dataset: "a synthetic dataset
//!   whose words are randomly generated following a uniform distribution".
//! * [`WikipediaWords`] — a stand-in for the *WC (Wikipedia)* PUMA
//!   dataset, which the paper uses because it is "highly heterogeneous in
//!   terms of type and length of words" and "highly imbalanced". We
//!   reproduce those operative properties with Zipf-distributed word
//!   frequencies and variable word lengths (see DESIGN.md substitutions).
//! * [`PointGen`] — the octree-clustering dataset: 3-D points whose
//!   position "follows a normal distribution with a 0.5 standard
//!   deviation", clustered around the unit-cube centre.
//! * [`Graph500`] — the Graph500 Kronecker generator: scale-free graphs
//!   with an average degree of 32 (edge factor 16).
//!
//! All generators are deterministic in `(seed, rank, n_ranks)`, so every
//! rank of a simulated world can produce its own share of the dataset
//! without communication, and repeated runs see identical data.

mod graph500;
mod points;
mod rng;
mod wikipedia;
mod words;
mod writer;

pub use graph500::Graph500;
pub use points::{Point, PointGen};
pub use rng::{rank_rng, splitmix64, RankRng, Xoshiro256pp};
pub use wikipedia::WikipediaWords;
pub use words::UniformWords;
pub use writer::{parse_edges, parse_points, write_corpus, write_edges, write_points};

/// Number of words per generated text line (both corpora).
pub(crate) const WORDS_PER_LINE: usize = 10;
