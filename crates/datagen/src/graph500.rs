use crate::rng::RankRng;
use crate::{rank_rng, splitmix64};

/// Graph500-style Kronecker (R-MAT) edge generator.
///
/// Parameters follow the Graph500 specification the paper's BFS benchmark
/// uses: `2^scale` vertices, `edge_factor = 16` (so the ratio of directed
/// edge endpoints to vertices — the average degree — is 32), and R-MAT
/// probabilities `A = 0.57, B = 0.19, C = 0.19, D = 0.05`, producing a
/// scale-free degree distribution. Vertex labels are scrambled with a
/// bijective mixing permutation, as in the reference generator, so vertex
/// id gives no locality hint.
///
/// Self-loops and duplicate edges are allowed, as in the specification.
///
/// ```
/// use mimir_datagen::Graph500;
///
/// let g = Graph500::new(10, 42);
/// assert_eq!(g.n_vertices(), 1024);
/// assert_eq!(g.n_edges(), 1024 * 16);
/// // Rank shares partition the edge list deterministically.
/// let total: usize = (0..4).map(|r| g.edges(r, 4).len()).sum();
/// assert_eq!(total as u64, g.n_edges());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Graph500 {
    /// log2 of the vertex count.
    pub scale: u32,
    /// Edges per vertex (undirected); 16 is the Graph500 value.
    pub edge_factor: u64,
    /// Generator seed.
    pub seed: u64,
}

const A: f64 = 0.57;
const B: f64 = 0.19;
const C: f64 = 0.19;

impl Graph500 {
    /// Standard Graph500 parameters at the given scale.
    pub fn new(scale: u32, seed: u64) -> Self {
        assert!((1..=40).contains(&scale), "scale out of supported range");
        Self {
            scale,
            edge_factor: 16,
            seed,
        }
    }

    /// Number of vertices, `2^scale`.
    pub fn n_vertices(&self) -> u64 {
        1u64 << self.scale
    }

    /// Number of (undirected) edges generated in total.
    pub fn n_edges(&self) -> u64 {
        self.n_vertices() * self.edge_factor
    }

    /// Generates this rank's share of the edge list.
    pub fn edges(&self, rank: usize, n_ranks: usize) -> Vec<(u64, u64)> {
        let total = self.n_edges();
        let base = total / n_ranks as u64;
        let extra = total % n_ranks as u64;
        let n = base + u64::from((rank as u64) < extra);
        let mut rng = rank_rng(self.seed ^ 0x06EA_9500, rank);
        let mut out = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let (u, v) = self.rmat_edge(&mut rng);
            out.push((self.scramble(u), self.scramble(v)));
        }
        out
    }

    /// One R-MAT edge: descend `scale` levels of the recursive adjacency
    /// quadrants, with per-level probability noise as in the reference
    /// implementation.
    fn rmat_edge(&self, rng: &mut RankRng) -> (u64, u64) {
        let mut u = 0u64;
        let mut v = 0u64;
        for level in 0..self.scale {
            // ±10 % multiplicative noise keeps the graph from being an
            // exact Kronecker power (per the reference generator).
            let mut noise = |p: f64| p * (0.9 + 0.2 * rng.gen_f64());
            let (a, b, c) = (noise(A), noise(B), noise(C));
            let total = a + b + c + noise(1.0 - A - B - C);
            let r: f64 = rng.gen_f64() * total;
            let bit = 1u64 << (self.scale - 1 - level);
            if r < a {
                // top-left: no bits set
            } else if r < a + b {
                v |= bit;
            } else if r < a + b + c {
                u |= bit;
            } else {
                u |= bit;
                v |= bit;
            }
        }
        (u, v)
    }

    /// Bijective label scrambling on `[0, 2^scale)`: alternating rounds of
    /// odd multiplication and xor-fold, both invertible modulo a power of
    /// two.
    fn scramble(&self, v: u64) -> u64 {
        let mask = self.n_vertices() - 1;
        let k1 = splitmix64(self.seed) | 1; // odd → bijective multiply
        let k2 = splitmix64(self.seed ^ 0xABCD);
        let mut x = v;
        x = x.wrapping_mul(k1) & mask;
        x ^= (k2 & mask) & (x >> 1); // xor-fold: invertible T-function
        x = x.wrapping_mul(k1 | 4 | 1) & mask;
        x ^ (k2 >> 7) & mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    #[test]
    fn edge_count_matches_spec_across_ranks() {
        let g = Graph500::new(10, 7);
        let n: usize = (0..5).map(|r| g.edges(r, 5).len()).sum();
        assert_eq!(n as u64, g.n_edges());
        assert_eq!(g.n_vertices(), 1024);
    }

    #[test]
    fn endpoints_in_range() {
        let g = Graph500::new(8, 1);
        for (u, v) in g.edges(0, 1) {
            assert!(u < g.n_vertices());
            assert!(v < g.n_vertices());
        }
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let g = Graph500::new(12, 3);
        let mut deg: HashMap<u64, u64> = HashMap::new();
        for (u, v) in g.edges(0, 1) {
            *deg.entry(u).or_insert(0) += 1;
            *deg.entry(v).or_insert(0) += 1;
        }
        let max = *deg.values().max().unwrap();
        let mean = deg.values().sum::<u64>() as f64 / g.n_vertices() as f64;
        assert!((mean - 32.0).abs() < 1.0, "mean degree {mean}");
        // Scale-free: the hub's degree dwarfs the mean.
        assert!(max as f64 > 10.0 * mean, "max degree {max}, mean {mean}");
    }

    #[test]
    fn scramble_is_a_bijection() {
        let g = Graph500::new(10, 9);
        let images: HashSet<u64> = (0..g.n_vertices()).map(|v| g.scramble(v)).collect();
        assert_eq!(images.len() as u64, g.n_vertices());
        assert!(images.iter().all(|&v| v < g.n_vertices()));
    }

    #[test]
    fn deterministic_per_rank() {
        let g = Graph500::new(8, 5);
        assert_eq!(g.edges(1, 4), g.edges(1, 4));
        assert_ne!(g.edges(0, 4), g.edges(1, 4));
    }
}
