use std::io::{BufWriter, Write};
use std::path::Path;

/// Materializes a generated corpus to a file, one rank share at a time,
/// for the file-input code path (the paper's datasets live on the
/// parallel file system and are read back through the input splitter).
///
/// `generate` is called with `(rank, n_shares)` and must return that
/// share's bytes; shares are concatenated in rank order.
///
/// # Errors
/// Propagates OS failures creating or writing the file.
pub fn write_corpus(
    path: &Path,
    n_shares: usize,
    mut generate: impl FnMut(usize, usize) -> Vec<u8>,
) -> std::io::Result<u64> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    let mut total = 0u64;
    for share in 0..n_shares {
        let data = generate(share, n_shares);
        w.write_all(&data)?;
        total += data.len() as u64;
    }
    w.flush()?;
    Ok(total)
}

/// Materializes a point dataset as packed 12-byte little-endian records
/// (3 × f32), the binary layout the octree benchmark reads back.
///
/// # Errors
/// Propagates OS failures.
pub fn write_points(
    path: &Path,
    gen: &crate::PointGen,
    total_points: usize,
    n_shares: usize,
) -> std::io::Result<u64> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    let mut written = 0u64;
    for share in 0..n_shares {
        for p in gen.generate(share, n_shares, total_points) {
            for c in p {
                w.write_all(&c.to_le_bytes())?;
            }
            written += 12;
        }
    }
    w.flush()?;
    Ok(written)
}

/// Materializes a Graph500 edge list as packed 16-byte records
/// (2 × u64 LE), the binary layout the BFS benchmark reads back.
///
/// # Errors
/// Propagates OS failures.
pub fn write_edges(path: &Path, graph: &crate::Graph500, n_shares: usize) -> std::io::Result<u64> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    let mut written = 0u64;
    for share in 0..n_shares {
        for (u, v) in graph.edges(share, n_shares) {
            w.write_all(&u.to_le_bytes())?;
            w.write_all(&v.to_le_bytes())?;
            written += 16;
        }
    }
    w.flush()?;
    Ok(written)
}

/// Parses packed 12-byte point records back into points.
pub fn parse_points(bytes: &[u8]) -> Vec<crate::Point> {
    bytes
        .chunks_exact(12)
        .map(|c| {
            [
                f32::from_le_bytes(c[0..4].try_into().expect("f32")),
                f32::from_le_bytes(c[4..8].try_into().expect("f32")),
                f32::from_le_bytes(c[8..12].try_into().expect("f32")),
            ]
        })
        .collect()
}

/// Parses packed 16-byte edge records back into edges.
pub fn parse_edges(bytes: &[u8]) -> Vec<(u64, u64)> {
    bytes
        .chunks_exact(16)
        .map(|c| {
            (
                u64::from_le_bytes(c[0..8].try_into().expect("u64")),
                u64::from_le_bytes(c[8..16].try_into().expect("u64")),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UniformWords;

    #[test]
    fn writes_concatenated_shares() {
        let dir = std::env::temp_dir().join(format!("mimir-writer-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corpus.txt");
        let g = UniformWords::new(1);
        let total = write_corpus(&path, 3, |r, n| g.generate(r, n, 3000)).unwrap();
        let on_disk = std::fs::read(&path).unwrap();
        assert_eq!(on_disk.len() as u64, total);
        let expected: Vec<u8> = (0..3).flat_map(|r| g.generate(r, 3, 3000)).collect();
        assert_eq!(on_disk, expected);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn points_roundtrip_through_file() {
        let dir = std::env::temp_dir().join(format!("mimir-points-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("points.bin");
        let gen = crate::PointGen::new(5);
        let written = write_points(&path, &gen, 1000, 4).unwrap();
        assert_eq!(written, 1000 * 12);
        let bytes = std::fs::read(&path).unwrap();
        let parsed = parse_points(&bytes);
        let expected: Vec<crate::Point> = (0..4).flat_map(|r| gen.generate(r, 4, 1000)).collect();
        assert_eq!(parsed, expected);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn edges_roundtrip_through_file() {
        let dir = std::env::temp_dir().join(format!("mimir-edges-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("edges.bin");
        let graph = crate::Graph500::new(8, 3);
        let written = write_edges(&path, &graph, 2).unwrap();
        assert_eq!(written, graph.n_edges() * 16);
        let bytes = std::fs::read(&path).unwrap();
        let parsed = parse_edges(&bytes);
        let expected: Vec<(u64, u64)> = (0..2).flat_map(|r| graph.edges(r, 2)).collect();
        assert_eq!(parsed, expected);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
