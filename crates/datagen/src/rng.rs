use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64 mixing step: turns correlated integers into well-distributed
/// seeds. This is the standard seed-spreading function from Vigna's
/// xoshiro family.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic RNG stream for one rank: independent across ranks,
/// reproducible across runs.
pub fn rank_rng(seed: u64, rank: usize) -> StdRng {
    let mixed = splitmix64(seed ^ splitmix64(rank as u64 + 1));
    StdRng::seed_from_u64(mixed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn rank_streams_are_reproducible() {
        let a: Vec<u64> = {
            let mut r = rank_rng(42, 3);
            (0..10).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = rank_rng(42, 3);
            (0..10).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn rank_streams_differ_across_ranks_and_seeds() {
        let mut r0 = rank_rng(42, 0);
        let mut r1 = rank_rng(42, 1);
        let mut r2 = rank_rng(43, 0);
        let (a, b, c) = (r0.next_u64(), r1.next_u64(), r2.next_u64());
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn splitmix_spreads_small_inputs() {
        let outs: std::collections::HashSet<u64> = (0..1000).map(splitmix64).collect();
        assert_eq!(outs.len(), 1000);
    }
}
