//! Self-contained deterministic PRNG: xoshiro256++ seeded via SplitMix64.
//!
//! The workspace builds offline with no external crates, so the
//! generators carry their own random-number machinery. xoshiro256++ is
//! Blackman & Vigna's general-purpose generator — 256 bits of state,
//! excellent statistical quality, and a few rotates/adds per draw —
//! and SplitMix64 is the standard companion for spreading small seeds
//! across that state.

/// SplitMix64 mixing step: turns correlated integers into well-distributed
/// seeds. This is the standard seed-spreading function from Vigna's
/// xoshiro family.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ PRNG (Blackman & Vigna, 2019).
#[derive(Debug, Clone)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

/// The RNG type handed out per rank; an alias so call sites don't name
/// the algorithm.
pub type RankRng = Xoshiro256pp;

impl Xoshiro256pp {
    /// Seeds the full 256-bit state from one `u64` by iterating
    /// SplitMix64, as the xoshiro reference code recommends.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            *slot = splitmix64(x);
        }
        // All-zero state is the one forbidden fixed point.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256pp { s }
    }

    /// The next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)` with 24 bits of precision.
    #[inline]
    pub fn gen_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform integer in `range` (half-open, must be non-empty).
    #[inline]
    pub fn gen_range(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        let span = (range.end - range.start) as u64;
        // Lemire's multiply-shift rejection method: unbiased without
        // division on the common path.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (span as u128);
        let mut low = m as u64;
        if low < span {
            let threshold = span.wrapping_neg() % span;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (span as u128);
                low = m as u64;
            }
        }
        range.start + (m >> 64) as usize
    }
}

/// A deterministic RNG stream for one rank: independent across ranks,
/// reproducible across runs.
pub fn rank_rng(seed: u64, rank: usize) -> RankRng {
    let mixed = splitmix64(seed ^ splitmix64(rank as u64 + 1));
    Xoshiro256pp::seed_from_u64(mixed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_streams_are_reproducible() {
        let a: Vec<u64> = {
            let mut r = rank_rng(42, 3);
            (0..10).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = rank_rng(42, 3);
            (0..10).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn rank_streams_differ_across_ranks_and_seeds() {
        let mut r0 = rank_rng(42, 0);
        let mut r1 = rank_rng(42, 1);
        let mut r2 = rank_rng(43, 0);
        let (a, b, c) = (r0.next_u64(), r1.next_u64(), r2.next_u64());
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn splitmix_spreads_small_inputs() {
        let outs: std::collections::HashSet<u64> = (0..1000).map(splitmix64).collect();
        assert_eq!(outs.len(), 1000);
    }

    #[test]
    fn matches_xoshiro_reference_vectors() {
        // First outputs of xoshiro256++ from state {1, 2, 3, 4}, per the
        // reference implementation (prng.di.unimi.it).
        let mut r = Xoshiro256pp { s: [1, 2, 3, 4] };
        let got: Vec<u64> = (0..6).map(|_| r.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                41943041,
                58720359,
                3588806011781223,
                3591011842654386,
                9228616714210784205,
                9973669472204895162,
            ]
        );
    }

    #[test]
    fn floats_cover_the_unit_interval() {
        let mut r = rank_rng(7, 0);
        let mut min = 1.0f64;
        let mut max = 0.0f64;
        for _ in 0..10_000 {
            let v = r.gen_f64();
            assert!((0.0..1.0).contains(&v));
            min = min.min(v);
            max = max.max(v);
        }
        assert!(min < 0.01);
        assert!(max > 0.99);
        let f = r.gen_f32();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn gen_range_is_in_bounds_and_roughly_uniform() {
        let mut r = rank_rng(9, 1);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            let v = r.gen_range(5..15);
            assert!((5..15).contains(&v));
            counts[v - 5] += 1;
        }
        for &c in &counts {
            // Each bucket expects 10_000; allow ±10 %.
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }
}
