use crate::words::{push_word, share_of};
use crate::{rank_rng, splitmix64, WORDS_PER_LINE};

/// The *WC (Wikipedia)* stand-in corpus (see DESIGN.md substitutions):
/// word frequencies follow a Zipf distribution and word lengths vary,
/// reproducing the two properties the paper relies on — heterogeneity
/// ("in terms of type and length of words") and heavy key imbalance
/// across reducers, which is what breaks MR-MPI's static paging in the
/// weak-scaling experiments (Figures 10 and 14).
#[derive(Debug, Clone, Copy)]
pub struct WikipediaWords {
    /// Number of distinct words.
    pub vocab: usize,
    /// Zipf exponent; 1.0 approximates natural-language skew.
    pub zipf_s: f64,
    /// Generator seed.
    pub seed: u64,
}

impl WikipediaWords {
    /// Defaults: 50 Ki words, Zipf(1.0).
    pub fn new(seed: u64) -> Self {
        Self {
            vocab: 50_000,
            zipf_s: 1.0,
            seed,
        }
    }

    /// Length of vocabulary word `i`, in 4..=16 bytes (frequency-weighted
    /// mean ≈ 10, which puts the KV-hint saving of Figure 7 near the
    /// paper's ~26 %).
    pub fn word_len(i: usize) -> usize {
        4 + (splitmix64(i as u64 ^ 0x057D_1EE7) % 13) as usize
    }

    /// Generates this rank's share (≈ `total_bytes / n_ranks`) of the
    /// corpus as newline-separated text.
    pub fn generate(&self, rank: usize, n_ranks: usize, total_bytes: usize) -> Vec<u8> {
        let share = share_of(total_bytes, rank, n_ranks);
        let cdf = self.cdf();
        let mut rng = rank_rng(self.seed ^ 0x5EED_0F17, rank);
        let mut out = Vec::with_capacity(share + 64);
        let mut col = 0usize;
        while out.len() < share {
            let u: f64 = rng.gen_f64();
            let w = cdf.partition_point(|&c| c < u).min(self.vocab - 1);
            push_word(&mut out, w, Self::word_len(w));
            col += 1;
            if col == WORDS_PER_LINE {
                out.push(b'\n');
                col = 0;
            } else {
                out.push(b' ');
            }
        }
        if out.last() != Some(&b'\n') {
            out.push(b'\n');
        }
        out
    }

    /// Cumulative Zipf distribution over the vocabulary.
    fn cdf(&self) -> Vec<f64> {
        let mut weights: Vec<f64> = (0..self.vocab)
            .map(|i| 1.0 / ((i + 1) as f64).powf(self.zipf_s))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn word_counts(data: &[u8]) -> std::collections::HashMap<Vec<u8>, usize> {
        let mut m = std::collections::HashMap::new();
        for line in data.split(|&b| b == b'\n') {
            for w in line.split(|&b| b == b' ').filter(|w| !w.is_empty()) {
                *m.entry(w.to_vec()).or_insert(0) += 1;
            }
        }
        m
    }

    #[test]
    fn frequencies_are_heavily_skewed() {
        let g = WikipediaWords::new(11);
        let data = g.generate(0, 1, 200_000);
        let counts = word_counts(&data);
        let total: usize = counts.values().sum();
        let max = *counts.values().max().unwrap();
        // Zipf(1.0) over 50k words: the top word carries ~9% of mass;
        // uniform would give ~0.002%.
        assert!(
            max as f64 / total as f64 > 0.03,
            "top word only {max}/{total}"
        );
    }

    #[test]
    fn word_lengths_are_heterogeneous() {
        let g = WikipediaWords::new(11);
        let data = g.generate(0, 1, 100_000);
        let lens: std::collections::HashSet<usize> =
            word_counts(&data).keys().map(Vec::len).collect();
        assert!(lens.len() >= 8, "only {} distinct lengths", lens.len());
        assert!(lens.iter().all(|&l| (4..=16).contains(&l)));
    }

    #[test]
    fn weighted_mean_length_supports_fig7_target() {
        let g = WikipediaWords::new(5);
        let data = g.generate(0, 1, 500_000);
        let counts = word_counts(&data);
        let (mut num, mut den) = (0usize, 0usize);
        for (w, c) in &counts {
            num += w.len() * c;
            den += c;
        }
        let mean = num as f64 / den as f64;
        // KV-hint saving = 7 / (16 + mean); the paper reports ~26 %, which
        // needs mean ≈ 10-12.
        assert!((8.0..=13.0).contains(&mean), "mean word length {mean}");
    }

    #[test]
    fn deterministic_and_rank_disjoint_streams() {
        let g = WikipediaWords::new(3);
        assert_eq!(g.generate(1, 4, 10_000), g.generate(1, 4, 10_000));
        assert_ne!(g.generate(0, 4, 10_000), g.generate(1, 4, 10_000));
    }

    #[test]
    fn frequency_rank_follows_a_power_law() {
        // Fit log(freq) ~ a + b·log(rank) over the top 200 ranks; a
        // Zipf(1.0) corpus should have slope b ≈ -1.
        let g = WikipediaWords::new(17);
        let data = g.generate(0, 1, 2_000_000);
        let mut counts: Vec<usize> = word_counts(&data).into_values().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top: Vec<(f64, f64)> = counts
            .iter()
            .take(200)
            .enumerate()
            .map(|(i, &c)| (((i + 1) as f64).ln(), (c as f64).ln()))
            .collect();
        let n = top.len() as f64;
        let sx: f64 = top.iter().map(|(x, _)| x).sum();
        let sy: f64 = top.iter().map(|(_, y)| y).sum();
        let sxx: f64 = top.iter().map(|(x, _)| x * x).sum();
        let sxy: f64 = top.iter().map(|(x, y)| x * y).sum();
        let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
        assert!(
            (-1.25..=-0.75).contains(&slope),
            "power-law slope {slope:.3}, expected ≈ -1"
        );
    }
}
