//! Criterion micro-benchmarks over the framework's hot kernels: hashing,
//! KV codecs, container insert/drain, the two-pass convert, the combiner
//! fold, and the shuffle round-trip.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mimir_core::{
    convert, fxhash64, CombinerTable, Emitter, KvContainer, KvMeta, MimirConfig, MimirContext,
};
use mimir_io::IoModel;
use mimir_mem::MemPool;
use mimir_mpi::run_world;

const N_KVS: usize = 10_000;

fn keys() -> Vec<Vec<u8>> {
    (0..N_KVS)
        .map(|i| format!("key-{:06}", i % 997).into_bytes())
        .collect()
}

fn bench_hash(c: &mut Criterion) {
    let mut g = c.benchmark_group("hash");
    for len in [4usize, 16, 64] {
        let data = vec![0xA5u8; len];
        g.throughput(Throughput::Bytes(len as u64));
        g.bench_with_input(BenchmarkId::new("fxhash64", len), &data, |b, d| {
            b.iter(|| fxhash64(black_box(d)));
        });
    }
    g.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec");
    let ks = keys();
    let val = 7u64.to_le_bytes();
    for (name, meta) in [("var", KvMeta::var()), ("hint", KvMeta::cstr_key_u64_val())] {
        g.throughput(Throughput::Elements(N_KVS as u64));
        g.bench_function(BenchmarkId::new("encode", name), |b| {
            b.iter(|| {
                let mut buf = Vec::with_capacity(N_KVS * 32);
                for k in &ks {
                    mimir_core::encode_push(meta, k, &val, &mut buf);
                }
                black_box(buf.len())
            });
        });
        let mut buf = Vec::new();
        for k in &ks {
            mimir_core::encode_push(meta, k, &val, &mut buf);
        }
        g.bench_function(BenchmarkId::new("decode", name), |b| {
            b.iter(|| {
                let mut n = 0u64;
                for (k, _v) in mimir_core::KvDecoder::new(meta, &buf) {
                    n += k.len() as u64;
                }
                black_box(n)
            });
        });
    }
    g.finish();
}

fn bench_kvc(c: &mut Criterion) {
    let mut g = c.benchmark_group("kvc");
    g.throughput(Throughput::Elements(N_KVS as u64));
    let ks = keys();
    let val = 1u64.to_le_bytes();
    g.bench_function("push_drain", |b| {
        let pool = MemPool::unlimited("bench", 64 * 1024);
        b.iter(|| {
            let mut kvc = KvContainer::new(&pool, KvMeta::cstr_key_u64_val());
            for k in &ks {
                kvc.push(k, &val).unwrap();
            }
            let mut n = 0u64;
            kvc.drain(|_, _| {
                n += 1;
                Ok(())
            })
            .unwrap();
            black_box(n)
        });
    });
    g.finish();
}

fn bench_convert(c: &mut Criterion) {
    let mut g = c.benchmark_group("convert");
    g.throughput(Throughput::Elements(N_KVS as u64));
    let ks = keys();
    let val = 1u64.to_le_bytes();
    g.bench_function("two_pass_group", |b| {
        let pool = MemPool::unlimited("bench", 64 * 1024);
        b.iter(|| {
            let mut kvc = KvContainer::new(&pool, KvMeta::cstr_key_u64_val());
            for k in &ks {
                kvc.push(k, &val).unwrap();
            }
            let kmvc = convert(kvc, &pool).unwrap();
            black_box(kmvc.n_groups())
        });
    });
    g.finish();
}

fn bench_combiner(c: &mut Criterion) {
    let mut g = c.benchmark_group("combiner");
    g.throughput(Throughput::Elements(N_KVS as u64));
    let ks = keys();
    let val = 1u64.to_le_bytes();
    g.bench_function("fold_sum", |b| {
        let pool = MemPool::unlimited("bench", 64 * 1024);
        b.iter(|| {
            let mut t = CombinerTable::new(
                &pool,
                KvMeta::cstr_key_u64_val(),
                Box::new(|_k, a, bb, out| {
                    let s = u64::from_le_bytes(a.try_into().unwrap())
                        + u64::from_le_bytes(bb.try_into().unwrap());
                    out.extend_from_slice(&s.to_le_bytes());
                }),
            )
            .unwrap();
            for k in &ks {
                t.emit(k, &val).unwrap();
            }
            black_box(t.unique_keys())
        });
    });
    g.finish();
}

fn bench_shuffle(c: &mut Criterion) {
    let mut g = c.benchmark_group("shuffle");
    g.throughput(Throughput::Elements(N_KVS as u64));
    g.sample_size(20);
    let ks = keys();
    let val = 1u64.to_le_bytes();
    for ranks in [1usize, 4] {
        g.bench_function(BenchmarkId::new("map_shuffle", ranks), |b| {
            b.iter(|| {
                let ks = &ks;
                let out = run_world(ranks, move |comm| {
                    let pool = MemPool::unlimited("bench", 64 * 1024);
                    let mut ctx =
                        MimirContext::new(comm, pool, IoModel::free(), MimirConfig::default())
                            .unwrap();
                    let job = ctx.job().kv_meta(KvMeta::cstr_key_u64_val());
                    let out = job
                        .map_shuffle(&mut |em: &mut dyn Emitter| {
                            for k in ks {
                                em.emit(k, &val)?;
                            }
                            Ok(())
                        })
                        .unwrap();
                    out.output.len()
                });
                black_box(out[0])
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_hash,
    bench_codec,
    bench_kvc,
    bench_convert,
    bench_combiner,
    bench_shuffle
);
criterion_main!(benches);
