//! Micro-benchmarks over the framework's hot kernels: hashing, KV
//! codecs, container insert/drain, the two-pass convert, the combiner
//! fold, and the shuffle round-trip. Plain harness (`harness = false`):
//! each case is timed over a fixed iteration count and reported as
//! ns/iter, so `cargo bench` works without external crates.

use std::hint::black_box;
use std::time::Instant;

use mimir_core::{
    convert, fxhash64, CombinerTable, Emitter, KvContainer, KvMeta, MimirConfig, MimirContext,
};
use mimir_io::IoModel;
use mimir_mem::MemPool;
use mimir_mpi::run_world;

const N_KVS: usize = 10_000;

fn bench<R>(name: &str, iters: u32, mut f: impl FnMut() -> R) {
    // One warm-up pass, then the timed loop.
    black_box(f());
    let t0 = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let per = t0.elapsed().as_nanos() / u128::from(iters);
    println!("{name:<40}{per:>12} ns/iter");
}

fn keys() -> Vec<Vec<u8>> {
    (0..N_KVS)
        .map(|i| format!("key-{:06}", i % 997).into_bytes())
        .collect()
}

fn bench_hash() {
    for len in [4usize, 16, 64] {
        let data = vec![0xA5u8; len];
        bench(&format!("hash/fxhash64/{len}"), 1_000_000, || {
            fxhash64(black_box(&data))
        });
    }
}

fn bench_codec() {
    let ks = keys();
    let val = 7u64.to_le_bytes();
    for (name, meta) in [("var", KvMeta::var()), ("hint", KvMeta::cstr_key_u64_val())] {
        bench(&format!("codec/encode/{name}"), 200, || {
            let mut buf = Vec::with_capacity(N_KVS * 32);
            for k in &ks {
                mimir_core::encode_push(meta, k, &val, &mut buf);
            }
            buf.len()
        });
        let mut buf = Vec::new();
        for k in &ks {
            mimir_core::encode_push(meta, k, &val, &mut buf);
        }
        bench(&format!("codec/decode/{name}"), 200, || {
            let mut n = 0u64;
            for (k, _v) in mimir_core::KvDecoder::new(meta, &buf) {
                n += k.len() as u64;
            }
            n
        });
    }
}

fn bench_kvc() {
    let ks = keys();
    let val = 1u64.to_le_bytes();
    let pool = MemPool::unlimited("bench", 64 * 1024);
    bench("kvc/push_drain", 200, || {
        let mut kvc = KvContainer::new(&pool, KvMeta::cstr_key_u64_val());
        for k in &ks {
            kvc.push(k, &val).unwrap();
        }
        let mut n = 0u64;
        kvc.drain(|_, _| {
            n += 1;
            Ok(())
        })
        .unwrap();
        n
    });
}

fn bench_convert() {
    let ks = keys();
    let val = 1u64.to_le_bytes();
    let pool = MemPool::unlimited("bench", 64 * 1024);
    bench("convert/two_pass_group", 100, || {
        let mut kvc = KvContainer::new(&pool, KvMeta::cstr_key_u64_val());
        for k in &ks {
            kvc.push(k, &val).unwrap();
        }
        let kmvc = convert(kvc, &pool).unwrap();
        kmvc.n_groups()
    });
}

fn bench_combiner() {
    let ks = keys();
    let val = 1u64.to_le_bytes();
    let pool = MemPool::unlimited("bench", 64 * 1024);
    bench("combiner/fold_sum", 100, || {
        let mut t = CombinerTable::new(
            &pool,
            KvMeta::cstr_key_u64_val(),
            Box::new(|_k, a, bb, out| {
                let s = u64::from_le_bytes(a.try_into().unwrap())
                    + u64::from_le_bytes(bb.try_into().unwrap());
                out.extend_from_slice(&s.to_le_bytes());
            }),
        )
        .unwrap();
        for k in &ks {
            t.emit(k, &val).unwrap();
        }
        t.unique_keys()
    });
}

fn bench_shuffle() {
    let ks = keys();
    let val = 1u64.to_le_bytes();
    for ranks in [1usize, 4] {
        bench(&format!("shuffle/map_shuffle/{ranks}"), 20, || {
            let ks = &ks;
            let out = run_world(ranks, move |comm| {
                let pool = MemPool::unlimited("bench", 64 * 1024);
                let mut ctx =
                    MimirContext::new(comm, pool, IoModel::free(), MimirConfig::default()).unwrap();
                let job = ctx.job().kv_meta(KvMeta::cstr_key_u64_val());
                let out = job
                    .map_shuffle(&mut |em: &mut dyn Emitter| {
                        for k in ks {
                            em.emit(k, &val)?;
                        }
                        Ok(())
                    })
                    .unwrap();
                out.output.len()
            });
            out[0]
        });
    }
}

fn main() {
    bench_hash();
    bench_codec();
    bench_kvc();
    bench_convert();
    bench_combiner();
    bench_shuffle();
}
