//! Small-scale end-to-end instances of every figure's workload, so
//! `cargo bench` exercises each reproduction path. The full sweeps live
//! in the `fig*` binaries (`cargo run --release -p mimir-bench --bin …`).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mimir_apps::bfs::BfsOptions;
use mimir_apps::octree::OcOptions;
use mimir_apps::wordcount::WcOptions;
use mimir_bench::runner::{
    run_bfs_mimir, run_bfs_mrmpi, run_fig1_point, run_oc_mimir, run_oc_mrmpi, run_wc_mimir,
    run_wc_mrmpi, WcDataset,
};
use mimir_bench::{Platform, Status};

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures_smoke");
    g.sample_size(10);
    let comet = Platform::comet_mini();
    let mira = Platform::mira_mini();

    g.bench_function("fig01_point_in_memory", |b| {
        b.iter(|| black_box(run_fig1_point(&comet, 512 << 10)))
    });
    g.bench_function("fig07_wc_wiki_hint", |b| {
        b.iter(|| {
            let o = run_wc_mimir(
                &comet,
                1,
                WcDataset::Wikipedia,
                512 << 10,
                WcOptions {
                    hint: true,
                    ..WcOptions::default()
                },
            );
            assert_eq!(o.status, Status::InMemory);
            black_box(o.kv_bytes)
        })
    });
    g.bench_function("fig08_wc_mimir_baseline", |b| {
        b.iter(|| black_box(run_wc_mimir(&comet, 1, WcDataset::Uniform, 512 << 10, WcOptions::default())))
    });
    g.bench_function("fig08_wc_mrmpi_large_page", |b| {
        b.iter(|| {
            black_box(run_wc_mrmpi(
                &comet,
                1,
                WcDataset::Uniform,
                512 << 10,
                comet.mrmpi_page_large,
                false,
            ))
        })
    });
    g.bench_function("fig08_oc_mimir", |b| {
        b.iter(|| black_box(run_oc_mimir(&comet, 1, 1 << 14, OcOptions::default())))
    });
    g.bench_function("fig08_bfs_mimir", |b| {
        b.iter(|| black_box(run_bfs_mimir(&comet, 1, 10, BfsOptions::default())))
    });
    g.bench_function("fig11_oc_mrmpi_cps", |b| {
        b.iter(|| black_box(run_oc_mrmpi(&comet, 1, 1 << 14, comet.mrmpi_page_large, true)))
    });
    g.bench_function("fig12_bfs_mrmpi_mira", |b| {
        b.iter(|| black_box(run_bfs_mrmpi(&mira, 1, 9, mira.mrmpi_page_small, false)))
    });
    g.bench_function("fig13_wc_full_stack_mira", |b| {
        b.iter(|| black_box(run_wc_mimir(&mira, 1, WcDataset::Wikipedia, 256 << 10, WcOptions::all())))
    });
    g.bench_function("fig14_wc_scaling_2nodes", |b| {
        let thin = mira.thin(2);
        b.iter(|| {
            black_box(run_wc_mimir(
                &thin,
                2,
                WcDataset::Uniform,
                64 << 10,
                WcOptions {
                    hint: true,
                    ..WcOptions::default()
                },
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
