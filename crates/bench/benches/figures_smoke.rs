//! Small-scale end-to-end instances of every figure's workload, so
//! `cargo bench` exercises each reproduction path. The full sweeps live
//! in the `fig*` binaries (`cargo run --release -p mimir-bench --bin …`).
//! Plain harness: each case is timed over a few iterations and reported
//! as ms/iter.

use std::hint::black_box;
use std::time::Instant;

use mimir_apps::bfs::BfsOptions;
use mimir_apps::octree::OcOptions;
use mimir_apps::wordcount::WcOptions;
use mimir_bench::runner::{
    run_bfs_mimir, run_bfs_mrmpi, run_fig1_point, run_oc_mimir, run_oc_mrmpi, run_wc_mimir,
    run_wc_mrmpi, WcDataset,
};
use mimir_bench::{Platform, Status};

const ITERS: u32 = 3;

fn bench<R>(name: &str, mut f: impl FnMut() -> R) {
    black_box(f());
    let t0 = Instant::now();
    for _ in 0..ITERS {
        black_box(f());
    }
    let per_ms = t0.elapsed().as_secs_f64() * 1e3 / f64::from(ITERS);
    println!("{name:<34}{per_ms:>12.3} ms/iter");
}

fn main() {
    let comet = Platform::comet_mini();
    let mira = Platform::mira_mini();

    bench("fig01_point_in_memory", || {
        run_fig1_point(&comet, 512 << 10)
    });
    bench("fig07_wc_wiki_hint", || {
        let o = run_wc_mimir(
            &comet,
            1,
            WcDataset::Wikipedia,
            512 << 10,
            WcOptions {
                hint: true,
                ..WcOptions::default()
            },
        );
        assert_eq!(o.status, Status::InMemory);
        o.kv_bytes
    });
    bench("fig08_wc_mimir_baseline", || {
        run_wc_mimir(
            &comet,
            1,
            WcDataset::Uniform,
            512 << 10,
            WcOptions::default(),
        )
    });
    bench("fig08_wc_mrmpi_large_page", || {
        run_wc_mrmpi(
            &comet,
            1,
            WcDataset::Uniform,
            512 << 10,
            comet.mrmpi_page_large,
            false,
        )
    });
    bench("fig08_oc_mimir", || {
        run_oc_mimir(&comet, 1, 1 << 14, OcOptions::default())
    });
    bench("fig08_bfs_mimir", || {
        run_bfs_mimir(&comet, 1, 10, BfsOptions::default())
    });
    bench("fig11_oc_mrmpi_cps", || {
        run_oc_mrmpi(&comet, 1, 1 << 14, comet.mrmpi_page_large, true)
    });
    bench("fig12_bfs_mrmpi_mira", || {
        run_bfs_mrmpi(&mira, 1, 9, mira.mrmpi_page_small, false)
    });
    bench("fig13_wc_full_stack_mira", || {
        run_wc_mimir(&mira, 1, WcDataset::Wikipedia, 256 << 10, WcOptions::all())
    });
    let thin = mira.thin(2);
    bench("fig14_wc_scaling_2nodes", || {
        run_wc_mimir(
            &thin,
            2,
            WcDataset::Uniform,
            64 << 10,
            WcOptions {
                hint: true,
                ..WcOptions::default()
            },
        )
    });
}
