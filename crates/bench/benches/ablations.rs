//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. **Communication-buffer size** — smaller buffers mean more exchange
//!    rounds (interleaving memory-bound vs round overhead).
//! 2. **Mimir page size** — container granularity vs allocation churn.
//! 3. **Copy path** — Mimir's direct-into-send-buffer emission vs
//!    MR-MPI's staged copies (map page → temps → send buffer), measured
//!    on the same in-memory workload.
//! 4. **Grouping strategy** — the two-pass hash-bucket convert vs the
//!    partial-reduction fold vs MR-MPI's sort-based grouping.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mimir_apps::wordcount::{wordcount_mimir, wordcount_mrmpi, WcOptions};
use mimir_core::{MimirConfig, MimirContext};
use mimir_datagen::UniformWords;
use mimir_io::{IoModel, SpillStore};
use mimir_mem::MemPool;
use mimir_mpi::run_world;
use mrmpi::MrMpiConfig;

const RANKS: usize = 4;
const TEXT_BYTES: usize = 512 << 10;

fn text(rank: usize) -> Vec<u8> {
    UniformWords {
        vocab: 4096,
        word_len: 8,
        seed: 99,
    }
    .generate(rank, RANKS, TEXT_BYTES)
}

fn run_mimir_wc(comm_buf: usize, page: usize, opts: WcOptions) -> u64 {
    let out = run_world(RANKS, move |comm| {
        let t = text(comm.rank());
        let pool = MemPool::unlimited("ablate", page);
        let mut ctx = MimirContext::new(
            comm,
            pool,
            IoModel::free(),
            MimirConfig {
                comm_buf_size: comm_buf,
            },
        )
        .unwrap();
        let (counts, m) = wordcount_mimir(&mut ctx, &t, &opts).unwrap();
        (counts.len() as u64, m.exchange_rounds)
    });
    out.iter().map(|(n, _)| n).sum()
}

fn ablate_comm_buffer(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_comm_buffer");
    g.sample_size(10);
    for comm_buf in [8 << 10, 64 << 10, 256 << 10] {
        g.bench_with_input(
            BenchmarkId::from_parameter(comm_buf >> 10),
            &comm_buf,
            |b, &cb| {
                b.iter(|| black_box(run_mimir_wc(cb, 64 << 10, WcOptions::default())));
            },
        );
    }
    g.finish();
}

fn ablate_page_size(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_page_size");
    g.sample_size(10);
    for page in [16 << 10, 64 << 10, 256 << 10] {
        g.bench_with_input(BenchmarkId::from_parameter(page >> 10), &page, |b, &p| {
            b.iter(|| black_box(run_mimir_wc(64 << 10, p, WcOptions::default())));
        });
    }
    g.finish();
}

fn ablate_copy_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_copy_path");
    g.sample_size(10);
    // Mimir: map emits straight into the partitioned send buffer.
    g.bench_function("mimir_direct_emit", |b| {
        b.iter(|| black_box(run_mimir_wc(64 << 10, 64 << 10, WcOptions::default())));
    });
    // MR-MPI: map page → temp scan → send buffer → double receive buffer
    // → output page (kept in-memory by a generous page size).
    g.bench_function("mrmpi_staged_copies", |b| {
        b.iter(|| {
            let out = run_world(RANKS, move |comm| {
                let t = text(comm.rank());
                let pool = MemPool::unlimited("ablate", 64 << 10);
                let store = SpillStore::new_temp("ablate", IoModel::free()).unwrap();
                let (counts, m) = wordcount_mrmpi(
                    comm,
                    pool,
                    store,
                    MrMpiConfig::with_page_size(1 << 20),
                    &t,
                    false,
                )
                .unwrap();
                assert!(!m.spilled);
                counts.len() as u64
            });
            black_box(out.iter().sum::<u64>())
        });
    });
    g.finish();
}

fn ablate_grouping(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_grouping");
    g.sample_size(10);
    // Hash-bucket two-pass convert (baseline reduce path).
    g.bench_function("two_pass_convert", |b| {
        b.iter(|| black_box(run_mimir_wc(64 << 10, 64 << 10, WcOptions::default())));
    });
    // Partial-reduction fold (no KVC/KMVC materialization).
    g.bench_function("partial_reduce_fold", |b| {
        b.iter(|| {
            black_box(run_mimir_wc(
                64 << 10,
                64 << 10,
                WcOptions {
                    partial_reduce: true,
                    ..WcOptions::default()
                },
            ))
        });
    });
    // MR-MPI's sort-based grouping on the same workload.
    g.bench_function("sort_merge_group", |b| {
        b.iter(|| {
            let out = run_world(RANKS, move |comm| {
                let t = text(comm.rank());
                let pool = MemPool::unlimited("ablate", 64 << 10);
                let store = SpillStore::new_temp("ablate", IoModel::free()).unwrap();
                let (counts, _) = wordcount_mrmpi(
                    comm,
                    pool,
                    store,
                    MrMpiConfig::with_page_size(1 << 20),
                    &t,
                    false,
                )
                .unwrap();
                counts.len() as u64
            });
            black_box(out.iter().sum::<u64>())
        });
    });
    g.finish();
}

fn ablate_cps_flush_threshold(c: &mut Criterion) {
    use mimir_core::typed;
    let mut g = c.benchmark_group("ablation_cps_flush");
    g.sample_size(10);
    // Unique-heavy stream: compression cannot help, only cost — the
    // regime where the streaming flush budget matters.
    for flush_kib in [0usize, 16, 256] {
        let label = if flush_kib == 0 {
            "delayed".to_string()
        } else {
            format!("flush-{flush_kib}K")
        };
        g.bench_function(BenchmarkId::new("unique_keys", label), |b| {
            b.iter(|| {
                let out = run_world(2, move |comm| {
                    let pool = MemPool::unlimited("ablate", 64 << 10);
                    let mut ctx = MimirContext::new(
                        comm,
                        pool.clone(),
                        IoModel::free(),
                        MimirConfig::default(),
                    )
                    .unwrap();
                    let mut job = ctx
                        .job()
                        .kv_meta(mimir_core::KvMeta::cstr_key_u64_val())
                        .out_meta(mimir_core::KvMeta::cstr_key_u64_val());
                    if flush_kib > 0 {
                        job = job.compress_flush_bytes(flush_kib << 10);
                    }
                    let sum = |_k: &[u8], a: &[u8], bb: &[u8], o: &mut Vec<u8>| {
                        o.extend_from_slice(&typed::enc_u64(
                            typed::dec_u64(a) + typed::dec_u64(bb),
                        ));
                    };
                    let res = job
                        .map_partial_reduce_compress(
                            &mut |em| {
                                for i in 0..5_000u64 {
                                    em.emit(
                                        format!("uniq-{i}").as_bytes(),
                                        &typed::enc_u64(1),
                                    )?;
                                }
                                Ok(())
                            },
                            Box::new(sum),
                            Box::new(sum),
                        )
                        .unwrap();
                    (res.output.len(), pool.peak())
                });
                black_box(out[0].1)
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    ablate_comm_buffer,
    ablate_page_size,
    ablate_copy_path,
    ablate_grouping,
    ablate_cps_flush_threshold
);
criterion_main!(benches);
