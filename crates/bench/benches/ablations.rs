//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. **Communication-buffer size** — smaller buffers mean more exchange
//!    rounds (interleaving memory-bound vs round overhead).
//! 2. **Mimir page size** — container granularity vs allocation churn.
//! 3. **Copy path** — Mimir's direct-into-send-buffer emission vs
//!    MR-MPI's staged copies (map page → temps → send buffer), measured
//!    on the same in-memory workload.
//! 4. **Grouping strategy** — the two-pass hash-bucket convert vs the
//!    partial-reduction fold vs MR-MPI's sort-based grouping.
//! 5. **Shuffle mode** — the legacy allocate-per-round exchange vs the
//!    zero-copy and overlapped data paths, end to end through WordCount.
//!
//! Plain harness: each case is timed over a few iterations and reported
//! as ms/iter.

use std::hint::black_box;
use std::time::Instant;

use mimir_apps::wordcount::{wordcount_mimir, wordcount_mrmpi, WcOptions};
use mimir_core::{MimirConfig, MimirContext};
use mimir_datagen::UniformWords;
use mimir_io::{IoModel, SpillStore};
use mimir_mem::MemPool;
use mimir_mpi::run_world;
use mrmpi::MrMpiConfig;

const RANKS: usize = 4;
const TEXT_BYTES: usize = 512 << 10;
const ITERS: u32 = 3;

fn bench<R>(name: &str, mut f: impl FnMut() -> R) {
    black_box(f());
    let t0 = Instant::now();
    for _ in 0..ITERS {
        black_box(f());
    }
    let per_ms = t0.elapsed().as_secs_f64() * 1e3 / f64::from(ITERS);
    println!("{name:<40}{per_ms:>12.3} ms/iter");
}

fn text(rank: usize) -> Vec<u8> {
    UniformWords {
        vocab: 4096,
        word_len: 8,
        seed: 99,
    }
    .generate(rank, RANKS, TEXT_BYTES)
}

fn run_mimir_wc(comm_buf: usize, page: usize, opts: WcOptions) -> u64 {
    let out = run_world(RANKS, move |comm| {
        let t = text(comm.rank());
        let pool = MemPool::unlimited("ablate", page);
        let mut ctx = MimirContext::new(
            comm,
            pool,
            IoModel::free(),
            MimirConfig {
                comm_buf_size: comm_buf,
                ..MimirConfig::default()
            },
        )
        .unwrap();
        let (counts, m) = wordcount_mimir(&mut ctx, &t, &opts).unwrap();
        (counts.len() as u64, m.exchange_rounds)
    });
    out.iter().map(|(n, _)| n).sum()
}

fn run_mrmpi_wc() -> u64 {
    let out = run_world(RANKS, move |comm| {
        let t = text(comm.rank());
        let pool = MemPool::unlimited("ablate", 64 << 10);
        let store = SpillStore::new_temp("ablate", IoModel::free()).unwrap();
        let (counts, m) = wordcount_mrmpi(
            comm,
            pool,
            store,
            MrMpiConfig::with_page_size(1 << 20),
            &t,
            false,
        )
        .unwrap();
        assert!(!m.spilled);
        counts.len() as u64
    });
    out.iter().sum::<u64>()
}

fn ablate_comm_buffer() {
    for comm_buf in [8 << 10, 64 << 10, 256 << 10] {
        bench(&format!("comm_buffer/{}K", comm_buf >> 10), || {
            run_mimir_wc(comm_buf, 64 << 10, WcOptions::default())
        });
    }
}

fn ablate_page_size() {
    for page in [16 << 10, 64 << 10, 256 << 10] {
        bench(&format!("page_size/{}K", page >> 10), || {
            run_mimir_wc(64 << 10, page, WcOptions::default())
        });
    }
}

fn ablate_copy_path() {
    // Mimir: map emits straight into the partitioned send buffer.
    bench("copy_path/mimir_direct_emit", || {
        run_mimir_wc(64 << 10, 64 << 10, WcOptions::default())
    });
    // MR-MPI: map page → temp scan → send buffer → double receive buffer
    // → output page (kept in-memory by a generous page size).
    bench("copy_path/mrmpi_staged_copies", run_mrmpi_wc);
}

fn ablate_grouping() {
    // Hash-bucket two-pass convert (baseline reduce path).
    bench("grouping/two_pass_convert", || {
        run_mimir_wc(64 << 10, 64 << 10, WcOptions::default())
    });
    // Partial-reduction fold (no KVC/KMVC materialization).
    bench("grouping/partial_reduce_fold", || {
        run_mimir_wc(
            64 << 10,
            64 << 10,
            WcOptions {
                partial_reduce: true,
                ..WcOptions::default()
            },
        )
    });
    // MR-MPI's sort-based grouping on the same workload.
    bench("grouping/sort_merge_group", run_mrmpi_wc);
}

fn ablate_shuffle_mode() {
    use mimir_core::ShuffleMode;
    // Full WordCount pipeline under each shuffle data path; the raw
    // engine numbers live in `shuffle_bench` / BENCH_shuffle.json.
    for (label, mode) in [
        ("shuffle_mode/legacy", ShuffleMode::Legacy),
        ("shuffle_mode/zero_copy", ShuffleMode::ZeroCopy),
        ("shuffle_mode/overlapped", ShuffleMode::Overlapped),
    ] {
        bench(label, || {
            let out = run_world(RANKS, move |comm| {
                let t = text(comm.rank());
                let pool = MemPool::unlimited("ablate", 64 << 10);
                let mut ctx = MimirContext::new(
                    comm,
                    pool,
                    IoModel::free(),
                    MimirConfig {
                        comm_buf_size: 64 << 10,
                        shuffle_mode: mode,
                        ..MimirConfig::default()
                    },
                )
                .unwrap();
                let (counts, _) = wordcount_mimir(&mut ctx, &t, &WcOptions::default()).unwrap();
                counts.len() as u64
            });
            out.iter().sum::<u64>()
        });
    }
}

fn ablate_cps_flush_threshold() {
    use mimir_core::typed;
    // Unique-heavy stream: compression cannot help, only cost — the
    // regime where the streaming flush budget matters.
    for flush_kib in [0usize, 16, 256] {
        let label = if flush_kib == 0 {
            "cps_flush/delayed".to_string()
        } else {
            format!("cps_flush/flush-{flush_kib}K")
        };
        bench(&label, || {
            let out = run_world(2, move |comm| {
                let pool = MemPool::unlimited("ablate", 64 << 10);
                let mut ctx =
                    MimirContext::new(comm, pool.clone(), IoModel::free(), MimirConfig::default())
                        .unwrap();
                let mut job = ctx
                    .job()
                    .kv_meta(mimir_core::KvMeta::cstr_key_u64_val())
                    .out_meta(mimir_core::KvMeta::cstr_key_u64_val());
                if flush_kib > 0 {
                    job = job.compress_flush_bytes(flush_kib << 10);
                }
                let sum = |_k: &[u8], a: &[u8], bb: &[u8], o: &mut Vec<u8>| {
                    o.extend_from_slice(&typed::enc_u64(typed::dec_u64(a) + typed::dec_u64(bb)));
                };
                let res = job
                    .map_partial_reduce_compress(
                        &mut |em| {
                            for i in 0..5_000u64 {
                                em.emit(format!("uniq-{i}").as_bytes(), &typed::enc_u64(1))?;
                            }
                            Ok(())
                        },
                        Box::new(sum),
                        Box::new(sum),
                    )
                    .unwrap();
                (res.output.len(), pool.peak())
            });
            out[0].1
        });
    }
}

fn main() {
    ablate_comm_buffer();
    ablate_page_size();
    ablate_copy_path();
    ablate_grouping();
    ablate_shuffle_mode();
    ablate_cps_flush_threshold();
}
