//! Figure output: aligned terminal tables (one row per x-value, one
//! column pair per series — the closest text analogue of the paper's
//! plots) and machine-readable JSON records for EXPERIMENTS.md.

use std::io::Write;

use mimir_obs::Json;

use crate::runner::{RunOutcome, Status};

/// One series of a figure (e.g. "Mimir", "MR-MPI (64M)").
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// One outcome per x-value, aligned with the figure's `xs`.
    pub points: Vec<DataPoint>,
}

/// One measured cell.
#[derive(Debug, Clone)]
pub struct DataPoint {
    /// X-axis value (dataset size, node count…).
    pub x: String,
    /// The outcome.
    pub outcome: RunOutcome,
}

/// A whole figure: goes to the terminal and to JSON.
#[derive(Debug, Clone)]
pub struct Figure {
    /// E.g. "fig08-wc-uniform".
    pub id: String,
    /// Human title.
    pub title: String,
    /// X-axis label.
    pub xlabel: String,
    /// All series.
    pub series: Vec<Series>,
}

impl Figure {
    /// Serializes the whole figure to JSON.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("id", Json::Str(self.id.clone())),
            ("title", Json::Str(self.title.clone())),
            ("xlabel", Json::Str(self.xlabel.clone())),
            (
                "series",
                Json::Arr(
                    self.series
                        .iter()
                        .map(|s| {
                            Json::obj(vec![
                                ("label", Json::Str(s.label.clone())),
                                (
                                    "points",
                                    Json::Arr(
                                        s.points
                                            .iter()
                                            .map(|p| {
                                                Json::obj(vec![
                                                    ("x", Json::Str(p.x.clone())),
                                                    ("outcome", p.outcome.to_json()),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses [`Self::to_json`]'s output.
    ///
    /// # Errors
    /// Missing or mistyped fields (as a message).
    pub fn from_json(v: &Json) -> Result<Figure, String> {
        let text = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or(format!("bad or missing `{key}`"))
        };
        let mut series = Vec::new();
        for s in v
            .get("series")
            .and_then(Json::as_arr)
            .ok_or("bad or missing `series`")?
        {
            let label = s
                .get("label")
                .and_then(Json::as_str)
                .ok_or("bad series label")?
                .to_string();
            let mut points = Vec::new();
            for p in s
                .get("points")
                .and_then(Json::as_arr)
                .ok_or("bad series points")?
            {
                points.push(DataPoint {
                    x: p.get("x")
                        .and_then(Json::as_str)
                        .ok_or("bad point x")?
                        .to_string(),
                    outcome: RunOutcome::from_json(p.get("outcome").ok_or("missing outcome")?)?,
                });
            }
            series.push(Series { label, points });
        }
        Ok(Figure {
            id: text("id")?,
            title: text("title")?,
            xlabel: text("xlabel")?,
            series,
        })
    }
}

/// Prints one figure as two aligned tables: execution time and peak
/// memory (the paper's dual-axis plots).
pub fn print_figure(fig: &Figure) {
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let _ = writeln!(out, "\n=== {} — {} ===", fig.id, fig.title);

    let xs: Vec<&str> = fig
        .series
        .first()
        .map(|s| s.points.iter().map(|p| p.x.as_str()).collect())
        .unwrap_or_default();

    for (metric, header) in [
        (MetricKind::Time, "execution time (s)"),
        (MetricKind::Peak, "peak node memory (MiB)"),
    ] {
        let _ = writeln!(out, "--- {header} ---");
        let _ = write!(out, "{:<12}", fig.xlabel);
        for s in &fig.series {
            let _ = write!(out, "{:>18}", s.label);
        }
        let _ = writeln!(out);
        for (i, x) in xs.iter().enumerate() {
            let _ = write!(out, "{x:<12}");
            for s in &fig.series {
                let cell = s
                    .points
                    .get(i)
                    .map(|p| format_cell(&p.outcome, metric))
                    .unwrap_or_else(|| "-".into());
                let _ = write!(out, "{cell:>18}");
            }
            let _ = writeln!(out);
        }
    }
}

#[derive(Clone, Copy)]
enum MetricKind {
    Time,
    Peak,
}

fn format_cell(o: &RunOutcome, metric: MetricKind) -> String {
    match o.status {
        Status::Oom => "OOM".into(),
        _ => {
            let spill_mark = if o.status == Status::Spilled { "*" } else { "" };
            match metric {
                MetricKind::Time => format!("{:.3}{spill_mark}", o.time_s),
                MetricKind::Peak => {
                    format!(
                        "{:.2}{spill_mark}",
                        o.peak_node_bytes as f64 / (1 << 20) as f64
                    )
                }
            }
        }
    }
}

/// Writes the figure's JSON record.
///
/// # Panics
/// Panics on I/O failure — harness output is the whole point of the run.
pub fn write_json(path: &str, fig: &Figure) {
    std::fs::write(path, fig.to_json().to_pretty()).expect("writing figure JSON");
    println!("wrote {path}");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(t: f64, status: Status) -> RunOutcome {
        RunOutcome {
            status,
            time_s: t,
            compute_s: t,
            modeled_io_s: 0.0,
            peak_node_bytes: 12 << 20,
            kv_bytes: 1,
            unique_keys: 3,
            exchange_rounds: 2,
        }
    }

    fn sample() -> Figure {
        Figure {
            id: "test".into(),
            title: "demo".into(),
            xlabel: "size".into(),
            series: vec![Series {
                label: "Mimir".into(),
                points: vec![
                    DataPoint {
                        x: "1M".into(),
                        outcome: outcome(0.5, Status::InMemory),
                    },
                    DataPoint {
                        x: "2M".into(),
                        outcome: outcome(f64::NAN, Status::Oom),
                    },
                ],
            }],
        }
    }

    #[test]
    fn figure_serializes_and_prints() {
        let fig = sample();
        print_figure(&fig);
        let json = fig.to_json().to_string();
        assert!(json.contains("\"Oom\""));
        assert!(json.contains("Mimir"));
    }

    #[test]
    fn figure_roundtrips_including_nan_cells() {
        let fig = sample();
        let back = Figure::from_json(&Json::parse(&fig.to_json().to_pretty()).unwrap()).unwrap();
        assert_eq!(back.id, fig.id);
        assert_eq!(back.series.len(), 1);
        let pts = &back.series[0].points;
        assert_eq!(pts[0].outcome.status, Status::InMemory);
        assert!((pts[0].outcome.time_s - 0.5).abs() < 1e-12);
        assert_eq!(pts[1].outcome.status, Status::Oom);
        assert!(pts[1].outcome.time_s.is_nan(), "null reads back as NaN");
        assert_eq!(pts[0].outcome.unique_keys, 3);
    }
}
