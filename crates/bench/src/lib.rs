//! # mimir-bench — figure-reproduction harnesses
//!
//! One binary per table/figure of the paper's evaluation (Section IV),
//! plus plain-harness micro and ablation benches. Each binary prints the
//! series the figure plots and writes a JSON record next to it; see
//! EXPERIMENTS.md for paper-vs-measured notes.
//!
//! All sizes follow the scaling convention in DESIGN.md: the paper's GB
//! become MB (÷1024), node memory and page sizes scale alike, so the
//! crossover points land at the same ratios.

pub mod platforms;
pub mod report;
pub mod runner;
pub mod sweeps;
pub mod trace;

pub use platforms::Platform;
pub use report::{print_figure, write_json, DataPoint, Figure, Series};
pub use runner::{RunOutcome, Status};
pub use trace::TraceSession;

/// Parses the common harness CLI: `--quick` (shrink sweeps), `--json
/// <path>` (write results), `--nodes <n>` (override max node count).
#[derive(Debug, Clone, Default)]
pub struct HarnessArgs {
    /// Shrink sweeps for smoke-testing.
    pub quick: bool,
    /// Where to write the JSON record.
    pub json: Option<String>,
    /// Cap on simulated node counts for scaling figures.
    pub max_nodes: Option<usize>,
}

impl HarnessArgs {
    /// Parses `std::env::args`.
    ///
    /// # Panics
    /// Panics on unknown arguments (these binaries are harnesses, not
    /// user tools).
    pub fn parse() -> Self {
        let mut out = Self::default();
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => out.quick = true,
                "--json" => out.json = Some(it.next().expect("path after --json")),
                "--nodes" => {
                    out.max_nodes = Some(
                        it.next()
                            .expect("count after --nodes")
                            .parse()
                            .expect("number"),
                    );
                }
                other => panic!("unknown argument {other} (expected --quick/--json/--nodes)"),
            }
        }
        out
    }
}

/// Formats a byte count the way the paper's axes do (256K, 1M, 16M…).
pub fn fmt_size(bytes: usize) -> String {
    if bytes >= 1 << 20 && bytes.is_multiple_of(1 << 20) {
        format!("{}M", bytes >> 20)
    } else if bytes >= 1 << 10 {
        format!("{}K", bytes >> 10)
    } else {
        format!("{bytes}")
    }
}

#[cfg(test)]
mod tests {
    use super::fmt_size;

    #[test]
    fn sizes_format_like_paper_axes() {
        assert_eq!(fmt_size(512), "512");
        assert_eq!(fmt_size(64 << 10), "64K");
        assert_eq!(fmt_size(256 << 10), "256K");
        assert_eq!(fmt_size(1 << 20), "1M");
        assert_eq!(fmt_size(16 << 20), "16M");
        // Non-multiple of MiB falls back to KiB.
        assert_eq!(fmt_size((1 << 20) + (512 << 10)), "1536K");
    }
}
