//! Trace-session wiring: turns `MIMIR_TRACE=1` into per-rank recorders
//! and exported trace files for every benchmark run.
//!
//! A [`TraceSession`] is created once per run (outside `run_world`) so
//! every rank's recorder shares one epoch and the per-rank timelines
//! align in the exported view. Each rank installs a recorder before the
//! app runs and calls [`TraceSession::finish`] after: the rank builds
//! its [`RankReport`] from the layer stats, the reports are gathered
//! onto rank 0 with the ordinary `gather` collective, and rank 0 writes
//! a chrome-trace JSON (open in Perfetto or `about://tracing`) plus a
//! JSON-lines dump next to it.

use std::path::PathBuf;
use std::time::Instant;

use mimir_apps::RunMetrics;
use mimir_mem::MemPool;
use mimir_mpi::Comm;
use mimir_obs::{
    chrome_trace, jsonl_string, AdaptCounters, CacheCounters, CacheNameRecord, GroupCounters,
    JobCounters, MemCounters, PhasePeaks, PhaseTimes, RankReport, Recorder, ShuffleCounters,
    WaitCounters,
};

/// Where trace files land when `MIMIR_TRACE_DIR` is unset.
const DEFAULT_DIR: &str = "traces";

/// One traced benchmark run: shared epoch, output label, output dir.
#[derive(Debug, Clone)]
pub struct TraceSession {
    label: String,
    dir: PathBuf,
    epoch: Instant,
}

impl TraceSession {
    /// Builds a session when `MIMIR_TRACE` is set; `None` (no recorders,
    /// no files, no hot-path cost) otherwise. `label` names the output
    /// files: `<dir>/<label>.trace.json` and `<dir>/<label>.jsonl`.
    pub fn from_env(label: impl Into<String>) -> Option<TraceSession> {
        if !mimir_obs::env_enabled() {
            return None;
        }
        let dir = std::env::var("MIMIR_TRACE_DIR").unwrap_or_else(|_| DEFAULT_DIR.to_string());
        Some(TraceSession {
            label: label.into(),
            dir: PathBuf::from(dir),
            epoch: Instant::now(),
        })
    }

    /// Installs this rank's recorder (ring capacity from
    /// `MIMIR_TRACE_CAP`), timestamped against the shared epoch.
    pub fn install(&self, rank: usize) {
        mimir_obs::install(Recorder::with_epoch(
            rank,
            mimir_obs::env_capacity(),
            self.epoch,
        ));
    }

    /// Ends the rank's recording: builds the rank report, gathers every
    /// report onto rank 0, and (on rank 0) writes the trace files.
    ///
    /// # Errors
    /// File I/O or a malformed gathered payload (both reported as
    /// strings, matching the runner closures' error type).
    pub fn finish(&self, comm: &mut Comm, pool: &MemPool, m: &RunMetrics) -> Result<(), String> {
        let report = build_report(comm, pool, m);
        let payload = report.to_json_string().into_bytes();
        if let Some(gathered) = comm.gather(0, payload) {
            let mut reports = Vec::with_capacity(gathered.len());
            for bytes in &gathered {
                let text = std::str::from_utf8(bytes).map_err(|e| e.to_string())?;
                reports.push(RankReport::from_json_string(text).map_err(|e| e.to_string())?);
            }
            self.write(&reports)?;
        }
        Ok(())
    }

    fn write(&self, reports: &[RankReport]) -> Result<(), String> {
        std::fs::create_dir_all(&self.dir).map_err(|e| e.to_string())?;
        let trace_path = self.dir.join(format!("{}.trace.json", self.label));
        let jsonl_path = self.dir.join(format!("{}.jsonl", self.label));
        std::fs::write(&trace_path, chrome_trace(reports).to_string())
            .map_err(|e| e.to_string())?;
        std::fs::write(&jsonl_path, jsonl_string(reports)).map_err(|e| e.to_string())?;
        eprintln!(
            "trace: wrote {} and {}",
            trace_path.display(),
            jsonl_path.display()
        );
        Ok(())
    }
}

/// Assembles one rank's [`RankReport`] from the stats each layer kept:
/// communication counters from the world, pool counters from the node
/// pool, shuffle/job counters from the run's merged [`RunMetrics`], and
/// the rank's trace events from the recorder (taken, so a later run can
/// install a fresh one).
pub fn build_report(comm: &Comm, pool: &MemPool, m: &RunMetrics) -> RankReport {
    let mut report = RankReport::new(comm.rank());
    let cs = comm.stats();
    report.comm = cs.counters();
    let ps = pool.stats();
    report.mem = MemCounters {
        pages_allocated: ps.page_allocs,
        pages_recycled: ps.page_frees,
        bytes_in_use: ps.used as u64,
        peak_bytes: ps.peak as u64,
        // `usize::MAX` means "unlimited": store 0 so the doctor's
        // headroom rule skips pools the experiment didn't meter.
        budget_bytes: if ps.budget == usize::MAX {
            0
        } else {
            ps.budget as u64
        },
        oom_events: ps.oom_events,
    };
    let j = &m.job;
    report.shuffle = ShuffleCounters {
        kvs_emitted: j.shuffle.kvs_emitted,
        kv_bytes_emitted: j.shuffle.kv_bytes_emitted,
        kvs_received: j.shuffle.kvs_received,
        rounds: j.shuffle.rounds,
        spilled_bytes: 0,
        bytes_received: j.shuffle.bytes_received,
        max_round_recv_bytes: j.shuffle.max_round_recv_bytes,
        max_dest_bytes: j.shuffle.max_dest_bytes,
        imbalance_permille: j.shuffle.imbalance_permille,
        gini_permille: j.shuffle.gini_permille,
    };
    report.waits = WaitCounters {
        sync_wait_ns: j.shuffle.sync_wait_ns,
        data_wait_ns: j.shuffle.data_wait_ns,
        barrier_wait_ns: j.barrier_wait_ns,
        ..cs.wait_counters()
    };
    let a = &j.shuffle.adapt;
    report.adapt = AdaptCounters {
        mode_switches: a.mode_switches,
        grow_steps: a.grow_steps,
        shrink_steps: a.shrink_steps,
        final_fill_permille: a.final_fill_permille,
        final_overlap: a.final_overlap,
        converged_round: a.converged_round,
        hot_trips: a.hot_trips,
        hot_staged_kvs: a.hot_staged_kvs,
        hot_staged_bytes: a.hot_staged_bytes,
        hot_unique_kvs: a.hot_unique_kvs,
        hot_forward_bytes: a.hot_forward_bytes,
        salted_rounds: a.salted_rounds,
        merge_rounds: a.merge_rounds,
        jumbo_floor_hits: a.jumbo_floor_hits,
    };
    report.group = GroupCounters {
        inserts: j.group.inserts,
        probes: j.group.probes,
        max_probe: j.group.max_probe,
        rehashes: j.group.rehashes,
        interned_bytes: j.group.interned_bytes,
        groups: j.group.groups,
        capacity: j.group.capacity,
        probe_hist: j.group.probe_hist,
    };
    report.times = PhaseTimes {
        map_s: j.map_time.as_secs_f64(),
        aggregate_s: 0.0,
        convert_s: j.convert_time.as_secs_f64(),
        reduce_s: j.reduce_time.as_secs_f64(),
    };
    report.peaks = PhasePeaks {
        map_bytes: j.map_peak_bytes as u64,
        convert_bytes: j.convert_peak_bytes as u64,
        reduce_bytes: j.reduce_peak_bytes as u64,
    };
    report.job = JobCounters {
        unique_keys: j.unique_keys,
        kvs_out: j.kvs_out,
        node_peak_bytes: j.node_peak_bytes.max(m.node_peak) as u64,
    };
    if let Some(rec) = mimir_obs::take() {
        report.events = rec.events().to_vec();
        report.events_dropped = rec.dropped();
    }
    // When the live telemetry plane is armed on this rank thread, fold
    // its publisher bookkeeping into the final report so the end-of-run
    // export records what live observation itself cost.
    if let Some(live) = mimir_obs::live::shared() {
        report.live = live.live_counters();
    }
    report
}

/// Folds a rank's cross-job cache state into its report: the counters
/// plus one record per cached name. Harnesses that chain jobs call this
/// after [`build_report`] with `ctx.cache_stats()` / `ctx.cache_snapshots()`.
pub fn attach_cache(
    report: &mut RankReport,
    stats: mimir_core::CacheStats,
    snaps: &[mimir_core::CacheEntrySnapshot],
) {
    report.cache = CacheCounters {
        hits: stats.hits,
        misses: stats.misses,
        elisions: stats.elisions,
        evictions: stats.evictions,
        reloads: stats.reloads,
        cached_bytes: stats.cached_bytes,
    };
    report.cache_names = snaps
        .iter()
        .map(|(name, bytes, elisions)| CacheNameRecord {
            name: name.clone(),
            bytes: *bytes,
            elisions: *elisions,
        })
        .collect();
}
