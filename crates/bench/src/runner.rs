//! Benchmark runners: one function per (benchmark, framework) pair,
//! returning the figure metrics for one configuration.
//!
//! Every runner honors `MIMIR_TRACE=1`: each rank records trace events
//! into a preallocated ring and the run exports a chrome-trace JSON plus
//! a JSON-lines report (see [`crate::trace`]).

use mimir_apps::bfs::{bfs_mimir, bfs_mrmpi, pick_root, BfsOptions};
use mimir_apps::octree::{octree_mimir, octree_mrmpi, OcOptions};
use mimir_apps::wordcount::{wordcount_mimir, wordcount_mrmpi, WcOptions};
use mimir_apps::RunMetrics;
use mimir_core::{JobStats, MimirConfig, MimirContext};
use mimir_datagen::{Graph500, PointGen, UniformWords, WikipediaWords};
use mimir_io::{IoModel, SpillStore};
use mimir_mpi::{run_world, run_world_result};
use mimir_obs::Json;
use mrmpi::{MrMpiConfig, OocMode};

use crate::trace::TraceSession;
use crate::Platform;

/// How a configuration ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Ran entirely in memory (the regime the paper's time plots show).
    InMemory,
    /// MR-MPI left memory and paid the parallel file system.
    Spilled,
    /// The node budget was exceeded (Mimir) or a page set was
    /// unaffordable (MR-MPI) — a missing point in the paper's figures.
    Oom,
}

impl Status {
    /// The JSON name (`"InMemory"` / `"Spilled"` / `"Oom"`).
    pub fn name(self) -> &'static str {
        match self {
            Status::InMemory => "InMemory",
            Status::Spilled => "Spilled",
            Status::Oom => "Oom",
        }
    }

    /// Parses [`Self::name`]'s output.
    pub fn from_name(s: &str) -> Option<Status> {
        match s {
            "InMemory" => Some(Status::InMemory),
            "Spilled" => Some(Status::Spilled),
            "Oom" => Some(Status::Oom),
            _ => None,
        }
    }
}

/// Metrics for one (framework, dataset size, options) cell of a figure.
#[derive(Debug, Clone, Copy)]
pub struct RunOutcome {
    /// Terminal status.
    pub status: Status,
    /// Reported execution time: measured compute + modeled I/O, seconds.
    /// NaN for OOM cells (serialized as `null`).
    pub time_s: f64,
    /// Measured compute seconds (max across ranks).
    pub compute_s: f64,
    /// Modeled parallel-file-system seconds (input + spills).
    pub modeled_io_s: f64,
    /// Worst per-node peak memory, bytes.
    pub peak_node_bytes: usize,
    /// Intermediate KV bytes emitted across all ranks.
    pub kv_bytes: u64,
    /// Unique keys across the cluster (summed from the merged
    /// [`JobStats`]).
    pub unique_keys: u64,
    /// Exchange rounds (max across ranks — rounds are collective).
    pub exchange_rounds: u64,
}

impl RunOutcome {
    fn oom() -> Self {
        Self {
            status: Status::Oom,
            time_s: f64::NAN,
            compute_s: f64::NAN,
            modeled_io_s: f64::NAN,
            peak_node_bytes: 0,
            kv_bytes: 0,
            unique_keys: 0,
            exchange_rounds: 0,
        }
    }

    fn from_metrics(
        metrics: &[RunMetrics],
        io: &IoModel,
        peak_node_bytes: usize,
        input_bytes: usize,
    ) -> Self {
        // Input arrives through the PFS too; charge it so in-memory runs
        // have a non-zero, size-proportional baseline like the paper's.
        io.charge_read(input_bytes);
        let compute_s = metrics
            .iter()
            .map(|m| m.wall.as_secs_f64())
            .fold(0.0, f64::max);
        let modeled_io_s = io.modeled_time().as_secs_f64();
        let spilled = metrics.iter().any(|m| m.spilled);
        // Cluster totals come from folding every rank's unified job
        // stats: traffic sums, rounds/times/peaks take the max.
        let mut cluster = JobStats::default();
        for m in metrics {
            cluster.merge(&m.job);
        }
        Self {
            status: if spilled {
                Status::Spilled
            } else {
                Status::InMemory
            },
            time_s: compute_s + modeled_io_s,
            compute_s,
            modeled_io_s,
            peak_node_bytes,
            kv_bytes: metrics.iter().map(|m| m.kv_bytes).sum(),
            unique_keys: cluster.unique_keys,
            exchange_rounds: cluster.shuffle.rounds,
        }
    }

    /// Serializes to a JSON object. Non-finite floats become `null`
    /// (JSON has no NaN), so OOM cells round-trip as missing values.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("status", Json::Str(self.status.name().into())),
            ("time_s", Json::Num(self.time_s)),
            ("compute_s", Json::Num(self.compute_s)),
            ("modeled_io_s", Json::Num(self.modeled_io_s)),
            ("peak_node_bytes", Json::Num(self.peak_node_bytes as f64)),
            ("kv_bytes", Json::Num(self.kv_bytes as f64)),
            ("unique_keys", Json::Num(self.unique_keys as f64)),
            ("exchange_rounds", Json::Num(self.exchange_rounds as f64)),
        ])
    }

    /// Parses [`Self::to_json`]'s output; `null` times read back as NaN.
    ///
    /// # Errors
    /// Missing or mistyped fields (as a message).
    pub fn from_json(v: &Json) -> Result<RunOutcome, String> {
        let status = v
            .get("status")
            .and_then(Json::as_str)
            .and_then(Status::from_name)
            .ok_or("bad or missing `status`")?;
        let num = |key: &str| -> Result<f64, String> {
            match v.get(key) {
                Some(Json::Null) => Ok(f64::NAN),
                Some(n) => n.as_f64().ok_or(format!("field `{key}` is not a number")),
                None => Err(format!("missing field `{key}`")),
            }
        };
        Ok(RunOutcome {
            status,
            time_s: num("time_s")?,
            compute_s: num("compute_s")?,
            modeled_io_s: num("modeled_io_s")?,
            peak_node_bytes: num("peak_node_bytes")? as usize,
            kv_bytes: num("kv_bytes")? as u64,
            // Added after the first records were written; default to 0
            // when reading older files.
            unique_keys: num("unique_keys").unwrap_or(0.0) as u64,
            exchange_rounds: num("exchange_rounds").unwrap_or(0.0) as u64,
        })
    }
}

/// The WC input variants of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WcDataset {
    /// Synthetic uniform words.
    Uniform,
    /// The Wikipedia stand-in: Zipf frequencies, heterogeneous lengths.
    Wikipedia,
}

impl WcDataset {
    fn generate(self, rank: usize, n_ranks: usize, total: usize) -> Vec<u8> {
        // Vocabulary sizes are scaled with everything else (÷1024-ish
        // from realistic corpus vocabularies), so the KV-compression
        // tables keep the same proportion to node memory as on the real
        // machines.
        match self {
            WcDataset::Uniform => UniformWords {
                vocab: 8 * 1024,
                word_len: 8,
                seed: 0xC0FFEE,
            }
            .generate(rank, n_ranks, total),
            WcDataset::Wikipedia => WikipediaWords {
                vocab: 20_000,
                zipf_s: 1.0,
                seed: 0xC0FFEE,
            }
            .generate(rank, n_ranks, total),
        }
    }

    fn tag(self) -> &'static str {
        match self {
            WcDataset::Uniform => "uniform",
            WcDataset::Wikipedia => "wikipedia",
        }
    }
}

/// WordCount on Mimir.
pub fn run_wc_mimir(
    p: &Platform,
    n_nodes: usize,
    dataset: WcDataset,
    total_bytes: usize,
    opts: WcOptions,
) -> RunOutcome {
    let nodes = p.node_map(n_nodes);
    let nodes2 = nodes.clone();
    let io = IoModel::new(p.io).expect("io model");
    let io2 = io.clone();
    let ranks = p.ranks(n_nodes);
    let page = p.page_size;
    let trace = TraceSession::from_env(format!(
        "wc-mimir-{}-{n_nodes}n-{total_bytes}",
        dataset.tag()
    ));
    let res = run_world_result(ranks, move |comm| -> Result<RunMetrics, String> {
        let text = dataset.generate(comm.rank(), ranks, total_bytes);
        let pool = nodes2.pool_for_rank(comm.rank());
        if let Some(t) = &trace {
            t.install(comm.rank());
        }
        let m = {
            let mut ctx = MimirContext::new(
                comm,
                pool.clone(),
                io2.clone(),
                MimirConfig {
                    comm_buf_size: page,
                    ..MimirConfig::default()
                },
            )
            .map_err(|e| e.to_string())?;
            wordcount_mimir(&mut ctx, &text, &opts)
                .map(|(_, m)| m)
                .map_err(|e| e.to_string())?
        };
        if let Some(t) = &trace {
            t.finish(comm, &pool, &m)?;
        }
        Ok(m)
    });
    match res {
        Ok(ms) => RunOutcome::from_metrics(&ms, &io, nodes.max_node_peak(), total_bytes),
        Err(_) => RunOutcome::oom(),
    }
}

/// WordCount on MR-MPI.
pub fn run_wc_mrmpi(
    p: &Platform,
    n_nodes: usize,
    dataset: WcDataset,
    total_bytes: usize,
    page_size: usize,
    compress: bool,
) -> RunOutcome {
    let nodes = p.node_map(n_nodes);
    let nodes2 = nodes.clone();
    let io = IoModel::new(p.io).expect("io model");
    let io2 = io.clone();
    let ranks = p.ranks(n_nodes);
    let trace = TraceSession::from_env(format!(
        "wc-mrmpi-{}-{n_nodes}n-{total_bytes}",
        dataset.tag()
    ));
    let res = run_world_result(ranks, move |comm| -> Result<RunMetrics, String> {
        let text = dataset.generate(comm.rank(), ranks, total_bytes);
        let pool = nodes2.pool_for_rank(comm.rank());
        if let Some(t) = &trace {
            t.install(comm.rank());
        }
        let store = SpillStore::new_temp("bench-wc", io2.clone()).map_err(|e| e.to_string())?;
        let cfg = MrMpiConfig {
            page_size,
            ooc: OocMode::WhenNeeded,
        };
        let m = wordcount_mrmpi(comm, pool.clone(), store, cfg, &text, compress)
            .map(|(_, m)| m)
            .map_err(|e| e.to_string())?;
        if let Some(t) = &trace {
            t.finish(comm, &pool, &m)?;
        }
        Ok(m)
    });
    match res {
        Ok(ms) => RunOutcome::from_metrics(&ms, &io, nodes.max_node_peak(), total_bytes),
        Err(_) => RunOutcome::oom(),
    }
}

/// Octree clustering on Mimir over `total_points` normal-distributed
/// points.
pub fn run_oc_mimir(
    p: &Platform,
    n_nodes: usize,
    total_points: usize,
    opts: OcOptions,
) -> RunOutcome {
    let nodes = p.node_map(n_nodes);
    let nodes2 = nodes.clone();
    let io = IoModel::new(p.io).expect("io model");
    let io2 = io.clone();
    let ranks = p.ranks(n_nodes);
    let page = p.page_size;
    let trace = TraceSession::from_env(format!("oc-mimir-{n_nodes}n-{total_points}"));
    let res = run_world_result(ranks, move |comm| -> Result<RunMetrics, String> {
        let pts = PointGen::new(0xC0FFEE).generate(comm.rank(), ranks, total_points);
        let pool = nodes2.pool_for_rank(comm.rank());
        if let Some(t) = &trace {
            t.install(comm.rank());
        }
        let m = {
            let mut ctx = MimirContext::new(
                comm,
                pool.clone(),
                io2.clone(),
                MimirConfig {
                    comm_buf_size: page,
                    ..MimirConfig::default()
                },
            )
            .map_err(|e| e.to_string())?;
            octree_mimir(&mut ctx, &pts, &opts)
                .map(|(_, m)| m)
                .map_err(|e| e.to_string())?
        };
        if let Some(t) = &trace {
            t.finish(comm, &pool, &m)?;
        }
        Ok(m)
    });
    match res {
        Ok(ms) => RunOutcome::from_metrics(&ms, &io, nodes.max_node_peak(), total_points * 12),
        Err(_) => RunOutcome::oom(),
    }
}

/// Octree clustering on MR-MPI.
pub fn run_oc_mrmpi(
    p: &Platform,
    n_nodes: usize,
    total_points: usize,
    page_size: usize,
    compress: bool,
) -> RunOutcome {
    let nodes = p.node_map(n_nodes);
    let nodes2 = nodes.clone();
    let io = IoModel::new(p.io).expect("io model");
    let io2 = io.clone();
    let ranks = p.ranks(n_nodes);
    let opts = OcOptions {
        compress,
        ..OcOptions::default()
    };
    let trace = TraceSession::from_env(format!("oc-mrmpi-{n_nodes}n-{total_points}"));
    let res = run_world_result(ranks, move |comm| -> Result<RunMetrics, String> {
        let pts = PointGen::new(0xC0FFEE).generate(comm.rank(), ranks, total_points);
        let pool = nodes2.pool_for_rank(comm.rank());
        if let Some(t) = &trace {
            t.install(comm.rank());
        }
        let store = SpillStore::new_temp("bench-oc", io2.clone()).map_err(|e| e.to_string())?;
        let cfg = MrMpiConfig {
            page_size,
            ooc: OocMode::WhenNeeded,
        };
        let m = octree_mrmpi(comm, pool.clone(), &store, cfg, &pts, &opts)
            .map(|(_, m)| m)
            .map_err(|e| e.to_string())?;
        if let Some(t) = &trace {
            t.finish(comm, &pool, &m)?;
        }
        Ok(m)
    });
    match res {
        Ok(ms) => RunOutcome::from_metrics(&ms, &io, nodes.max_node_peak(), total_points * 12),
        Err(_) => RunOutcome::oom(),
    }
}

/// BFS on Mimir over a Graph500 graph with `2^scale` vertices.
pub fn run_bfs_mimir(p: &Platform, n_nodes: usize, scale: u32, opts: BfsOptions) -> RunOutcome {
    let nodes = p.node_map(n_nodes);
    let nodes2 = nodes.clone();
    let io = IoModel::new(p.io).expect("io model");
    let io2 = io.clone();
    let ranks = p.ranks(n_nodes);
    let page = p.page_size;
    let graph = Graph500::new(scale, 0xC0FFEE);
    let input_bytes = graph.n_edges() as usize * 16;
    let trace = TraceSession::from_env(format!("bfs-mimir-{n_nodes}n-s{scale}"));
    let res = run_world_result(ranks, move |comm| -> Result<RunMetrics, String> {
        let edges = graph.edges(comm.rank(), ranks);
        let root = pick_root(comm, &edges);
        let pool = nodes2.pool_for_rank(comm.rank());
        if let Some(t) = &trace {
            t.install(comm.rank());
        }
        let m = {
            let mut ctx = MimirContext::new(
                comm,
                pool.clone(),
                io2.clone(),
                MimirConfig {
                    comm_buf_size: page,
                    ..MimirConfig::default()
                },
            )
            .map_err(|e| e.to_string())?;
            bfs_mimir(&mut ctx, &edges, root, &opts)
                .map(|(_, m)| m)
                .map_err(|e| e.to_string())?
        };
        if let Some(t) = &trace {
            t.finish(comm, &pool, &m)?;
        }
        Ok(m)
    });
    match res {
        Ok(ms) => RunOutcome::from_metrics(&ms, &io, nodes.max_node_peak(), input_bytes),
        Err(_) => RunOutcome::oom(),
    }
}

/// BFS on MR-MPI.
pub fn run_bfs_mrmpi(
    p: &Platform,
    n_nodes: usize,
    scale: u32,
    page_size: usize,
    compress: bool,
) -> RunOutcome {
    let nodes = p.node_map(n_nodes);
    let nodes2 = nodes.clone();
    let io = IoModel::new(p.io).expect("io model");
    let io2 = io.clone();
    let ranks = p.ranks(n_nodes);
    let graph = Graph500::new(scale, 0xC0FFEE);
    let input_bytes = graph.n_edges() as usize * 16;
    let opts = BfsOptions {
        hint: false,
        compress,
    };
    let trace = TraceSession::from_env(format!("bfs-mrmpi-{n_nodes}n-s{scale}"));
    let res = run_world_result(ranks, move |comm| -> Result<RunMetrics, String> {
        let edges = graph.edges(comm.rank(), ranks);
        let root = pick_root(comm, &edges);
        let pool = nodes2.pool_for_rank(comm.rank());
        if let Some(t) = &trace {
            t.install(comm.rank());
        }
        let store = SpillStore::new_temp("bench-bfs", io2.clone()).map_err(|e| e.to_string())?;
        let cfg = MrMpiConfig {
            page_size,
            ooc: OocMode::WhenNeeded,
        };
        let m = bfs_mrmpi(comm, pool.clone(), &store, cfg, &edges, root, &opts)
            .map(|(_, m)| m)
            .map_err(|e| e.to_string())?;
        if let Some(t) = &trace {
            t.finish(comm, &pool, &m)?;
        }
        Ok(m)
    });
    match res {
        Ok(ms) => RunOutcome::from_metrics(&ms, &io, nodes.max_node_peak(), input_bytes),
        Err(_) => RunOutcome::oom(),
    }
}

/// Helper for Figure 1: MR-MPI WordCount where we *want* the spill regime
/// (the out-of-core cliff), single node, uniform data. Uses the platform's
/// *large* page configuration — the paper's Figure 1 curve stays in memory
/// until ~4 GB, which is the 512 MB-page regime.
pub fn run_fig1_point(p: &Platform, total_bytes: usize) -> RunOutcome {
    run_wc_mrmpi(
        p,
        1,
        WcDataset::Uniform,
        total_bytes,
        p.mrmpi_page_large,
        false,
    )
}

/// Sanity helper used by the smoke bench: a quick world round-trip.
pub fn smoke_world(ranks: usize) -> u64 {
    run_world(ranks, |c| c.allreduce_u64(mimir_mpi::ReduceOp::Sum, 1))[0]
}
