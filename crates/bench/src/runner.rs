//! Benchmark runners: one function per (benchmark, framework) pair,
//! returning the figure metrics for one configuration.

use mimir_apps::bfs::{bfs_mimir, bfs_mrmpi, pick_root, BfsOptions};
use mimir_apps::octree::{octree_mimir, octree_mrmpi, OcOptions};
use mimir_apps::wordcount::{wordcount_mimir, wordcount_mrmpi, WcOptions};
use mimir_apps::RunMetrics;
use mimir_core::{MimirConfig, MimirContext};
use mimir_datagen::{Graph500, PointGen, UniformWords, WikipediaWords};
use mimir_io::{IoModel, SpillStore};
use mimir_mpi::{run_world, run_world_result};
use mrmpi::{MrMpiConfig, OocMode};
use serde::{Deserialize, Serialize};

use crate::Platform;

/// How a configuration ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Status {
    /// Ran entirely in memory (the regime the paper's time plots show).
    InMemory,
    /// MR-MPI left memory and paid the parallel file system.
    Spilled,
    /// The node budget was exceeded (Mimir) or a page set was
    /// unaffordable (MR-MPI) — a missing point in the paper's figures.
    Oom,
}

/// serde adapter: `serde_json` writes non-finite floats as `null`; map
/// `null` back to NaN on the way in so OOM cells round-trip.
mod nanable {
    use serde::{Deserialize, Deserializer, Serializer};

    pub fn serialize<S: Serializer>(v: &f64, s: S) -> Result<S::Ok, S::Error> {
        if v.is_finite() {
            s.serialize_some(v)
        } else {
            s.serialize_none()
        }
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<f64, D::Error> {
        Ok(Option::<f64>::deserialize(d)?.unwrap_or(f64::NAN))
    }
}

/// Metrics for one (framework, dataset size, options) cell of a figure.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RunOutcome {
    /// Terminal status.
    pub status: Status,
    /// Reported execution time: measured compute + modeled I/O, seconds.
    #[serde(with = "nanable")]
    pub time_s: f64,
    /// Measured compute seconds (max across ranks).
    #[serde(with = "nanable")]
    pub compute_s: f64,
    /// Modeled parallel-file-system seconds (input + spills).
    #[serde(with = "nanable")]
    pub modeled_io_s: f64,
    /// Worst per-node peak memory, bytes.
    pub peak_node_bytes: usize,
    /// Intermediate KV bytes emitted across all ranks.
    pub kv_bytes: u64,
}

impl RunOutcome {
    fn oom() -> Self {
        Self {
            status: Status::Oom,
            time_s: f64::NAN,
            compute_s: f64::NAN,
            modeled_io_s: f64::NAN,
            peak_node_bytes: 0,
            kv_bytes: 0,
        }
    }

    fn from_metrics(
        metrics: &[RunMetrics],
        io: &IoModel,
        peak_node_bytes: usize,
        input_bytes: usize,
    ) -> Self {
        // Input arrives through the PFS too; charge it so in-memory runs
        // have a non-zero, size-proportional baseline like the paper's.
        io.charge_read(input_bytes);
        let compute_s = metrics
            .iter()
            .map(|m| m.wall.as_secs_f64())
            .fold(0.0, f64::max);
        let modeled_io_s = io.modeled_time().as_secs_f64();
        let spilled = metrics.iter().any(|m| m.spilled);
        Self {
            status: if spilled { Status::Spilled } else { Status::InMemory },
            time_s: compute_s + modeled_io_s,
            compute_s,
            modeled_io_s,
            peak_node_bytes,
            kv_bytes: metrics.iter().map(|m| m.kv_bytes).sum(),
        }
    }
}

/// The WC input variants of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WcDataset {
    /// Synthetic uniform words.
    Uniform,
    /// The Wikipedia stand-in: Zipf frequencies, heterogeneous lengths.
    Wikipedia,
}

impl WcDataset {
    fn generate(self, rank: usize, n_ranks: usize, total: usize) -> Vec<u8> {
        // Vocabulary sizes are scaled with everything else (÷1024-ish
        // from realistic corpus vocabularies), so the KV-compression
        // tables keep the same proportion to node memory as on the real
        // machines.
        match self {
            WcDataset::Uniform => UniformWords {
                vocab: 8 * 1024,
                word_len: 8,
                seed: 0xC0FFEE,
            }
            .generate(rank, n_ranks, total),
            WcDataset::Wikipedia => WikipediaWords {
                vocab: 20_000,
                zipf_s: 1.0,
                seed: 0xC0FFEE,
            }
            .generate(rank, n_ranks, total),
        }
    }
}

/// WordCount on Mimir.
pub fn run_wc_mimir(
    p: &Platform,
    n_nodes: usize,
    dataset: WcDataset,
    total_bytes: usize,
    opts: WcOptions,
) -> RunOutcome {
    let nodes = p.node_map(n_nodes);
    let nodes2 = nodes.clone();
    let io = IoModel::new(p.io).expect("io model");
    let io2 = io.clone();
    let ranks = p.ranks(n_nodes);
    let page = p.page_size;
    let res = run_world_result(ranks, move |comm| {
        let text = dataset.generate(comm.rank(), ranks, total_bytes);
        let pool = nodes2.pool_for_rank(comm.rank());
        let mut ctx = MimirContext::new(
            comm,
            pool,
            io2.clone(),
            MimirConfig {
                comm_buf_size: page,
            },
        )
        .map_err(|e| e.to_string())?;
        wordcount_mimir(&mut ctx, &text, &opts)
            .map(|(_, m)| m)
            .map_err(|e| e.to_string())
    });
    match res {
        Ok(ms) => RunOutcome::from_metrics(&ms, &io, nodes.max_node_peak(), total_bytes),
        Err(_) => RunOutcome::oom(),
    }
}

/// WordCount on MR-MPI.
pub fn run_wc_mrmpi(
    p: &Platform,
    n_nodes: usize,
    dataset: WcDataset,
    total_bytes: usize,
    page_size: usize,
    compress: bool,
) -> RunOutcome {
    let nodes = p.node_map(n_nodes);
    let nodes2 = nodes.clone();
    let io = IoModel::new(p.io).expect("io model");
    let io2 = io.clone();
    let ranks = p.ranks(n_nodes);
    let res = run_world_result(ranks, move |comm| {
        let text = dataset.generate(comm.rank(), ranks, total_bytes);
        let pool = nodes2.pool_for_rank(comm.rank());
        let store = SpillStore::new_temp("bench-wc", io2.clone()).map_err(|e| e.to_string())?;
        let cfg = MrMpiConfig {
            page_size,
            ooc: OocMode::WhenNeeded,
        };
        wordcount_mrmpi(comm, pool, store, cfg, &text, compress)
            .map(|(_, m)| m)
            .map_err(|e| e.to_string())
    });
    match res {
        Ok(ms) => RunOutcome::from_metrics(&ms, &io, nodes.max_node_peak(), total_bytes),
        Err(_) => RunOutcome::oom(),
    }
}

/// Octree clustering on Mimir over `total_points` normal-distributed
/// points.
pub fn run_oc_mimir(
    p: &Platform,
    n_nodes: usize,
    total_points: usize,
    opts: OcOptions,
) -> RunOutcome {
    let nodes = p.node_map(n_nodes);
    let nodes2 = nodes.clone();
    let io = IoModel::new(p.io).expect("io model");
    let io2 = io.clone();
    let ranks = p.ranks(n_nodes);
    let page = p.page_size;
    let res = run_world_result(ranks, move |comm| {
        let pts = PointGen::new(0xC0FFEE).generate(comm.rank(), ranks, total_points);
        let pool = nodes2.pool_for_rank(comm.rank());
        let mut ctx = MimirContext::new(
            comm,
            pool,
            io2.clone(),
            MimirConfig {
                comm_buf_size: page,
            },
        )
        .map_err(|e| e.to_string())?;
        octree_mimir(&mut ctx, &pts, &opts)
            .map(|(_, m)| m)
            .map_err(|e| e.to_string())
    });
    match res {
        Ok(ms) => RunOutcome::from_metrics(&ms, &io, nodes.max_node_peak(), total_points * 12),
        Err(_) => RunOutcome::oom(),
    }
}

/// Octree clustering on MR-MPI.
pub fn run_oc_mrmpi(
    p: &Platform,
    n_nodes: usize,
    total_points: usize,
    page_size: usize,
    compress: bool,
) -> RunOutcome {
    let nodes = p.node_map(n_nodes);
    let nodes2 = nodes.clone();
    let io = IoModel::new(p.io).expect("io model");
    let io2 = io.clone();
    let ranks = p.ranks(n_nodes);
    let opts = OcOptions {
        compress,
        ..OcOptions::default()
    };
    let res = run_world_result(ranks, move |comm| {
        let pts = PointGen::new(0xC0FFEE).generate(comm.rank(), ranks, total_points);
        let pool = nodes2.pool_for_rank(comm.rank());
        let store =
            SpillStore::new_temp("bench-oc", io2.clone()).map_err(|e| e.to_string())?;
        let cfg = MrMpiConfig {
            page_size,
            ooc: OocMode::WhenNeeded,
        };
        octree_mrmpi(comm, pool, &store, cfg, &pts, &opts)
            .map(|(_, m)| m)
            .map_err(|e| e.to_string())
    });
    match res {
        Ok(ms) => RunOutcome::from_metrics(&ms, &io, nodes.max_node_peak(), total_points * 12),
        Err(_) => RunOutcome::oom(),
    }
}

/// BFS on Mimir over a Graph500 graph with `2^scale` vertices.
pub fn run_bfs_mimir(p: &Platform, n_nodes: usize, scale: u32, opts: BfsOptions) -> RunOutcome {
    let nodes = p.node_map(n_nodes);
    let nodes2 = nodes.clone();
    let io = IoModel::new(p.io).expect("io model");
    let io2 = io.clone();
    let ranks = p.ranks(n_nodes);
    let page = p.page_size;
    let graph = Graph500::new(scale, 0xC0FFEE);
    let input_bytes = graph.n_edges() as usize * 16;
    let res = run_world_result(ranks, move |comm| {
        let edges = graph.edges(comm.rank(), ranks);
        let root = pick_root(comm, &edges);
        let pool = nodes2.pool_for_rank(comm.rank());
        let mut ctx = MimirContext::new(
            comm,
            pool,
            io2.clone(),
            MimirConfig {
                comm_buf_size: page,
            },
        )
        .map_err(|e| e.to_string())?;
        bfs_mimir(&mut ctx, &edges, root, &opts)
            .map(|(_, m)| m)
            .map_err(|e| e.to_string())
    });
    match res {
        Ok(ms) => RunOutcome::from_metrics(&ms, &io, nodes.max_node_peak(), input_bytes),
        Err(_) => RunOutcome::oom(),
    }
}

/// BFS on MR-MPI.
pub fn run_bfs_mrmpi(
    p: &Platform,
    n_nodes: usize,
    scale: u32,
    page_size: usize,
    compress: bool,
) -> RunOutcome {
    let nodes = p.node_map(n_nodes);
    let nodes2 = nodes.clone();
    let io = IoModel::new(p.io).expect("io model");
    let io2 = io.clone();
    let ranks = p.ranks(n_nodes);
    let graph = Graph500::new(scale, 0xC0FFEE);
    let input_bytes = graph.n_edges() as usize * 16;
    let opts = BfsOptions {
        hint: false,
        compress,
    };
    let res = run_world_result(ranks, move |comm| {
        let edges = graph.edges(comm.rank(), ranks);
        let root = pick_root(comm, &edges);
        let pool = nodes2.pool_for_rank(comm.rank());
        let store =
            SpillStore::new_temp("bench-bfs", io2.clone()).map_err(|e| e.to_string())?;
        let cfg = MrMpiConfig {
            page_size,
            ooc: OocMode::WhenNeeded,
        };
        bfs_mrmpi(comm, pool, &store, cfg, &edges, root, &opts)
            .map(|(_, m)| m)
            .map_err(|e| e.to_string())
    });
    match res {
        Ok(ms) => RunOutcome::from_metrics(&ms, &io, nodes.max_node_peak(), input_bytes),
        Err(_) => RunOutcome::oom(),
    }
}

/// Helper for Figure 1: MR-MPI WordCount where we *want* the spill regime
/// (the out-of-core cliff), single node, uniform data. Uses the platform's
/// *large* page configuration — the paper's Figure 1 curve stays in memory
/// until ~4 GB, which is the 512 MB-page regime.
pub fn run_fig1_point(p: &Platform, total_bytes: usize) -> RunOutcome {
    run_wc_mrmpi(p, 1, WcDataset::Uniform, total_bytes, p.mrmpi_page_large, false)
}

/// Sanity helper used by the smoke bench: a quick world round-trip.
pub fn smoke_world(ranks: usize) -> u64 {
    run_world(ranks, |c| c.allreduce_u64(mimir_mpi::ReduceOp::Sum, 1))[0]
}
