//! Scaled platform presets for the paper's two machines.
//!
//! | | paper Comet | `comet_mini` | paper Mira | `mira_mini` |
//! |---|---|---|---|---|
//! | ranks/node | 24 | 24 | 16 | 16 |
//! | memory/node | 128 GB | 128 MiB | 16 GB | 16 MiB |
//! | MR-MPI page | 64/512 MB | 64/512 KiB | 64/128 MB | 64/128 KiB |
//! | Mimir page + comm buf | 64 MB | 64 KiB | 64 MB | 64 KiB |
//! | file system | Lustre | `lustre_scaled` | GPFS + ION 1:128 | `gpfs_scaled` |
//!
//! Everything scales by 1/1024, so ratios — dataset:page, page:node —
//! match the paper and the crossover points land in the same places.

use mimir_io::IoModelConfig;
use mimir_mem::NodeMap;

/// A scaled supercomputer preset.
#[derive(Debug, Clone, Copy)]
pub struct Platform {
    /// Display name.
    pub name: &'static str,
    /// MPI ranks per compute node.
    pub ranks_per_node: usize,
    /// Node memory budget in bytes.
    pub node_mem: usize,
    /// Mimir's container page size and communication buffer size.
    pub page_size: usize,
    /// MR-MPI's default page size (the paper's 64 MB).
    pub mrmpi_page_small: usize,
    /// MR-MPI's "maximum possible" page size on this platform.
    pub mrmpi_page_large: usize,
    /// Parallel-file-system cost model.
    pub io: IoModelConfig,
}

impl Platform {
    /// SDSC Comet, scaled.
    pub fn comet_mini() -> Self {
        Self {
            name: "comet-mini",
            ranks_per_node: 24,
            node_mem: 128 << 20,
            page_size: 64 << 10,
            mrmpi_page_small: 64 << 10,
            mrmpi_page_large: 512 << 10,
            io: IoModelConfig::lustre_scaled(),
        }
    }

    /// ANL Mira (BG/Q), scaled.
    pub fn mira_mini() -> Self {
        Self {
            name: "mira-mini",
            ranks_per_node: 16,
            node_mem: 16 << 20,
            page_size: 64 << 10,
            mrmpi_page_small: 64 << 10,
            mrmpi_page_large: 128 << 10,
            io: IoModelConfig::gpfs_scaled(),
        }
    }

    /// Total ranks for `n_nodes` nodes.
    pub fn ranks(&self, n_nodes: usize) -> usize {
        self.ranks_per_node * n_nodes
    }

    /// Builds the per-node memory pools for `n_nodes` nodes.
    ///
    /// # Panics
    /// Panics on zero nodes.
    pub fn node_map(&self, n_nodes: usize) -> NodeMap {
        NodeMap::new(
            self.ranks(n_nodes),
            self.ranks_per_node,
            self.page_size,
            self.node_mem,
        )
        .expect("platform preset is valid")
    }

    /// A reduced-width variant for weak-scaling figures, where the full
    /// rank count would exceed sane thread counts on the host: keeps the
    /// per-node memory *per rank* identical but packs fewer ranks on a
    /// node. Documented per figure in EXPERIMENTS.md.
    pub fn thin(&self, ranks_per_node: usize) -> Self {
        assert!(ranks_per_node > 0, "need at least one rank per node");
        let mem_per_rank = self.node_mem / self.ranks_per_node;
        Self {
            ranks_per_node,
            node_mem: mem_per_rank * ranks_per_node,
            ..*self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_internally_consistent() {
        for p in [Platform::comet_mini(), Platform::mira_mini()] {
            // The large MR-MPI page set must fit the node (the paper ran
            // those configurations).
            assert!(
                7 * p.mrmpi_page_large * p.ranks_per_node <= p.node_mem,
                "{}",
                p.name
            );
            let map = p.node_map(2);
            assert_eq!(map.n_nodes(), 2);
        }
    }

    #[test]
    fn thin_preserves_per_rank_memory() {
        let p = Platform::comet_mini();
        let t = p.thin(4);
        assert_eq!(p.node_mem / p.ranks_per_node, t.node_mem / t.ranks_per_node);
    }
}
