//! Shared sweep drivers used by the per-figure binaries: run a list of
//! series over a list of x-values and assemble a [`Figure`].

use mimir_apps::bfs::BfsOptions;
use mimir_apps::octree::OcOptions;
use mimir_apps::wordcount::WcOptions;

use crate::report::{DataPoint, Figure, Series};
use crate::runner::{
    run_bfs_mimir, run_bfs_mrmpi, run_oc_mimir, run_oc_mrmpi, run_wc_mimir, run_wc_mrmpi, WcDataset,
};
use crate::{fmt_size, Platform};

/// One line of a WordCount figure.
#[derive(Debug, Clone, Copy)]
pub enum WcSeries {
    /// Mimir with an optimization combination.
    Mimir(WcOptions),
    /// MR-MPI with a page size, optionally with its KV compression.
    MrMpi { page: usize, cps: bool },
}

/// One line of an octree figure.
#[derive(Debug, Clone, Copy)]
pub enum OcSeries {
    /// Mimir with an optimization combination.
    Mimir(OcOptions),
    /// MR-MPI with a page size, optionally compressing.
    MrMpi { page: usize, cps: bool },
}

/// One line of a BFS figure.
#[derive(Debug, Clone, Copy)]
pub enum BfsSeries {
    /// Mimir with an optimization combination.
    Mimir(BfsOptions),
    /// MR-MPI with a page size, optionally compressing.
    MrMpi { page: usize, cps: bool },
}

/// Sweeps dataset sizes for WordCount on a fixed node count.
pub fn wc_figure(
    id: &str,
    title: &str,
    p: &Platform,
    n_nodes: usize,
    dataset: WcDataset,
    sizes: &[usize],
    series: &[(&str, WcSeries)],
) -> Figure {
    let mut out = Vec::new();
    for (label, spec) in series {
        let mut points = Vec::new();
        for &size in sizes {
            let outcome = match spec {
                WcSeries::Mimir(opts) => run_wc_mimir(p, n_nodes, dataset, size, *opts),
                WcSeries::MrMpi { page, cps } => {
                    run_wc_mrmpi(p, n_nodes, dataset, size, *page, *cps)
                }
            };
            eprintln!("  {id} {label} {}: {:?}", fmt_size(size), outcome.status);
            points.push(DataPoint {
                x: fmt_size(size),
                outcome,
            });
        }
        out.push(Series {
            label: (*label).into(),
            points,
        });
    }
    Figure {
        id: id.into(),
        title: title.into(),
        xlabel: "dataset".into(),
        series: out,
    }
}

/// Sweeps point counts for octree clustering on a fixed node count.
pub fn oc_figure(
    id: &str,
    title: &str,
    p: &Platform,
    n_nodes: usize,
    log2_points: &[u32],
    series: &[(&str, OcSeries)],
) -> Figure {
    let mut out = Vec::new();
    for (label, spec) in series {
        let mut points = Vec::new();
        for &lg in log2_points {
            let n = 1usize << lg;
            let outcome = match spec {
                OcSeries::Mimir(opts) => run_oc_mimir(p, n_nodes, n, *opts),
                OcSeries::MrMpi { page, cps } => run_oc_mrmpi(p, n_nodes, n, *page, *cps),
            };
            eprintln!("  {id} {label} 2^{lg}: {:?}", outcome.status);
            points.push(DataPoint {
                x: format!("2^{lg}"),
                outcome,
            });
        }
        out.push(Series {
            label: (*label).into(),
            points,
        });
    }
    Figure {
        id: id.into(),
        title: title.into(),
        xlabel: "points".into(),
        series: out,
    }
}

/// Sweeps graph scales for BFS on a fixed node count.
pub fn bfs_figure(
    id: &str,
    title: &str,
    p: &Platform,
    n_nodes: usize,
    scales: &[u32],
    series: &[(&str, BfsSeries)],
) -> Figure {
    let mut out = Vec::new();
    for (label, spec) in series {
        let mut points = Vec::new();
        for &scale in scales {
            let outcome = match spec {
                BfsSeries::Mimir(opts) => run_bfs_mimir(p, n_nodes, scale, *opts),
                BfsSeries::MrMpi { page, cps } => run_bfs_mrmpi(p, n_nodes, scale, *page, *cps),
            };
            eprintln!("  {id} {label} 2^{scale}: {:?}", outcome.status);
            points.push(DataPoint {
                x: format!("2^{scale}"),
                outcome,
            });
        }
        out.push(Series {
            label: (*label).into(),
            points,
        });
    }
    Figure {
        id: id.into(),
        title: title.into(),
        xlabel: "vertices".into(),
        series: out,
    }
}

/// Weak-scaling WordCount: sweeps node counts with a fixed per-*rank*
/// dataset share (preserving the paper's per-rank ratios when running a
/// thinned platform; see `Platform::thin`).
pub fn wc_scaling_figure(
    id: &str,
    title: &str,
    p: &Platform,
    dataset: WcDataset,
    bytes_per_rank: usize,
    node_counts: &[usize],
    series: &[(&str, WcSeries)],
) -> Figure {
    let mut out = Vec::new();
    for (label, spec) in series {
        let mut points = Vec::new();
        for &nodes in node_counts {
            let total = bytes_per_rank * p.ranks(nodes);
            let outcome = match spec {
                WcSeries::Mimir(opts) => run_wc_mimir(p, nodes, dataset, total, *opts),
                WcSeries::MrMpi { page, cps } => {
                    run_wc_mrmpi(p, nodes, dataset, total, *page, *cps)
                }
            };
            eprintln!("  {id} {label} {nodes} nodes: {:?}", outcome.status);
            points.push(DataPoint {
                x: nodes.to_string(),
                outcome,
            });
        }
        out.push(Series {
            label: (*label).into(),
            points,
        });
    }
    Figure {
        id: id.into(),
        title: title.into(),
        xlabel: "nodes".into(),
        series: out,
    }
}

/// Weak-scaling octree/BFS analogue of [`wc_scaling_figure`], generic in
/// how a per-node workload is run.
pub fn scaling_figure(
    id: &str,
    title: &str,
    xlabel: &str,
    node_counts: &[usize],
    series: &[&str],
    mut run: impl FnMut(usize, usize) -> crate::RunOutcome,
) -> Figure {
    let mut out = Vec::new();
    for (si, label) in series.iter().enumerate() {
        let mut points = Vec::new();
        for &nodes in node_counts {
            let outcome = run(si, nodes);
            eprintln!("  {id} {label} {nodes} nodes: {:?}", outcome.status);
            points.push(DataPoint {
                x: nodes.to_string(),
                outcome,
            });
        }
        out.push(Series {
            label: (*label).into(),
            points,
        });
    }
    Figure {
        id: id.into(),
        title: title.into(),
        xlabel: xlabel.into(),
        series: out,
    }
}
