//! **Adaptive-runtime ablation** — throughput of the self-tuning
//! shuffle against the static [`ShuffleMode`] data paths, across
//! key-skew × round-size cells.
//!
//! Each rank pushes fixed(8,8) KVs whose keys are drawn from a
//! Zipf-distributed vocabulary (`s = 0` is uniform; `s = 2.0` puts ~60%
//! of the mass on one word, so one destination holds far more than the
//! 2x-fair-share hot trip point). The adaptive runtime must match or
//! beat the best static mode in *every* cell — it converges onto
//! whichever posting discipline wins the cell — and on the heavy-skew
//! cells it must beat the *worst* static mode by ≥1.3x: besides picking
//! the right posting discipline it diverts the hot destination through
//! the salted count-collapse path (values here are constant, so
//! duplicate KVs collapse to `(kv, count)` frames instead of shipping N
//! times), which the worst static — the `Legacy` ablation baseline in
//! the full sweep — pays for in full.
//!
//! # Methodology
//!
//! Repeats are interleaved across modes (machine-load drift biases every
//! mode equally, not whichever ran last) and each mode reports its best
//! repeat. The ≥1.0x-vs-best-static gate, however, is **temporally
//! paired**: within repeat `k` all modes run back-to-back under the same
//! machine conditions, so the gate asks for some repeat in which the
//! adaptive beat that repeat's best static. Comparing cross-repeat
//! best-vs-best instead would compare different machine states and flag
//! pure scheduler luck as a regression on a busy box.
//!
//! Writes `BENCH_adapt.json`; `--quick` runs the Zipf(2.0)/64K cell as
//! the CI smoke gate. Prints a `REGRESSION` marker and exits nonzero if
//! adaptive loses to the best static mode anywhere, misses the 1.3x bar
//! on Zipf(2.0), or fails to bring the measured imbalance back under
//! the trip point after diverting.

use std::time::Instant;

use mimir_bench::{fmt_size, HarnessArgs};
use mimir_core::{AdaptStats, Emitter, KvContainer, KvMeta, Partitioner, ShuffleMode, Shuffler};
use mimir_datagen::rank_rng;
use mimir_mem::MemPool;
use mimir_mpi::run_world;
use mimir_obs::Json;

const RANKS: usize = 4;
const KV_BYTES: u64 = 16; // fixed(8,8)
const VOCAB: usize = 50_000;
/// Each rank emits this many send-buffers' worth. Generous on purpose:
/// the controller needs its ~5-round convergence window to be a small
/// fraction of the job, as it is for any real workload — at 8 buffers a
/// heavy-skew cell ends before the mode decision can pay for itself.
const BUFFERS_PER_RANK: usize = 32;

/// One measured configuration: a skew level and a comm-buffer size.
struct Cell {
    zipf_s: f64,
    comm_buf: usize,
    kvs_per_rank: usize,
}

/// One run's result for a (cell, mode).
struct Measure {
    mode: ShuffleMode,
    /// Aggregate shuffle throughput: total emitted bytes / slowest rank.
    mb_per_s: f64,
    rounds: u64,
    /// Worst per-destination imbalance any sender recorded (permille of
    /// the fair share; 2000 = the hot trip point).
    imbalance_permille: u64,
    /// The adaptive controller's merged counters (zero for statics).
    adapt: AdaptStats,
}

/// One mode's cell result: the best repeat (reported) plus every
/// repeat's throughput (gated pairwise — see the module doc).
struct ModeResult {
    best: Measure,
    samples: Vec<f64>,
}

/// Zipf(s) CDF over the vocabulary; `s = 0` degenerates to uniform.
fn zipf_cdf(s: f64) -> Vec<f64> {
    let mut weights: Vec<f64> = (0..VOCAB).map(|i| 1.0 / ((i + 1) as f64).powf(s)).collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    for w in &mut weights {
        acc += *w / total;
        *w = acc;
    }
    weights
}

/// This rank's key stream: word ids drawn from the cell's Zipf CDF.
/// Pre-generated so sampling cost stays outside the timed region.
fn rank_keys(cdf: &[f64], seed: u64, rank: usize, n: usize) -> Vec<u64> {
    let mut rng = rank_rng(seed, rank);
    (0..n)
        .map(|_| {
            let u = rng.gen_f64();
            cdf.partition_point(|&c| c < u).min(VOCAB - 1) as u64
        })
        .collect()
}

fn run_once(cell: &Cell, mode: ShuffleMode) -> Measure {
    let comm_buf = cell.comm_buf;
    let n = cell.kvs_per_rank;
    let zipf_s = cell.zipf_s;
    let out = run_world(RANKS, move |comm| {
        let pool = MemPool::unlimited("bench", 1 << 20);
        let meta = KvMeta::fixed(8, 8);
        let sink = KvContainer::new(&pool, meta);
        let keys = rank_keys(&zipf_cdf(zipf_s), 0xADA7, comm.rank(), n);
        // Key generation costs more than the shuffle itself; without this
        // barrier the per-rank clocks start staggered by however the
        // scheduler interleaved keygen, and that stagger — pure luck —
        // dominates the slowest-rank throughput metric.
        comm.barrier();
        let mut sh =
            Shuffler::with_options(comm, &pool, meta, comm_buf, sink, Partitioner::hash(), mode)
                .unwrap();
        let t0 = Instant::now();
        for &id in &keys {
            sh.emit(&id.to_le_bytes(), &1u64.to_le_bytes()).unwrap();
        }
        let (_, stats) = sh.finish().unwrap();
        (t0.elapsed().as_secs_f64(), stats)
    });
    let slowest = out.iter().map(|(t, _)| *t).fold(0.0, f64::max);
    let total_bytes = (RANKS * n) as u64 * KV_BYTES;
    let mut adapt = AdaptStats::default();
    for (_, s) in &out {
        adapt.merge(&s.adapt);
    }
    Measure {
        mode,
        mb_per_s: total_bytes as f64 / (1 << 20) as f64 / slowest,
        rounds: out.iter().map(|(_, s)| s.rounds).max().unwrap(),
        imbalance_permille: out.iter().map(|(_, s)| s.imbalance_permille).max().unwrap(),
        adapt,
    }
}

/// Measures every mode `repeats` times with the repeats interleaved
/// across modes, keeping each mode's best repeat for reporting and every
/// repeat's throughput for the paired gate.
fn measure_cell(cell: &Cell, modes: &[ShuffleMode], repeats: usize) -> Vec<ModeResult> {
    let mut out: Vec<Option<ModeResult>> = modes.iter().map(|_| None).collect();
    for _ in 0..repeats {
        for (slot, &mode) in out.iter_mut().zip(modes) {
            let m = run_once(cell, mode);
            match slot {
                Some(r) => {
                    r.samples.push(m.mb_per_s);
                    if m.mb_per_s > r.best.mb_per_s {
                        r.best = m;
                    }
                }
                None => {
                    *slot = Some(ModeResult {
                        samples: vec![m.mb_per_s],
                        best: m,
                    });
                }
            }
        }
    }
    out.into_iter().map(|r| r.expect("repeats >= 1")).collect()
}

fn mode_name(mode: ShuffleMode) -> &'static str {
    match mode {
        ShuffleMode::Legacy => "legacy",
        ShuffleMode::ZeroCopy => "zero-copy",
        ShuffleMode::Overlapped => "overlapped",
        ShuffleMode::Adaptive => "adaptive",
    }
}

fn dist_name(s: f64) -> String {
    if s == 0.0 {
        "uniform".into()
    } else {
        format!("zipf({s:.1})")
    }
}

fn main() {
    let args = HarnessArgs::parse();
    let cell = |zipf_s: f64, comm_buf: usize| Cell {
        zipf_s,
        comm_buf,
        kvs_per_rank: BUFFERS_PER_RANK * comm_buf / KV_BYTES as usize,
    };
    let (cells, repeats): (Vec<Cell>, usize) = if args.quick {
        (vec![cell(2.0, 64 << 10)], 8)
    } else {
        let mut cells = Vec::new();
        for s in [0.0, 1.2, 2.0] {
            for comm_buf in [64 << 10, 256 << 10, 1 << 20] {
                cells.push(cell(s, comm_buf));
            }
        }
        // Same repeat count as --quick: the paired gate needs enough
        // shared-conditions samples that a cell at true parity is not a
        // coin flip on a busy box.
        (cells, 8)
    };

    // The quick gate races adaptive against the two modes it chooses
    // between; the full sweep adds the `Legacy` ablation baseline so the
    // static spectrum (and the 1.3x-vs-worst bar) covers the whole
    // mode enum.
    let statics: &[ShuffleMode] = if args.quick {
        &[ShuffleMode::ZeroCopy, ShuffleMode::Overlapped]
    } else {
        &[
            ShuffleMode::ZeroCopy,
            ShuffleMode::Overlapped,
            ShuffleMode::Legacy,
        ]
    };
    println!(
        "{:<10}{:>8}{:>12}{:>12}{:>14}{:>10}{:>12}{:>10}",
        "dist", "buf", "mode", "MB/s", "vs-best-stat", "rounds", "imbalance", "hot"
    );

    let mut rows = Vec::new();
    let mut regression = false;
    let mut zipf2_worst_ratio: Option<f64> = None;
    for cell in &cells {
        let mut modes = statics.to_vec();
        modes.push(ShuffleMode::Adaptive);
        let results = measure_cell(cell, &modes, repeats);
        let (stat_res, adaptive) = results.split_at(statics.len());
        let adaptive = &adaptive[0];
        let best_static = stat_res.iter().map(|r| r.best.mb_per_s).fold(0.0, f64::max);
        let worst_static = stat_res
            .iter()
            .map(|r| r.best.mb_per_s)
            .fold(f64::INFINITY, f64::min);
        // Temporally paired ratios: repeat k's adaptive run against the
        // best static run of the same repeat (adjacent in time, so under
        // the same machine conditions).
        let mut paired: Vec<f64> = (0..repeats)
            .map(|k| {
                let best_k = stat_res.iter().map(|r| r.samples[k]).fold(0.0, f64::max);
                adaptive.samples[k] / best_k
            })
            .collect();
        paired.sort_by(|a, b| a.total_cmp(b));
        let paired_best = *paired.last().expect("repeats >= 1");
        let paired_median = paired[paired.len() / 2];
        let vs_worst = adaptive.best.mb_per_s / worst_static;
        if paired_best < 1.0 {
            regression = true;
            println!(
                "REGRESSION: adaptive lost every paired repeat (best {:.2}x, \
                 median {:.2}x) vs best static ({} / {})",
                paired_best,
                paired_median,
                dist_name(cell.zipf_s),
                fmt_size(cell.comm_buf),
            );
        }
        if cell.zipf_s == 2.0 {
            zipf2_worst_ratio = Some(zipf2_worst_ratio.map_or(vs_worst, |r: f64| r.min(vs_worst)));
            // The divert must have fired and brought the post-run
            // imbalance back under the 2x trip point.
            if adaptive.best.adapt.hot_trips == 0 {
                regression = true;
                println!(
                    "REGRESSION: no hot-key trip on {} / {}",
                    dist_name(cell.zipf_s),
                    fmt_size(cell.comm_buf)
                );
            }
            if adaptive.best.imbalance_permille >= 2000 {
                regression = true;
                println!(
                    "REGRESSION: post-divert imbalance {}‰ still at/above the \
                     2000‰ trip ({} / {})",
                    adaptive.best.imbalance_permille,
                    dist_name(cell.zipf_s),
                    fmt_size(cell.comm_buf)
                );
            }
        }
        for r in &results {
            let m = &r.best;
            println!(
                "{:<10}{:>8}{:>12}{:>12.1}{:>13.2}x{:>10}{:>12}{:>10}",
                dist_name(cell.zipf_s),
                fmt_size(cell.comm_buf),
                mode_name(m.mode),
                m.mb_per_s,
                m.mb_per_s / best_static,
                m.rounds,
                m.imbalance_permille,
                m.adapt.hot_trips,
            );
            let mut fields = vec![
                ("dist", Json::Str(dist_name(cell.zipf_s))),
                ("zipf_s", Json::Num(cell.zipf_s)),
                ("comm_buf", Json::Num(cell.comm_buf as f64)),
                ("kvs_per_rank", Json::Num(cell.kvs_per_rank as f64)),
                ("mode", Json::Str(mode_name(m.mode).into())),
                ("mb_per_s", Json::Num(m.mb_per_s)),
                ("vs_best_static", Json::Num(m.mb_per_s / best_static)),
                ("rounds", Json::Num(m.rounds as f64)),
                ("imbalance_permille", Json::Num(m.imbalance_permille as f64)),
                ("mode_switches", Json::Num(m.adapt.mode_switches as f64)),
                ("grow_steps", Json::Num(m.adapt.grow_steps as f64)),
                ("shrink_steps", Json::Num(m.adapt.shrink_steps as f64)),
                (
                    "final_fill_permille",
                    Json::Num(m.adapt.final_fill_permille as f64),
                ),
                ("final_overlap", Json::Num(m.adapt.final_overlap as f64)),
                ("hot_trips", Json::Num(m.adapt.hot_trips as f64)),
                ("hot_staged_kvs", Json::Num(m.adapt.hot_staged_kvs as f64)),
                ("hot_unique_kvs", Json::Num(m.adapt.hot_unique_kvs as f64)),
                ("salted_rounds", Json::Num(m.adapt.salted_rounds as f64)),
                ("merge_rounds", Json::Num(m.adapt.merge_rounds as f64)),
            ];
            if m.mode == ShuffleMode::Adaptive {
                fields.push(("paired_best", Json::Num(paired_best)));
                fields.push(("paired_median", Json::Num(paired_median)));
            }
            rows.push(Json::obj(fields));
        }
        println!(
            "{:<10}{:>8}      paired: best {:.2}x  median {:.2}x vs best static",
            dist_name(cell.zipf_s),
            fmt_size(cell.comm_buf),
            paired_best,
            paired_median,
        );
    }

    if let Some(r) = zipf2_worst_ratio {
        println!("zipf(2.0) adaptive vs worst static (min across cells): {r:.2}x");
        if !args.quick && r < 1.3 {
            regression = true;
            println!("REGRESSION: adaptive beats the worst static by only {r:.2}x on zipf(2.0) (need ≥1.3x)");
        }
    }

    let doc = Json::obj(vec![
        ("bench", Json::Str("adaptive_runtime".into())),
        ("quick", Json::Bool(args.quick)),
        ("ranks", Json::Num(RANKS as f64)),
        ("kv_meta", Json::Str("fixed(8,8)".into())),
        ("vocab", Json::Num(VOCAB as f64)),
        (
            "zipf2_vs_worst_static",
            zipf2_worst_ratio.map_or(Json::Null, Json::Num),
        ),
        ("regression", Json::Bool(regression)),
        ("cells", Json::Arr(rows)),
    ]);
    let path = args.json.unwrap_or_else(|| "BENCH_adapt.json".into());
    std::fs::write(&path, doc.to_pretty()).expect("writing bench JSON");
    println!("wrote {path}");
    if regression {
        println!("REGRESSION: the adaptive runtime failed an acceptance gate");
        std::process::exit(1);
    }
}
