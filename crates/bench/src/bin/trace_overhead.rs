//! **Trace-overhead ablation** — cost of the observability stack on the
//! shuffle hot path, measured on the heavy 8-rank shuffle cell (the same
//! cell `shuffle_bench` gates on). Three configurations:
//!
//! - `off`: no recorder installed — every `emit`/`flow_*` call is a
//!   thread-local `None` check and nothing else;
//! - `skeleton`: recorder installed, flow stamping disabled — phase,
//!   step, and round spans land in the ring but messages go untraced;
//! - `full-flow`: flow stamping on — every message additionally carries
//!   a flow id and the receive loop records `FlowSend`/`FlowRecv`
//!   pairs, i.e. everything the critical-path engine needs.
//!
//! Best-of-repeats throughput per configuration; overhead is reported
//! against `off`. Writes `BENCH_trace_overhead.json`; `--quick` runs a
//! smaller cell as a CI smoke test. Prints a `REGRESSION` marker and
//! exits nonzero if full-flow tracing costs ≥5% of untraced throughput —
//! the budget under which "leave tracing on in production" stays an easy
//! recommendation.

use std::time::Instant;

use mimir_bench::{fmt_size, HarnessArgs};
use mimir_core::{Emitter, KvContainer, KvMeta, Partitioner, ShuffleMode, Shuffler};
use mimir_datagen::rank_rng;
use mimir_mem::MemPool;
use mimir_mpi::run_world;
use mimir_obs::{Json, Recorder};

const KV_BYTES: u64 = 16; // fixed(8,8), matching shuffle_bench

#[derive(Clone, Copy, PartialEq)]
enum Tracing {
    Off,
    Skeleton,
    FullFlow,
}

impl Tracing {
    fn name(self) -> &'static str {
        match self {
            Tracing::Off => "off",
            Tracing::Skeleton => "skeleton",
            Tracing::FullFlow => "full-flow",
        }
    }
}

struct Measure {
    mb_per_s: f64,
    events: u64,
    events_dropped: u64,
}

/// Ring capacity sized so the full-flow run never overflows — loss would
/// make the event count (and thus the comparison) configuration-biased.
const RING_CAP: usize = 1 << 20;

fn run_cell(ranks: usize, comm_buf: usize, kvs_per_rank: usize, tracing: Tracing) -> Measure {
    let epoch = Instant::now();
    let out = run_world(ranks, move |comm| {
        if tracing != Tracing::Off {
            let mut rec = Recorder::with_epoch(comm.rank(), RING_CAP, epoch);
            rec.set_flow_enabled(tracing == Tracing::FullFlow);
            mimir_obs::install(rec);
        }
        let pool = MemPool::unlimited("bench", 1 << 20);
        let meta = KvMeta::fixed(8, 8);
        let sink = KvContainer::new(&pool, meta);
        let mut sh = Shuffler::with_options(
            comm,
            &pool,
            meta,
            comm_buf,
            sink,
            Partitioner::hash(),
            ShuffleMode::Overlapped,
        )
        .unwrap();
        let mut rng = rank_rng(0x7ACE, sh.rank());
        let t0 = Instant::now();
        for _ in 0..kvs_per_rank {
            let key = rng.next_u64().to_le_bytes();
            sh.emit(&key, &[0u8; 8]).unwrap();
        }
        let _ = sh.finish().unwrap();
        let elapsed = t0.elapsed().as_secs_f64();
        let (events, dropped) = match mimir_obs::take() {
            Some(rec) => (rec.len() as u64, rec.dropped()),
            None => (0, 0),
        };
        (elapsed, events, dropped)
    });
    let slowest = out.iter().map(|(t, _, _)| *t).fold(0.0, f64::max);
    let total_bytes = (ranks * kvs_per_rank) as u64 * KV_BYTES;
    Measure {
        mb_per_s: total_bytes as f64 / (1 << 20) as f64 / slowest,
        events: out.iter().map(|(_, e, _)| e).sum(),
        events_dropped: out.iter().map(|(_, _, d)| d).sum(),
    }
}

fn best_of(
    ranks: usize,
    comm_buf: usize,
    kvs_per_rank: usize,
    tracing: Tracing,
    repeats: usize,
) -> Measure {
    (0..repeats)
        .map(|_| run_cell(ranks, comm_buf, kvs_per_rank, tracing))
        .max_by(|a, b| a.mb_per_s.total_cmp(&b.mb_per_s))
        .unwrap()
}

fn main() {
    let args = HarnessArgs::parse();
    // Heavy-8 preset: the cell where the exchange engine (and therefore
    // per-message tracing) is busiest. --quick shrinks it for CI.
    let (ranks, comm_buf, repeats) = if args.quick {
        (2usize, 64 << 10, 3)
    } else {
        (8usize, 256 << 10, 5)
    };
    let kvs_per_rank = 8 * comm_buf / KV_BYTES as usize;

    println!(
        "{:<6}{:>8}{:>12}{:>12}{:>12}{:>12}{:>10}",
        "ranks", "buf", "tracing", "MB/s", "overhead", "events", "dropped"
    );
    let configs = [Tracing::Off, Tracing::Skeleton, Tracing::FullFlow];
    let measures: Vec<Measure> = configs
        .iter()
        .map(|&t| best_of(ranks, comm_buf, kvs_per_rank, t, repeats))
        .collect();
    let off = measures[0].mb_per_s;

    let mut rows = Vec::new();
    let mut full_flow_overhead = 0.0;
    for (cfg, m) in configs.iter().zip(&measures) {
        // Overhead of this configuration vs untraced, as a fraction
        // (0.03 = 3% of untraced throughput lost).
        let overhead = (off / m.mb_per_s - 1.0).max(0.0);
        if *cfg == Tracing::FullFlow {
            full_flow_overhead = overhead;
        }
        println!(
            "{:<6}{:>8}{:>12}{:>12.1}{:>11.1}%{:>12}{:>10}",
            ranks,
            fmt_size(comm_buf),
            cfg.name(),
            m.mb_per_s,
            overhead * 100.0,
            m.events,
            m.events_dropped
        );
        rows.push(Json::obj(vec![
            ("tracing", Json::Str(cfg.name().into())),
            ("mb_per_s", Json::Num(m.mb_per_s)),
            ("overhead_vs_off", Json::Num(overhead)),
            ("events", Json::Num(m.events as f64)),
            ("events_dropped", Json::Num(m.events_dropped as f64)),
        ]));
    }

    let dropped: u64 = measures.iter().map(|m| m.events_dropped).sum();
    let regression = full_flow_overhead >= 0.05;
    let doc = Json::obj(vec![
        ("bench", Json::Str("trace_overhead".into())),
        ("quick", Json::Bool(args.quick)),
        ("ranks", Json::Num(ranks as f64)),
        ("comm_buf", Json::Num(comm_buf as f64)),
        ("kvs_per_rank", Json::Num(kvs_per_rank as f64)),
        ("kv_meta", Json::Str("fixed(8,8)".into())),
        ("full_flow_overhead", Json::Num(full_flow_overhead)),
        ("regression", Json::Bool(regression)),
        ("cells", Json::Arr(rows)),
    ]);
    let path = args
        .json
        .unwrap_or_else(|| "BENCH_trace_overhead.json".into());
    std::fs::write(&path, doc.to_pretty()).expect("writing bench JSON");
    println!("wrote {path}");
    println!(
        "full-flow tracing overhead vs untraced: {:.1}%",
        full_flow_overhead * 100.0
    );
    if dropped > 0 {
        println!(
            "note: {dropped} events dropped — the ring overflowed, raise \
             RING_CAP for a fair comparison"
        );
    }
    if regression {
        println!("REGRESSION: full-flow tracing costs >=5% of untraced throughput");
        std::process::exit(1);
    }
}
