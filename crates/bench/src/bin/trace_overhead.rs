//! **Trace-overhead ablation** — cost of the observability stack on the
//! shuffle hot path, measured on the heavy 8-rank shuffle cell (the same
//! cell `shuffle_bench` gates on). Five configurations:
//!
//! - `off`: no recorder installed — every `emit`/`flow_*` call is a
//!   thread-local `None` check and nothing else;
//! - `skeleton`: recorder installed, flow stamping disabled — phase,
//!   step, and round spans land in the ring but messages go untraced;
//! - `full-flow`: flow stamping on — every message additionally carries
//!   a flow id and the receive loop records `FlowSend`/`FlowRecv`
//!   pairs, i.e. everything the critical-path engine needs;
//! - `live-off` / `live-on`: a paired re-measure with the recorder off
//!   and the **live telemetry plane** disarmed vs armed (100 ms publish
//!   interval) — the cost of streaming per-rank counter snapshots to
//!   disk while the shuffle runs, including the sliced blocking
//!   receives the plane uses to stay live during waits. The pair runs
//!   a 64× larger cell so the timed region spans several publish
//!   intervals and the comparison measures steady state, not arm cost.
//!
//! Best-of-repeats throughput per configuration; trace overhead is
//! reported against `off`. `telemetry_overhead` comes from the live
//! pair run as interleaved A/B repeats compared best-against-best —
//! scheduler noise only ever slows a run, so the best run per side is
//! the clean-machine sample and background drift cancels out of the
//! ratio instead of masquerading as plane cost. Writes
//! `BENCH_trace_overhead.json`; `--quick` runs a
//! smaller cell as a CI smoke test. Prints a `REGRESSION` marker and
//! exits nonzero if full-flow tracing costs ≥5% — or the live plane
//! ≥2% — of untraced throughput: the budgets under which "leave tracing
//! on in production" and "watch every run live" stay easy
//! recommendations.

use std::time::{Duration, Instant};

use mimir_bench::{fmt_size, HarnessArgs};
use mimir_core::{Emitter, KvContainer, KvMeta, Partitioner, ShuffleMode, Shuffler};
use mimir_datagen::rank_rng;
use mimir_mem::MemPool;
use mimir_mpi::run_world;
use mimir_obs::live::{set_force_config, LiveConfig};
use mimir_obs::{Json, Recorder};

const KV_BYTES: u64 = 16; // fixed(8,8), matching shuffle_bench

/// The publish interval the <2% budget is stated against.
const LIVE_INTERVAL: Duration = Duration::from_millis(100);

#[derive(Clone, Copy, PartialEq)]
enum Tracing {
    Off,
    Skeleton,
    FullFlow,
}

/// One measured configuration: recorder mode × live-plane state.
/// `kvs_mult` scales the workload: the live pair runs a much longer
/// cell so the timed region spans several publish intervals and the
/// plane's fixed arm/disarm cost amortizes out of the steady-state
/// comparison (the pair is compared within itself, so the different
/// workload size cannot bias it).
#[derive(Clone, Copy)]
struct Cell {
    name: &'static str,
    tracing: Tracing,
    live: bool,
    kvs_mult: usize,
}

const CELLS: [Cell; 5] = [
    Cell {
        name: "off",
        tracing: Tracing::Off,
        live: false,
        kvs_mult: 1,
    },
    Cell {
        name: "skeleton",
        tracing: Tracing::Skeleton,
        live: false,
        kvs_mult: 1,
    },
    Cell {
        name: "full-flow",
        tracing: Tracing::FullFlow,
        live: false,
        kvs_mult: 1,
    },
    Cell {
        name: "live-off",
        tracing: Tracing::Off,
        live: false,
        kvs_mult: 64,
    },
    Cell {
        name: "live-on",
        tracing: Tracing::Off,
        live: true,
        kvs_mult: 64,
    },
];

struct Measure {
    mb_per_s: f64,
    events: u64,
    events_dropped: u64,
}

/// Ring capacity sized so the full-flow run never overflows — loss would
/// make the event count (and thus the comparison) configuration-biased.
const RING_CAP: usize = 1 << 20;

fn run_cell(ranks: usize, comm_buf: usize, kvs_per_rank: usize, cell: Cell) -> Measure {
    let live_dir = cell.live.then(|| {
        let dir = std::env::temp_dir().join(format!("mimir-bench-live-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = LiveConfig::new(&dir);
        cfg.interval = LIVE_INTERVAL;
        set_force_config(Some(cfg));
        dir
    });
    let tracing = cell.tracing;
    let kvs_per_rank = kvs_per_rank * cell.kvs_mult;
    let epoch = Instant::now();
    let out = run_world(ranks, move |comm| {
        if tracing != Tracing::Off {
            let mut rec = Recorder::with_epoch(comm.rank(), RING_CAP, epoch);
            rec.set_flow_enabled(tracing == Tracing::FullFlow);
            mimir_obs::install(rec);
        }
        let pool = MemPool::unlimited("bench", 1 << 20);
        let meta = KvMeta::fixed(8, 8);
        let sink = KvContainer::new(&pool, meta);
        let mut sh = Shuffler::with_options(
            comm,
            &pool,
            meta,
            comm_buf,
            sink,
            Partitioner::hash(),
            ShuffleMode::Overlapped,
        )
        .unwrap();
        let mut rng = rank_rng(0x7ACE, sh.rank());
        let t0 = Instant::now();
        for _ in 0..kvs_per_rank {
            let key = rng.next_u64().to_le_bytes();
            sh.emit(&key, &[0u8; 8]).unwrap();
        }
        let _ = sh.finish().unwrap();
        let elapsed = t0.elapsed().as_secs_f64();
        let (events, dropped) = match mimir_obs::take() {
            Some(rec) => (rec.len() as u64, rec.dropped()),
            None => (0, 0),
        };
        (elapsed, events, dropped)
    });
    if let Some(dir) = live_dir {
        set_force_config(None);
        let _ = std::fs::remove_dir_all(&dir);
    }
    let slowest = out.iter().map(|(t, _, _)| *t).fold(0.0, f64::max);
    let total_bytes = (ranks * kvs_per_rank) as u64 * KV_BYTES;
    Measure {
        mb_per_s: total_bytes as f64 / (1 << 20) as f64 / slowest,
        events: out.iter().map(|(_, e, _)| e).sum(),
        events_dropped: out.iter().map(|(_, _, d)| d).sum(),
    }
}

fn best_of(
    ranks: usize,
    comm_buf: usize,
    kvs_per_rank: usize,
    cell: Cell,
    repeats: usize,
) -> Measure {
    (0..repeats)
        .map(|_| run_cell(ranks, comm_buf, kvs_per_rank, cell))
        .max_by(|a, b| a.mb_per_s.total_cmp(&b.mb_per_s))
        .unwrap()
}

/// Measures the live-off/live-on pair as interleaved A/B repeats and
/// returns (best live-off, best live-on, overhead estimate).
///
/// A sequential best-of-each comparison is hostage to machine drift:
/// on a shared (or single-CPU) box the background load changes between
/// the off block and the on block, and a 2% gate drowns in 10% swings.
/// Interleaving the runs spreads both configurations across the same
/// conditions, and the overhead estimate compares best against best:
/// scheduler noise only ever *slows* a run, so with enough repeats the
/// best run of each side converges on that side's clean-machine
/// throughput and their ratio isolates the plane's true cost.
fn measure_live_pair(
    ranks: usize,
    comm_buf: usize,
    kvs_per_rank: usize,
    pairs: usize,
) -> (Measure, Measure, f64) {
    let (off_cell, on_cell) = (CELLS[3], CELLS[4]);
    // Discarded warmup: the first world of a process pays one-time costs
    // (thread spawn paths, allocator growth) that would land on the
    // first pair's off side and read as plane overhead.
    let _ = run_cell(ranks, comm_buf, kvs_per_rank, off_cell);
    let mut offs = Vec::with_capacity(pairs);
    let mut ons = Vec::with_capacity(pairs);
    for _ in 0..pairs {
        offs.push(run_cell(ranks, comm_buf, kvs_per_rank, off_cell));
        ons.push(run_cell(ranks, comm_buf, kvs_per_rank, on_cell));
    }
    let best = |v: Vec<Measure>| {
        v.into_iter()
            .max_by(|a, b| a.mb_per_s.total_cmp(&b.mb_per_s))
            .unwrap()
    };
    let (best_off, best_on) = (best(offs), best(ons));
    let overhead = (best_off.mb_per_s / best_on.mb_per_s - 1.0).max(0.0);
    (best_off, best_on, overhead)
}

fn main() {
    let args = HarnessArgs::parse();
    // Heavy-8 preset: the cell where the exchange engine (and therefore
    // per-message tracing) is busiest. --quick shrinks it for CI.
    let (ranks, comm_buf, repeats) = if args.quick {
        (2usize, 64 << 10, 3)
    } else {
        (8usize, 256 << 10, 5)
    };
    let kvs_per_rank = 8 * comm_buf / KV_BYTES as usize;

    println!(
        "{:<6}{:>8}{:>12}{:>12}{:>12}{:>12}{:>10}",
        "ranks", "buf", "config", "MB/s", "overhead", "events", "dropped"
    );
    let trace_measures: Vec<Measure> = CELLS[..3]
        .iter()
        .map(|&c| best_of(ranks, comm_buf, kvs_per_rank, c, repeats))
        .collect();
    // The paired comparison: same recorder state (off), plane disarmed
    // vs armed — isolates the telemetry plane's cost from trace cost.
    let (live_off_m, live_on_m, telemetry_overhead) =
        measure_live_pair(ranks, comm_buf, kvs_per_rank, repeats + 4);
    let off = trace_measures[0].mb_per_s;

    let mut measures = trace_measures;
    measures.push(live_off_m);
    measures.push(live_on_m);
    let mut rows = Vec::new();
    let mut full_flow_overhead = 0.0;
    for (cell, m) in CELLS.iter().zip(&measures) {
        // Overhead of this configuration vs its baseline, as a fraction
        // (0.03 = 3% of baseline throughput lost). The live pair is
        // compared within itself (median of adjacent-run ratios) — it
        // runs a larger workload, so `off` is not its baseline.
        let overhead = match cell.name {
            "live-off" => 0.0,
            "live-on" => telemetry_overhead,
            _ => (off / m.mb_per_s - 1.0).max(0.0),
        };
        if cell.name == "full-flow" {
            full_flow_overhead = overhead;
        }
        println!(
            "{:<6}{:>8}{:>12}{:>12.1}{:>11.1}%{:>12}{:>10}",
            ranks,
            fmt_size(comm_buf),
            cell.name,
            m.mb_per_s,
            overhead * 100.0,
            m.events,
            m.events_dropped
        );
        rows.push(Json::obj(vec![
            ("tracing", Json::Str(cell.name.into())),
            (
                "kvs_per_rank",
                Json::Num((kvs_per_rank * cell.kvs_mult) as f64),
            ),
            ("mb_per_s", Json::Num(m.mb_per_s)),
            ("overhead", Json::Num(overhead)),
            ("events", Json::Num(m.events as f64)),
            ("events_dropped", Json::Num(m.events_dropped as f64)),
        ]));
    }

    let dropped: u64 = measures.iter().map(|m| m.events_dropped).sum();
    let trace_regression = full_flow_overhead >= 0.05;
    let live_regression = telemetry_overhead >= 0.02;
    let doc = Json::obj(vec![
        ("bench", Json::Str("trace_overhead".into())),
        ("quick", Json::Bool(args.quick)),
        ("ranks", Json::Num(ranks as f64)),
        ("comm_buf", Json::Num(comm_buf as f64)),
        ("kvs_per_rank", Json::Num(kvs_per_rank as f64)),
        ("kv_meta", Json::Str("fixed(8,8)".into())),
        ("full_flow_overhead", Json::Num(full_flow_overhead)),
        (
            "live_interval_ms",
            Json::Num(LIVE_INTERVAL.as_millis() as f64),
        ),
        ("telemetry_overhead", Json::Num(telemetry_overhead)),
        (
            "regression",
            Json::Bool(trace_regression || live_regression),
        ),
        ("cells", Json::Arr(rows)),
    ]);
    let path = args
        .json
        .unwrap_or_else(|| "BENCH_trace_overhead.json".into());
    std::fs::write(&path, doc.to_pretty()).expect("writing bench JSON");
    println!("wrote {path}");
    println!(
        "full-flow tracing overhead vs untraced: {:.1}%",
        full_flow_overhead * 100.0
    );
    println!(
        "live telemetry plane overhead ({}ms interval): {:.1}%",
        LIVE_INTERVAL.as_millis(),
        telemetry_overhead * 100.0
    );
    if dropped > 0 {
        println!(
            "note: {dropped} events dropped — the ring overflowed, raise \
             RING_CAP for a fair comparison"
        );
    }
    if trace_regression {
        println!("REGRESSION: full-flow tracing costs >=5% of untraced throughput");
    }
    if live_regression {
        println!("REGRESSION: live telemetry plane costs >=2% of untraced throughput");
    }
    if trace_regression || live_regression {
        std::process::exit(1);
    }
}
