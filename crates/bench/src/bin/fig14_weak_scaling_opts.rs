//! **Figure 14** — "Weak scalability of different optimizations on
//! Mira": Mimir's optimization stack under weak scaling, per-node dataset
//! fixed at the largest size the baseline can hold. Paper shapes: the
//! baseline runs out of memory after 2 nodes on WC/OC (load imbalance
//! concentrates intermediate data); +hint carries WC (Uniform) and BFS to
//! the full machine; the skewed WC (Wikipedia) and OC need partial
//! reduction and finally compression to keep scaling.
//!
//! Thread-count note (EXPERIMENTS.md): the paper scales to 1024 BG/Q
//! nodes (16 384 ranks); this harness thins the platform to 2 ranks/node
//! and scales node counts to 128 (256 rank threads) by default, keeping
//! the per-rank data share — and therefore the imbalance arithmetic —
//! identical.

use mimir_apps::bfs::BfsOptions;
use mimir_apps::octree::OcOptions;
use mimir_apps::wordcount::WcOptions;
use mimir_bench::runner::{run_bfs_mimir, run_oc_mimir, run_wc_mimir, WcDataset};
use mimir_bench::sweeps::scaling_figure;
use mimir_bench::{print_figure, write_json, HarnessArgs, Platform};

fn main() {
    let args = HarnessArgs::parse();
    let max_nodes = args.max_nodes.unwrap_or(if args.quick { 8 } else { 64 });
    let node_counts: Vec<usize> = [2usize, 4, 8, 16, 32, 64, 128]
        .into_iter()
        .filter(|&n| n <= max_nodes)
        .collect();

    let full = Platform::mira_mini();
    let p = full.thin(2);
    // Paper per-node workloads are "the maximum dataset sizes that the
    // Mimir baseline implementation can process on each node" (2 GB,
    // 2^27 points, 2^22 vertices on 16 ranks). Scaled ÷1024 and expressed
    // per rank, then nudged to sit at the scaled baseline's actual
    // in-memory maximum so the same brink the paper starts from is
    // reproduced.
    let wc_bytes_per_rank = 160 << 10;
    let oc_points_per_rank = 1usize << 14;
    let bfs_verts_per_rank = (1usize << 12) / full.ranks_per_node;

    let wc_stack = [
        ("Mimir", WcOptions::default()),
        (
            "Mimir (hint)",
            WcOptions {
                hint: true,
                ..WcOptions::default()
            },
        ),
        (
            "Mimir (hint;pr)",
            WcOptions {
                hint: true,
                partial_reduce: true,
                ..WcOptions::default()
            },
        ),
        ("Mimir (hint;pr;cps)", WcOptions::all()),
    ];
    let oc_stack = [
        ("Mimir", OcOptions::default()),
        (
            "Mimir (hint)",
            OcOptions {
                hint: true,
                ..OcOptions::default()
            },
        ),
        (
            "Mimir (hint;pr)",
            OcOptions {
                hint: true,
                partial_reduce: true,
                ..OcOptions::default()
            },
        ),
        ("Mimir (hint;pr;cps)", OcOptions::all()),
    ];
    let bfs_stack = [
        ("Mimir", BfsOptions::default()),
        (
            "Mimir (hint)",
            BfsOptions {
                hint: true,
                compress: false,
            },
        ),
        ("Mimir (hint;cps)", BfsOptions::all()),
    ];

    let mut figs = Vec::new();
    for (suffix, dataset) in [
        ("uniform", WcDataset::Uniform),
        ("wikipedia", WcDataset::Wikipedia),
    ] {
        let labels: Vec<&str> = wc_stack.iter().map(|(l, _)| *l).collect();
        figs.push(scaling_figure(
            &format!("fig14-wc-{suffix}"),
            &format!("Weak scaling of optimizations, WC ({suffix}), Mira"),
            "nodes",
            &node_counts,
            &labels,
            |si, nodes| {
                run_wc_mimir(
                    &p,
                    nodes,
                    dataset,
                    wc_bytes_per_rank * p.ranks(nodes),
                    wc_stack[si].1,
                )
            },
        ));
    }
    {
        let labels: Vec<&str> = oc_stack.iter().map(|(l, _)| *l).collect();
        figs.push(scaling_figure(
            "fig14-oc",
            "Weak scaling of optimizations, OC, Mira",
            "nodes",
            &node_counts,
            &labels,
            |si, nodes| {
                run_oc_mimir(
                    &p,
                    nodes,
                    oc_points_per_rank * p.ranks(nodes),
                    oc_stack[si].1,
                )
            },
        ));
    }
    {
        let labels: Vec<&str> = bfs_stack.iter().map(|(l, _)| *l).collect();
        figs.push(scaling_figure(
            "fig14-bfs",
            "Weak scaling of optimizations, BFS, Mira",
            "nodes",
            &node_counts,
            &labels,
            |si, nodes| {
                let verts = bfs_verts_per_rank * p.ranks(nodes);
                let scale = usize::BITS - 1 - verts.leading_zeros();
                run_bfs_mimir(&p, nodes, scale, bfs_stack[si].1)
            },
        ));
    }

    for fig in &figs {
        print_figure(fig);
    }
    if let Some(path) = &args.json {
        for fig in &figs {
            write_json(&format!("{path}.{}.json", fig.id), fig);
        }
    }
}
