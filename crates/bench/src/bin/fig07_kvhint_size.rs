//! **Figure 7** — "KV size of WordCount with Wikipedia dataset": total
//! intermediate KV bytes with and without the KV-hint, at three dataset
//! sizes. The paper measures a ~26 % saving (the 8-byte header becomes a
//! 1-byte NUL terminator next to a word of mean length ~10).
//!
//! Scaled sweep: 8 MB / 16 MB / 32 MB on comet-mini.

use mimir_apps::wordcount::WcOptions;
use mimir_bench::report::{DataPoint, Figure, Series};
use mimir_bench::runner::{run_wc_mimir, WcDataset};
use mimir_bench::{fmt_size, print_figure, write_json, HarnessArgs, Platform};

fn main() {
    let args = HarnessArgs::parse();
    let p = Platform::comet_mini();
    let sizes: &[usize] = if args.quick {
        &[1 << 20, 2 << 20]
    } else {
        &[8 << 20, 16 << 20, 32 << 20]
    };

    let mut series = Vec::new();
    for (label, hint) in [("without KV-hint", false), ("with KV-hint", true)] {
        let mut points = Vec::new();
        for &size in sizes {
            let opts = WcOptions {
                hint,
                // pr keeps the largest size in memory; it does not change
                // the emitted-KV-bytes metric this figure plots.
                partial_reduce: true,
                compress: false,
            };
            let outcome = run_wc_mimir(&p, 1, WcDataset::Wikipedia, size, opts);
            eprintln!(
                "  fig07 {label} {}: {:?} kv={} MiB",
                fmt_size(size),
                outcome.status,
                outcome.kv_bytes >> 20
            );
            points.push(DataPoint {
                x: fmt_size(size),
                outcome,
            });
        }
        series.push(Series {
            label: label.into(),
            points,
        });
    }
    let fig = Figure {
        id: "fig07".into(),
        title: "KV bytes of WC (Wikipedia) with/without KV-hint (paper Fig. 7)".into(),
        xlabel: "dataset".into(),
        series,
    };

    println!("\n=== fig07 — KV size (MiB) ===");
    println!(
        "{:<10}{:>20}{:>20}{:>12}",
        "dataset", "without hint", "with hint", "saving"
    );
    for i in 0..fig.series[0].points.len() {
        let plain = fig.series[0].points[i].outcome.kv_bytes;
        let hinted = fig.series[1].points[i].outcome.kv_bytes;
        let saving = 100.0 * (1.0 - hinted as f64 / plain as f64);
        println!(
            "{:<10}{:>20.2}{:>20.2}{:>11.1}%",
            fig.series[0].points[i].x,
            plain as f64 / (1 << 20) as f64,
            hinted as f64 / (1 << 20) as f64,
            saving
        );
    }
    println!("(paper reports ~26% saving at 8G/16G/32G)");
    print_figure(&fig);
    if let Some(path) = &args.json {
        write_json(path, &fig);
    }
}
