//! **Transport ablation** — the heavy-8 shuffle cell (8 ranks, 256 KiB
//! comm buffers, 8 send-buffers' worth of fixed(8,8) KVs per rank) run
//! once per transport backend, so the cost of the `Transport` seam and
//! of crossing real process boundaries is pinned in one place:
//!
//! * `inproc` — rank threads over the channel matrix, the PR 8 data
//!   path now behind the trait. The gate is that the seam is free: the
//!   measured throughput must stay within 5% of the pre-seam baseline
//!   recorded in [`BASELINE_PR8_MB_PER_S`] (checked on full runs on the
//!   recording machine; `--quick` checks completion + output equality,
//!   since CI hardware differs from the baseline machine).
//! * `uds` — forked rank processes over Unix-domain sockets with
//!   length-prefixed frames and per-peer writer threads. The gate is
//!   completion with the same per-rank KV checksums as inproc: the
//!   partitioner sees the same world either way, so every KV must land
//!   on the same rank with identical content.
//!
//! Writes `BENCH_transport.json` and prints a `REGRESSION` marker
//! (nonzero exit) when a gate fails.

use std::time::Instant;

use mimir_bench::{fmt_size, HarnessArgs};
use mimir_core::{Emitter, KvContainer, KvMeta, Partitioner, ShuffleMode, Shuffler};
use mimir_datagen::rank_rng;
use mimir_mem::MemPool;
use mimir_mpi::{run_world_on, CommStats, TransportKind};
use mimir_obs::Json;

const KV_BYTES: u64 = 16;

/// Heavy-8 inproc throughput measured at the tip of PR 8, immediately
/// before the data path moved behind the `Transport` trait (same
/// machine, best of 5). Full runs gate the seam's cost against it.
const BASELINE_PR8_MB_PER_S: f64 = 369.6;

/// Full runs must stay within this fraction of the pre-seam baseline.
const REGRESSION_SLACK: f64 = 0.05;

/// One backend's best-of-repeats result for the heavy-8 cell.
struct Measure {
    mb_per_s: f64,
    rounds: u64,
    send_allocs: u64,
    bytes_copied: u64,
    comm: CommStats,
    /// Per-rank checksums of the delivered KV multiset, rank-indexed.
    checksums: Vec<u64>,
}

fn shuffle_body(
    comm: &mut mimir_mpi::Comm,
    comm_buf: usize,
    n: usize,
) -> (f64, u64, CommStats, u64) {
    let pool = MemPool::unlimited("bench", 1 << 20);
    let meta = KvMeta::fixed(8, 8);
    let sink = KvContainer::new(&pool, meta);
    let mut sh = Shuffler::with_options(
        comm,
        &pool,
        meta,
        comm_buf,
        sink,
        Partitioner::hash(),
        ShuffleMode::ZeroCopy,
    )
    .unwrap();
    let mut rng = rank_rng(0x5FFE, sh.rank());
    let t0 = Instant::now();
    for _ in 0..n {
        let key = rng.next_u64().to_le_bytes();
        sh.emit(&key, &[0u8; 8]).unwrap();
    }
    let (sink, stats) = sh.finish().unwrap();
    let elapsed = t0.elapsed().as_secs_f64();
    // Order-independent content checksum of everything this rank
    // received: sums a mix of each KV's key bytes.
    let mut checksum = 0u64;
    for (k, _v) in sink.iter() {
        let mut x = u64::from_le_bytes(k.try_into().expect("8-byte key"));
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
        checksum = checksum.wrapping_add(x);
    }
    (elapsed, stats.rounds, comm.stats(), checksum)
}

fn run_backend(
    kind: TransportKind,
    ranks: usize,
    comm_buf: usize,
    n: usize,
    repeats: usize,
) -> Measure {
    let mut best: Option<Measure> = None;
    for _ in 0..repeats {
        let out = run_world_on(kind, ranks, move |comm| shuffle_body(comm, comm_buf, n));
        let slowest = out.iter().map(|(t, _, _, _)| *t).fold(0.0, f64::max);
        let total_bytes = (ranks * n) as u64 * KV_BYTES;
        let comm = out
            .iter()
            .fold(CommStats::default(), |a, (_, _, c, _)| a.merge(c));
        let m = Measure {
            mb_per_s: total_bytes as f64 / (1 << 20) as f64 / slowest,
            rounds: out[0].1,
            send_allocs: comm.send_allocs,
            bytes_copied: comm.bytes_copied,
            comm,
            checksums: out.iter().map(|(_, _, _, ck)| *ck).collect(),
        };
        if best.as_ref().is_none_or(|b| m.mb_per_s > b.mb_per_s) {
            best = Some(m);
        }
    }
    best.unwrap()
}

fn main() {
    let args = HarnessArgs::parse();
    let (ranks, comm_buf, repeats) = if args.quick {
        (4usize, 64usize << 10, 2usize)
    } else {
        (8, 256 << 10, 5)
    };
    let n = 8 * comm_buf / KV_BYTES as usize;

    let inproc = run_backend(TransportKind::Inproc, ranks, comm_buf, n, repeats);
    println!(
        "inproc  {ranks} ranks {:>6} buf  {:>10.1} MB/s  rounds {}",
        fmt_size(comm_buf),
        inproc.mb_per_s,
        inproc.rounds
    );
    let uds = run_backend(TransportKind::Uds, ranks, comm_buf, n, repeats);
    println!(
        "uds     {ranks} ranks {:>6} buf  {:>10.1} MB/s  rounds {}  \
         wire {} in {} frames",
        fmt_size(comm_buf),
        uds.mb_per_s,
        uds.rounds,
        fmt_size(uds.comm.wire_bytes_sent as usize),
        uds.comm.wire_frames_sent,
    );

    let mut failed = false;
    // Content gate, both modes: the backends must deliver the identical
    // per-rank KV multiset — same world size, same partitioner, so even
    // rank attribution must agree.
    if inproc.checksums != uds.checksums {
        println!(
            "REGRESSION: per-rank checksums diverge between backends \
             (inproc {:x?}, uds {:x?})",
            inproc.checksums, uds.checksums
        );
        failed = true;
    }
    // Seam-cost gate, full runs only: quick CI boxes are not the
    // baseline machine, so the 5% bound only means something on the
    // hardware that recorded BASELINE_PR8_MB_PER_S.
    if !args.quick && inproc.mb_per_s < BASELINE_PR8_MB_PER_S * (1.0 - REGRESSION_SLACK) {
        println!(
            "REGRESSION: inproc {:.1} MB/s is more than {:.0}% below the \
             pre-seam baseline {BASELINE_PR8_MB_PER_S} MB/s",
            inproc.mb_per_s,
            REGRESSION_SLACK * 100.0
        );
        failed = true;
    }

    let doc = Json::obj(vec![
        ("bench", Json::Str("transport_ablation".into())),
        ("quick", Json::Bool(args.quick)),
        ("ranks", Json::Num(ranks as f64)),
        ("comm_buf", Json::Num(comm_buf as f64)),
        ("baseline_pr8_mb_per_s", Json::Num(BASELINE_PR8_MB_PER_S)),
        ("inproc_mb_per_s", Json::Num(inproc.mb_per_s)),
        ("inproc_send_allocs", Json::Num(inproc.send_allocs as f64)),
        ("inproc_bytes_copied", Json::Num(inproc.bytes_copied as f64)),
        ("uds_mb_per_s", Json::Num(uds.mb_per_s)),
        ("uds_send_allocs", Json::Num(uds.send_allocs as f64)),
        ("uds_bytes_copied", Json::Num(uds.bytes_copied as f64)),
        (
            "uds_wire_bytes_sent",
            Json::Num(uds.comm.wire_bytes_sent as f64),
        ),
        (
            "uds_wire_frames_sent",
            Json::Num(uds.comm.wire_frames_sent as f64),
        ),
        (
            "uds_wire_recv_allocs",
            Json::Num(uds.comm.wire_recv_allocs as f64),
        ),
        (
            "uds_max_handshake_ns",
            Json::Num(uds.comm.handshake_ns as f64),
        ),
        (
            "checksums_match",
            Json::Bool(inproc.checksums == uds.checksums),
        ),
    ]);
    let path = args.json.unwrap_or_else(|| "BENCH_transport.json".into());
    std::fs::write(&path, doc.to_pretty()).expect("writing bench JSON");
    println!("wrote {path}");
    if failed {
        println!("REGRESSION: the transport seam failed an acceptance gate");
        std::process::exit(1);
    }
}
