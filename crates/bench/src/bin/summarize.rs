//! Summarizes figure JSON records (written by the `fig*` binaries with
//! `--json`) into the quantities EXPERIMENTS.md reports: each series'
//! largest in-memory configuration, its peak memory at the first common
//! in-memory point, and spill/OOM boundaries.
//!
//! Usage: `cargo run --release -p mimir-bench --bin summarize -- results/*.json`

use mimir_bench::{Figure, Status};

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: summarize <figure.json>...");
        std::process::exit(2);
    }
    for path in paths {
        let data = match std::fs::read_to_string(&path) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("skipping {path}: {e}");
                continue;
            }
        };
        let fig = match mimir_obs::Json::parse(&data)
            .map_err(|e| e.to_string())
            .and_then(|v| Figure::from_json(&v))
        {
            Ok(f) => f,
            Err(e) => {
                eprintln!("skipping {path}: not a figure record ({e})");
                continue;
            }
        };
        summarize(&fig);
    }
}

fn summarize(fig: &Figure) {
    println!("\n=== {} — {} ===", fig.id, fig.title);
    println!(
        "{:<22}{:>16}{:>14}{:>16}{:>14}",
        "series", "max in-memory", "spills from", "OOM from", "peak@first"
    );
    for s in &fig.series {
        let mut max_in_mem = "-".to_string();
        let mut first_spill = "-".to_string();
        let mut first_oom = "-".to_string();
        for p in &s.points {
            match p.outcome.status {
                Status::InMemory => max_in_mem = p.x.clone(),
                Status::Spilled if first_spill == "-" => first_spill = p.x.clone(),
                Status::Oom if first_oom == "-" => first_oom = p.x.clone(),
                _ => {}
            }
        }
        let peak_first = s
            .points
            .first()
            .filter(|p| p.outcome.status != Status::Oom)
            .map(|p| {
                format!(
                    "{:.2} MiB",
                    p.outcome.peak_node_bytes as f64 / (1 << 20) as f64
                )
            })
            .unwrap_or_else(|| "-".into());
        println!(
            "{:<22}{:>16}{:>14}{:>16}{:>14}",
            s.label, max_in_mem, first_spill, first_oom, peak_first
        );
    }

    // Degradation factor for single-series figures (Figure 1 style).
    if fig.series.len() == 1 {
        let pts = &fig.series[0].points;
        let best_in_mem = pts
            .iter()
            .filter(|p| p.outcome.status == Status::InMemory)
            .map(|p| p.outcome.time_s)
            .fold(f64::NAN, f64::max);
        let worst = pts
            .iter()
            .filter(|p| p.outcome.status == Status::Spilled)
            .map(|p| p.outcome.time_s)
            .fold(f64::NAN, f64::max);
        if best_in_mem.is_finite() && worst.is_finite() {
            println!(
                "degradation: {:.0}x ({best_in_mem:.3}s -> {worst:.1}s)",
                worst / best_in_mem
            );
        }
    }
}
