//! **Grouping ablation** — throughput of the convert phase and the fold
//! table under the two [`GroupingMode`] engines, isolating grouping from
//! shuffle and reduce costs.
//!
//! `Legacy` groups through `HashMap<Vec<u8>, u32>`: one heap-allocated
//! key copy per unique key, a hash + map lookup in pass 1 *and again* in
//! pass 2. `Arena` groups through the shared [`GroupIndex`]: keys hash
//! exactly once (pass 1), bytes intern into pool-page arenas, and pass 2
//! replays a per-KV group-id array with no hashing or lookups at all.
//!
//! Cells cover the shapes that stress different parts of the engine:
//! Zipf-skewed wordcount (the paper's WC workload — probe-hit dominated),
//! uniform unique-heavy fixed keys (insert dominated), duplicate-heavy
//! fixed keys (pure probe hits), and the combiner fold path.
//!
//! Writes `BENCH_convert.json`; `--quick` runs shrunken cells as a CI
//! smoke test. The acceptance bar is ≥1.25× on the skewed wordcount
//! cell; a `REGRESSION` marker (nonzero exit) fires if the arena engine
//! loses to legacy anywhere.

use std::time::Instant;

use mimir_bench::HarnessArgs;
use mimir_core::{
    convert_with, CombineFn, CombinerTable, Emitter, GroupStats, GroupingMode, KvContainer, KvMeta,
    StreamingCombiner,
};
use mimir_datagen::{rank_rng, WikipediaWords};
use mimir_mem::MemPool;
use mimir_obs::Json;

const PAGE: usize = 1 << 20;

/// The KV streams under test. Each builds the same stream for both
/// engines (same seed), so the comparison is exact.
#[derive(Clone, Copy)]
enum Workload {
    /// Zipf(1.0) words over a 50 Ki vocabulary, CStr keys, u64 counts —
    /// the paper's wordcount shape and the acceptance cell.
    SkewedWords { corpus_bytes: usize },
    /// Nearly-unique 8-byte keys: every KV inserts a fresh group.
    UniformUnique { kvs: usize },
    /// 8-byte keys from a tiny vocabulary: every KV after warm-up is a
    /// probe hit.
    DupHeavy { kvs: usize, vocab: u64 },
}

impl Workload {
    fn name(self) -> &'static str {
        match self {
            Workload::SkewedWords { .. } => "skewed-words",
            Workload::UniformUnique { .. } => "uniform-unique",
            Workload::DupHeavy { .. } => "dup-heavy",
        }
    }

    fn meta(self) -> KvMeta {
        match self {
            Workload::SkewedWords { .. } => KvMeta::cstr_key_u64_val(),
            _ => KvMeta::fixed(8, 8),
        }
    }

    /// Materializes the KV stream once; repeats re-push it into fresh
    /// containers so generation cost stays out of the timed region.
    fn keys(self) -> Vec<Vec<u8>> {
        match self {
            Workload::SkewedWords { corpus_bytes } => {
                let corpus = WikipediaWords::new(0xC04F).generate(0, 1, corpus_bytes);
                corpus
                    .split(|&b| b == b' ' || b == b'\n')
                    .filter(|w| !w.is_empty())
                    .map(<[u8]>::to_vec)
                    .collect()
            }
            Workload::UniformUnique { kvs } => {
                let mut rng = rank_rng(0x0F1CE, 0);
                (0..kvs)
                    .map(|_| rng.next_u64().to_le_bytes().to_vec())
                    .collect()
            }
            Workload::DupHeavy { kvs, vocab } => {
                let mut rng = rank_rng(0xD0B5, 0);
                (0..kvs)
                    .map(|_| (rng.next_u64() % vocab).to_le_bytes().to_vec())
                    .collect()
            }
        }
    }
}

struct Measure {
    mkvs_per_s: f64,
    stats: GroupStats,
    kvs: usize,
}

/// Best-of-repeats convert throughput for one workload × engine.
fn run_convert(keys: &[Vec<u8>], meta: KvMeta, mode: GroupingMode, repeats: usize) -> Measure {
    let pool = MemPool::unlimited("bench", PAGE);
    let mut best: Option<Measure> = None;
    for _ in 0..repeats {
        let mut kvc = KvContainer::new(&pool, meta);
        for k in keys {
            kvc.push(k, &1u64.to_le_bytes()).unwrap();
        }
        let t0 = Instant::now();
        let (kmvc, stats) = convert_with(kvc, &pool, mode).unwrap();
        let elapsed = t0.elapsed().as_secs_f64();
        drop(kmvc);
        let m = Measure {
            mkvs_per_s: keys.len() as f64 / 1e6 / elapsed,
            stats,
            kvs: keys.len(),
        };
        if best.as_ref().is_none_or(|b| m.mkvs_per_s > b.mkvs_per_s) {
            best = Some(m);
        }
    }
    best.unwrap()
}

/// Best-of-repeats streaming-combiner throughput: the real bounded
/// pipeline — KVs fold into the table, the table flushes into a
/// partitioning sink whenever it exceeds `compress_flush_bytes`-style
/// budget. The sink partitions the way the shuffler does: legacy flushes
/// re-hash every key ([`partition_of`]); arena flushes reuse the stored
/// hash ([`partition_of_hashed`] via `emit_hashed`).
fn run_fold(keys: &[Vec<u8>], meta: KvMeta, mode: GroupingMode, repeats: usize) -> Measure {
    /// Stands in for the shuffler's partition step (16 destinations).
    struct PartitionSink(u64);
    impl Emitter for PartitionSink {
        fn emit(&mut self, k: &[u8], _v: &[u8]) -> mimir_core::Result<()> {
            self.0 += mimir_core::partition_of(k, 16) as u64;
            Ok(())
        }
        fn emit_hashed(&mut self, _k: &[u8], _v: &[u8], h: u64) -> mimir_core::Result<()> {
            self.0 += mimir_core::partition_of_hashed(h, 16) as u64;
            Ok(())
        }
    }
    const FLUSH_BYTES: usize = 1 << 20;
    let pool = MemPool::unlimited("bench", PAGE);
    let mut best: Option<Measure> = None;
    for _ in 0..repeats {
        let sum: CombineFn = Box::new(|_k, a, b, out| {
            let s = u64::from_le_bytes(a.try_into().unwrap())
                + u64::from_le_bytes(b.try_into().unwrap());
            out.extend_from_slice(&s.to_le_bytes());
        });
        let table = CombinerTable::with_mode(&pool, meta, sum, mode).unwrap();
        let mut sink = PartitionSink(0);
        let mut sc = StreamingCombiner::new(table, &mut sink, FLUSH_BYTES);
        let t0 = Instant::now();
        for k in keys {
            sc.emit(k, &1u64.to_le_bytes()).unwrap();
        }
        let (_flushes, stats) = sc.finish().unwrap();
        let elapsed = t0.elapsed().as_secs_f64();
        std::hint::black_box(sink.0);
        let m = Measure {
            mkvs_per_s: keys.len() as f64 / 1e6 / elapsed,
            stats,
            kvs: keys.len(),
        };
        if best.as_ref().is_none_or(|b| m.mkvs_per_s > b.mkvs_per_s) {
            best = Some(m);
        }
    }
    best.unwrap()
}

fn main() {
    let args = HarnessArgs::parse();
    let scale = if args.quick { 20 } else { 1 };
    let repeats = if args.quick { 2 } else { 5 };
    let convert_cells = [
        Workload::SkewedWords {
            corpus_bytes: 12 << 20,
        },
        Workload::UniformUnique { kvs: 1_000_000 },
        Workload::DupHeavy {
            kvs: 1_000_000,
            vocab: 512,
        },
    ];

    println!(
        "{:<10}{:>16}{:>10}{:>12}{:>10}{:>10}{:>10}{:>12}",
        "phase", "cell", "mode", "MKV/s", "speedup", "groups", "rehashes", "avg_probe"
    );

    let mut rows = Vec::new();
    let mut regression = false;
    let mut skewed_speedup: Option<f64> = None;
    let mut report = |phase: &str, cell: Workload, legacy: Measure, arena: Measure| {
        let speedup = arena.mkvs_per_s / legacy.mkvs_per_s;
        if speedup < 1.0 {
            regression = true;
        }
        if phase == "convert" && matches!(cell, Workload::SkewedWords { .. }) {
            skewed_speedup = Some(speedup);
        }
        for (mode, m) in [("legacy", &legacy), ("arena", &arena)] {
            println!(
                "{:<10}{:>16}{:>10}{:>12.2}{:>9.2}x{:>10}{:>10}{:>12.3}",
                phase,
                cell.name(),
                mode,
                m.mkvs_per_s,
                if mode == "legacy" { 1.0 } else { speedup },
                m.stats.groups,
                m.stats.rehashes,
                m.stats.avg_probe(),
            );
            rows.push(Json::obj(vec![
                ("phase", Json::Str(phase.into())),
                ("cell", Json::Str(cell.name().into())),
                ("mode", Json::Str(mode.into())),
                ("kvs", Json::Num(m.kvs as f64)),
                ("mkvs_per_s", Json::Num(m.mkvs_per_s)),
                (
                    "speedup_vs_legacy",
                    Json::Num(if mode == "legacy" { 1.0 } else { speedup }),
                ),
                ("groups", Json::Num(m.stats.groups as f64)),
                ("rehashes", Json::Num(m.stats.rehashes as f64)),
                ("avg_probe", Json::Num(m.stats.avg_probe())),
                ("max_probe", Json::Num(m.stats.max_probe as f64)),
                (
                    "interned_kb",
                    Json::Num(m.stats.interned_bytes as f64 / 1024.0),
                ),
                ("load_factor", Json::Num(m.stats.load_factor())),
            ]));
        }
    };

    for cell in convert_cells {
        let scaled = match cell {
            Workload::SkewedWords { corpus_bytes } => Workload::SkewedWords {
                corpus_bytes: corpus_bytes / scale,
            },
            Workload::UniformUnique { kvs } => Workload::UniformUnique { kvs: kvs / scale },
            Workload::DupHeavy { kvs, vocab } => Workload::DupHeavy {
                kvs: kvs / scale,
                vocab,
            },
        };
        let keys = scaled.keys();
        let legacy = run_convert(&keys, scaled.meta(), GroupingMode::Legacy, repeats);
        let arena = run_convert(&keys, scaled.meta(), GroupingMode::Arena, repeats);
        report("convert", scaled, legacy, arena);
    }

    // The fold path (combiner / partial reduction) on the skewed stream.
    let fold_cell = Workload::SkewedWords {
        corpus_bytes: (12 << 20) / scale,
    };
    let keys = fold_cell.keys();
    let legacy = run_fold(&keys, fold_cell.meta(), GroupingMode::Legacy, repeats);
    let arena = run_fold(&keys, fold_cell.meta(), GroupingMode::Arena, repeats);
    report("fold", fold_cell, legacy, arena);

    let doc = Json::obj(vec![
        ("bench", Json::Str("convert_grouping".into())),
        ("quick", Json::Bool(args.quick)),
        (
            "skewed_speedup",
            skewed_speedup.map_or(Json::Null, Json::Num),
        ),
        ("regression", Json::Bool(regression)),
        ("cells", Json::Arr(rows)),
    ]);
    let path = args.json.unwrap_or_else(|| "BENCH_convert.json".into());
    std::fs::write(&path, doc.to_pretty()).expect("writing bench JSON");
    println!("wrote {path}");
    if let Some(s) = skewed_speedup {
        println!("skewed wordcount convert speedup (arena vs legacy): {s:.2}x");
    }
    if regression {
        println!("REGRESSION: arena grouping slower than legacy baseline");
        std::process::exit(1);
    }
}
