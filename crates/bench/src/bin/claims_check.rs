//! Verifies the paper's headline quantitative claims against the
//! reproduction, printing PASS/FAIL per claim. Complements the per-figure
//! harnesses: those regenerate the plots, this distills them to the
//! sentences the paper's abstract and Section IV make.
//!
//! Run: `cargo run --release -p mimir-bench --bin claims_check`

use mimir_apps::wordcount::WcOptions;
use mimir_bench::runner::{run_fig1_point, run_wc_mimir, run_wc_mrmpi, WcDataset};
use mimir_bench::{Platform, Status};

struct Claims {
    passed: u32,
    failed: u32,
}

impl Claims {
    fn check(&mut self, claim: &str, measured: String, ok: bool) {
        let verdict = if ok { "PASS" } else { "FAIL" };
        println!("[{verdict}] {claim}\n       measured: {measured}");
        if ok {
            self.passed += 1;
        } else {
            self.failed += 1;
        }
    }
}

fn main() {
    let comet = Platform::comet_mini();
    let mira = Platform::mira_mini();
    let mut c = Claims {
        passed: 0,
        failed: 0,
    };

    // --- Figure 1: the out-of-core cliff. -----------------------------
    println!("== Figure 1 claims ==");
    let in_mem = run_fig1_point(&comet, 4 << 20);
    let spilled = run_fig1_point(&comet, 32 << 20);
    c.check(
        "WC on one Comet node stays in memory at 4G (scaled 4M)",
        format!("{:?}", in_mem.status),
        in_mem.status == Status::InMemory,
    );
    c.check(
        "… and leaves memory past that, with orders-of-magnitude slowdown",
        format!(
            "{:?}, {:.1}x slower per 8x data",
            spilled.status,
            spilled.time_s / in_mem.time_s
        ),
        spilled.status == Status::Spilled && spilled.time_s > 20.0 * in_mem.time_s,
    );

    // --- Figure 7: KV-hint saving. -------------------------------------
    println!("== Figure 7 claims ==");
    let plain = run_wc_mimir(
        &comet,
        1,
        WcDataset::Wikipedia,
        4 << 20,
        WcOptions {
            partial_reduce: true,
            ..WcOptions::default()
        },
    );
    let hinted = run_wc_mimir(
        &comet,
        1,
        WcDataset::Wikipedia,
        4 << 20,
        WcOptions {
            hint: true,
            partial_reduce: true,
            ..WcOptions::default()
        },
    );
    let saving = 1.0 - hinted.kv_bytes as f64 / plain.kv_bytes as f64;
    c.check(
        "KV-hint saves ~26% of WC (Wikipedia) KV bytes",
        format!("{:.1}%", saving * 100.0),
        (0.20..0.33).contains(&saving),
    );

    // --- Figures 8/9: memory efficiency. --------------------------------
    println!("== Figure 8/9 claims ==");
    let mimir_small = run_wc_mimir(
        &comet,
        1,
        WcDataset::Uniform,
        256 << 10,
        WcOptions::default(),
    );
    let mrmpi_small = run_wc_mrmpi(
        &comet,
        1,
        WcDataset::Uniform,
        256 << 10,
        comet.mrmpi_page_small,
        false,
    );
    c.check(
        "Mimir uses at least 25% less memory than MR-MPI (64M)",
        format!(
            "{:.2} vs {:.2} MiB",
            mimir_small.peak_node_bytes as f64 / (1 << 20) as f64,
            mrmpi_small.peak_node_bytes as f64 / (1 << 20) as f64
        ),
        (mimir_small.peak_node_bytes as f64) < 0.75 * mrmpi_small.peak_node_bytes as f64,
    );
    let mimir_16m = run_wc_mimir(
        &comet,
        1,
        WcDataset::Uniform,
        16 << 20,
        WcOptions::default(),
    );
    let mrmpi_8m = run_wc_mrmpi(
        &comet,
        1,
        WcDataset::Uniform,
        8 << 20,
        comet.mrmpi_page_large,
        false,
    );
    c.check(
        "Mimir runs 4x larger datasets in memory than the best MR-MPI config",
        format!(
            "Mimir @16M: {:?}; MR-MPI(512K) @8M: {:?} (its last in-memory point is 4M)",
            mimir_16m.status, mrmpi_8m.status
        ),
        mimir_16m.status == Status::InMemory && mrmpi_8m.status == Status::Spilled,
    );
    let mrmpi_tiny = run_wc_mrmpi(
        &comet,
        1,
        WcDataset::Uniform,
        128 << 10,
        comet.mrmpi_page_small,
        false,
    );
    c.check(
        "MR-MPI's footprint is its static page sets, independent of data",
        format!(
            "{} vs {} bytes at 128K vs 256K",
            mrmpi_tiny.peak_node_bytes, mrmpi_small.peak_node_bytes
        ),
        mrmpi_tiny.peak_node_bytes == mrmpi_small.peak_node_bytes,
    );

    // --- Figure 10: weak scaling under skew. ----------------------------
    println!("== Figure 10 claims ==");
    let thin = comet.thin(4);
    let per_rank = (512 << 10) / comet.ranks_per_node;
    let mr_skew = run_wc_mrmpi(
        &thin,
        2,
        WcDataset::Wikipedia,
        per_rank * thin.ranks(2),
        thin.mrmpi_page_small,
        false,
    );
    let mimir_skew = run_wc_mimir(
        &thin,
        2,
        WcDataset::Wikipedia,
        per_rank * thin.ranks(2),
        WcOptions::default(),
    );
    c.check(
        "skewed WC breaks MR-MPI (64M) already at 2 nodes; Mimir is unaffected",
        format!(
            "MR-MPI: {:?}, Mimir: {:?}",
            mr_skew.status, mimir_skew.status
        ),
        mr_skew.status == Status::Spilled && mimir_skew.status == Status::InMemory,
    );

    // --- Figure 13: the optimization staircase. -------------------------
    println!("== Figure 13 claims ==");
    let base = run_wc_mimir(&mira, 1, WcDataset::Uniform, 2 << 20, WcOptions::default());
    let hint = run_wc_mimir(
        &mira,
        1,
        WcDataset::Uniform,
        2 << 20,
        WcOptions {
            hint: true,
            ..WcOptions::default()
        },
    );
    let hint_pr = run_wc_mimir(
        &mira,
        1,
        WcDataset::Uniform,
        2 << 20,
        WcOptions {
            hint: true,
            partial_reduce: true,
            ..WcOptions::default()
        },
    );
    c.check(
        "each optimization lowers the peak: base > hint > hint+pr",
        format!(
            "{:.2} > {:.2} > {:.2} MiB",
            base.peak_node_bytes as f64 / (1 << 20) as f64,
            hint.peak_node_bytes as f64 / (1 << 20) as f64,
            hint_pr.peak_node_bytes as f64 / (1 << 20) as f64
        ),
        base.peak_node_bytes > hint.peak_node_bytes
            && hint.peak_node_bytes > hint_pr.peak_node_bytes,
    );
    let base_8m = run_wc_mimir(&mira, 1, WcDataset::Uniform, 8 << 20, WcOptions::default());
    let stack_8m = run_wc_mimir(
        &mira,
        1,
        WcDataset::Uniform,
        8 << 20,
        WcOptions {
            hint: true,
            partial_reduce: true,
            compress: false,
        },
    );
    c.check(
        "the stack processes 4x larger datasets than the baseline (Mira)",
        format!(
            "base @8M: {:?}, hint+pr @8M: {:?}",
            base_8m.status, stack_8m.status
        ),
        base_8m.status == Status::Oom && stack_8m.status == Status::InMemory,
    );

    println!("\n{} passed, {} failed", c.passed, c.failed);
    if c.failed > 0 {
        std::process::exit(1);
    }
}
