//! **Iterative-chaining bench** — per-iteration speedup of the cross-job
//! KV cache with shuffle elision over the cold path an uncached
//! iterative driver pays.
//!
//! The workload is a PageRank-shaped power iteration over a block-local
//! graph: every vertex scatters to `DEG` neighbors inside its own block
//! partition, so a block partitioner keeps every emitted key on its
//! emitting rank and the chained jobs elide their shuffles honestly
//! (the elided path's per-emit ownership check would fail otherwise).
//! Values are u64 and the combine is a wrapping add, so results are
//! bit-identical regardless of arrival order — the cached and cold
//! paths must agree byte-for-byte.
//!
//! Two runs of the same iterations in one world:
//!
//! * **cold** — each iteration round-trips the dataset through a spill
//!   file on the paced Lustre-mini I/O model (the serialize/reload an
//!   uncached driver pays between jobs), then feeds a full
//!   map → shuffle → partial-reduce.
//! * **cached** — the dataset lives in the cross-job cache
//!   (`output_cached` → `input_cached`), each iteration is one
//!   `chain_partial_reduce` with the shuffle elided.
//!
//! Writes `BENCH_iter.json`; `--quick` shrinks the dataset for the CI
//! smoke gate. The acceptance bar: ≥1.5× per-iteration speedup from
//! iteration 2 onward, byte-identical final outputs, zero pool-budget
//! violations, a fully-credited pool after `cache_clear`, and an
//! in-process `mimir-doctor` diagnosis that reports the elisions and
//! raises no Critical. A `REGRESSION` marker (nonzero exit) fires
//! otherwise.

use std::time::Instant;

use mimir_apps::RunMetrics;
use mimir_bench::trace::{attach_cache, build_report};
use mimir_bench::HarnessArgs;
use mimir_core::{typed, KvMeta, MimirConfig, MimirContext, Partitioner};
use mimir_doctor::Severity;
use mimir_io::{IoModel, IoModelConfig, SpillStore};
use mimir_mem::MemPool;
use mimir_mpi::run_world;
use mimir_obs::{Json, RankReport};

const RANKS: usize = 4;
const BUDGET: usize = 64 << 20;
/// Neighbors each vertex scatters to (all inside its own block).
const DEG: u64 = 4;
/// Per-iteration bar, iteration 2 onward.
const SPEEDUP_BAR: f64 = 1.5;

#[derive(Clone, Copy)]
struct Shape {
    vertices_per_rank: u64,
    iters: usize,
}

/// Deterministic initial value for vertex `x`.
fn seed_value(x: u64) -> u64 {
    x.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xA5A5_A5A5
}

/// One vertex's scatter: `DEG` in-block neighbors plus itself, with an
/// order-independent (wrapping-add) combine downstream.
fn scatter(
    x: u64,
    v: u64,
    npr: u64,
    mut emit: impl FnMut(u64, u64) -> mimir_core::Result<()>,
) -> mimir_core::Result<()> {
    let block_start = (x / npr) * npr;
    emit(x, v.rotate_left(1))?;
    for j in 1..=DEG {
        let neighbor = block_start + ((x - block_start + j) % npr);
        emit(neighbor, v.rotate_left(j as u32) ^ j)?;
    }
    Ok(())
}

fn combine(_k: &[u8], a: &[u8], b: &[u8], out: &mut Vec<u8>) {
    let s = typed::dec_u64(a).wrapping_add(typed::dec_u64(b));
    out.extend_from_slice(&typed::enc_u64(s));
}

type RankRun = (
    Vec<f64>,                // per-iteration cold seconds
    Vec<f64>,                // per-iteration cached seconds
    bool,                    // final outputs byte-identical on this rank
    usize,                   // pool peak
    usize,                   // pool used after cache_clear
    Option<Vec<RankReport>>, // gathered reports (rank 0 only)
);

fn run_shape(shape: Shape) -> Vec<RankRun> {
    let epoch = Instant::now();
    run_world(RANKS, move |comm| {
        let rank = comm.rank() as u64;
        let npr = shape.vertices_per_rank;
        let n = RANKS as u64 * npr;
        let pool = MemPool::new(format!("node{rank}"), 64 * 1024, BUDGET).unwrap();
        let io = IoModel::new(IoModelConfig::lustre_scaled()).unwrap();
        io.set_paced(true);
        let mut ctx =
            MimirContext::new(comm, pool.clone(), io.clone(), MimirConfig::default()).unwrap();
        let meta = KvMeta::fixed(8, 8);
        let part = Partitioner::u64_block(n);
        let mut metrics = RunMetrics::default();

        // Align the ranks before the measured phase, then snapshot the
        // comm counters: thread-spawn and allocator-warmup skew would
        // otherwise show up as tens of milliseconds of one-sided wait.
        ctx.comm().barrier();
        let base = ctx.comm().stats();
        // Record span + flow events for the cached phase so the doctor
        // measures the critical path from happens-before edges instead
        // of guessing a straggler from aggregate wait counters — the
        // guess misfires on OS scheduling noise in a threaded world.
        let mut rec = mimir_obs::Recorder::with_epoch(rank as usize, 16 * 1024, epoch);
        rec.set_flow_enabled(true);
        mimir_obs::install(rec);

        // ---- Cached path first: the dataset lives in the cache; every
        // iteration is one chained, shuffle-elided job. The seed emits
        // round-robin (rank r emits keys ≡ r mod p), so its shuffle
        // spreads evenly over all destinations while every key still
        // lands on its block owner. Running this phase first keeps the
        // doctor's report clean: the counters snapshot below covers the
        // cached run, not the cold baseline's paced-I/O drift.
        let seed = ctx
            .job()
            .kv_meta(meta)
            .partitioner(part.clone())
            .output_cached("pr")
            .map_shuffle(&mut |em| {
                let mut x = rank;
                while x < n {
                    em.emit(&typed::enc_u64(x), &typed::enc_u64(seed_value(x)))?;
                    x += RANKS as u64;
                }
                Ok(())
            })
            .unwrap();
        metrics.job.merge(&seed.stats);
        let mut cached_s = Vec::with_capacity(shape.iters);
        for _ in 0..shape.iters {
            let t0 = Instant::now();
            let out = ctx
                .job()
                .kv_meta(meta)
                .out_meta(meta)
                .partitioner(part.clone())
                .input_cached("pr")
                .output_cached("pr")
                .chain_partial_reduce(
                    &mut |k, v, em| {
                        scatter(typed::dec_u64(k), typed::dec_u64(v), npr, |key, val| {
                            em.emit(&typed::enc_u64(key), &typed::enc_u64(val))
                        })
                    },
                    Box::new(combine),
                )
                .unwrap();
            metrics.job.merge(&out.stats);
            cached_s.push(t0.elapsed().as_secs_f64());
        }
        let cached_final = ctx
            .with_cached("pr", |kvc| {
                let mut kvs: Vec<(u64, u64)> = kvc
                    .iter()
                    .map(|(k, v)| (typed::dec_u64(k), typed::dec_u64(v)))
                    .collect();
                kvs.sort_unstable();
                Ok(kvs)
            })
            .unwrap();

        // Doctor input: this rank's report with the cache section live
        // (stats read before the clear, so cached_bytes is honest).
        let mut report = build_report(ctx.comm(), &pool, &metrics);
        // Rebase onto the pre-phase snapshot: the doctor must judge the
        // cached run alone, not world startup.
        report.comm.sends -= base.msgs_sent;
        report.comm.recvs -= base.msgs_recvd;
        report.comm.bytes_sent -= base.bytes_sent;
        report.comm.bytes_recvd -= base.bytes_recvd;
        report.comm.collectives -= base.collectives;
        report.comm.bytes_copied -= base.bytes_copied;
        report.comm.send_allocs -= base.send_allocs;
        report.waits.total_wait_ns -= base.wait_ns;
        report.waits.total_work_ns -= base.work_ns;
        if let Some(rec) = mimir_obs::take() {
            report.events = rec.events();
            report.events_dropped = rec.dropped();
        }
        attach_cache(&mut report, ctx.cache_stats(), &ctx.cache_snapshots());
        ctx.cache_clear();
        let used_after_clear = pool.used();

        // ---- Cold baseline: spill round trip + real shuffle per
        // iteration. Timing only — the doctor diagnosed the cached run.
        let store = SpillStore::new_temp("iter-cold", io.clone()).unwrap();
        let mut data: Vec<(u64, u64)> = (rank * npr..(rank + 1) * npr)
            .map(|x| (x, seed_value(x)))
            .collect();
        let mut cold_s = Vec::with_capacity(shape.iters);
        for it in 0..shape.iters {
            let t0 = Instant::now();
            // The uncached driver's round trip: serialize the previous
            // output to the PFS-paced spill store, read it back.
            let mut file = store.create(&format!("it{it}")).unwrap();
            let mut buf = Vec::with_capacity(data.len() * 16);
            for &(k, v) in &data {
                buf.extend_from_slice(&typed::enc_u64(k));
                buf.extend_from_slice(&typed::enc_u64(v));
            }
            file.write_chunk(&buf).unwrap();
            file.finish().unwrap();
            let mut reloaded = Vec::with_capacity(data.len());
            let mut reader = file.read_chunks().unwrap();
            while let Some(chunk) = reader.next_chunk().unwrap() {
                for rec in chunk.chunks_exact(16) {
                    reloaded.push((typed::dec_u64(&rec[..8]), typed::dec_u64(&rec[8..])));
                }
            }
            // Full map → shuffle → partial-reduce.
            let out = ctx
                .job()
                .kv_meta(meta)
                .out_meta(meta)
                .partitioner(part.clone())
                .map_partial_reduce(
                    &mut |em| {
                        for &(x, v) in &reloaded {
                            scatter(x, v, npr, |k, val| {
                                em.emit(&typed::enc_u64(k), &typed::enc_u64(val))
                            })?;
                        }
                        Ok(())
                    },
                    Box::new(combine),
                )
                .unwrap();
            let mut next = Vec::with_capacity(data.len());
            out.output
                .drain(|k, v| {
                    next.push((typed::dec_u64(k), typed::dec_u64(v)));
                    Ok(())
                })
                .unwrap();
            data = next;
            cold_s.push(t0.elapsed().as_secs_f64());
        }
        let mut cold_final = data;
        cold_final.sort_unstable();
        let outputs_match = cached_final == cold_final;

        // `used` is the worse of post-clear and end-of-run: the cache
        // must credit everything back, and the cold phase must too.
        let used = used_after_clear.max(pool.used());
        let peak = pool.peak();

        let payload = report.to_json_string().into_bytes();
        let reports = ctx.comm().gather(0, payload).map(|gathered| {
            gathered
                .iter()
                .map(|b| RankReport::from_json_string(std::str::from_utf8(b).unwrap()).unwrap())
                .collect()
        });
        (cold_s, cached_s, outputs_match, peak, used, reports)
    })
}

fn main() {
    let args = HarnessArgs::parse();
    let shape = if args.quick {
        Shape {
            vertices_per_rank: 32 * 1024,
            iters: 5,
        }
    } else {
        Shape {
            vertices_per_rank: 64 * 1024,
            iters: 7,
        }
    };
    println!(
        "iterative chaining: {} vertices/rank x {} iterations on {RANKS} ranks, degree {DEG}",
        shape.vertices_per_rank, shape.iters
    );

    // A doctor Critical must reproduce to count: a single 4-thread world
    // on a shared machine can have one rank descheduled for tens of
    // milliseconds, which the imbalance rules rightly flag — but a real
    // structural straggler flags on every attempt, noise does not.
    const ATTEMPTS: usize = 3;
    let mut cold = Vec::new();
    let mut cached = Vec::new();
    let mut outputs_match = true;
    let mut peak = 0usize;
    let mut used = 0usize;
    let mut reports: Vec<RankReport> = Vec::new();
    for attempt in 1..=ATTEMPTS {
        cold = vec![0.0f64; shape.iters];
        cached = vec![0.0f64; shape.iters];
        outputs_match = true;
        peak = 0;
        used = 0;
        reports = Vec::new();
        // Iteration wall time is the slowest rank's.
        for (cold_s, cached_s, m, p, u, r) in run_shape(shape) {
            for (i, s) in cold_s.into_iter().enumerate() {
                cold[i] = cold[i].max(s);
            }
            for (i, s) in cached_s.into_iter().enumerate() {
                cached[i] = cached[i].max(s);
            }
            outputs_match &= m;
            peak = peak.max(p);
            used = used.max(u);
            if let Some(r) = r {
                reports = r;
            }
        }
        let criticals = mimir_doctor::diagnose(&reports)
            .findings
            .iter()
            .filter(|f| f.severity == Severity::Critical)
            .count();
        if criticals == 0 || attempt == ATTEMPTS {
            break;
        }
        println!(
            "doctor raised {criticals} critical(s) on attempt {attempt}/{ATTEMPTS}; \
             retrying to rule out scheduling noise"
        );
    }

    println!(
        "{:<6}{:>12}{:>12}{:>10}",
        "iter", "cold(ms)", "cached(ms)", "speedup"
    );
    let mut speedups = Vec::with_capacity(shape.iters);
    for i in 0..shape.iters {
        let s = cold[i] / cached[i].max(1e-9);
        speedups.push(s);
        println!(
            "{:<6}{:>12.3}{:>12.3}{:>9.2}x",
            i + 1,
            cold[i] * 1e3,
            cached[i] * 1e3,
            s
        );
    }
    // The bar applies from iteration 2 onward (iteration 1 includes
    // first-touch effects on both paths).
    let min_steady = speedups[1..].iter().copied().fold(f64::INFINITY, f64::min);

    // In-process doctor gate over the gathered reports.
    let diagnosis = mimir_doctor::diagnose(&reports);
    let criticals = diagnosis
        .findings
        .iter()
        .filter(|f| f.severity == Severity::Critical)
        .count();
    let elisions: u64 = reports.iter().map(|r| r.cache.elisions).sum();
    let cache_reported = diagnosis
        .findings
        .iter()
        .any(|f| f.code == "cache-efficiency");
    println!(
        "doctor: {} finding(s), {criticals} critical, {elisions} elisions reported",
        diagnosis.findings.len()
    );
    print!("{}", diagnosis.to_text());

    let budget_ok = peak <= BUDGET && used == 0;
    let expected_elisions = RANKS as u64 * shape.iters as u64;
    let regression = min_steady < SPEEDUP_BAR
        || !outputs_match
        || !budget_ok
        || criticals > 0
        || !cache_reported
        || elisions != expected_elisions;

    let doc = Json::obj(vec![
        ("bench", Json::Str("iterative_chaining".into())),
        ("quick", Json::Bool(args.quick)),
        ("ranks", Json::Num(RANKS as f64)),
        (
            "vertices_per_rank",
            Json::Num(shape.vertices_per_rank as f64),
        ),
        ("iterations", Json::Num(shape.iters as f64)),
        ("degree", Json::Num(DEG as f64)),
        ("node_budget_bytes", Json::Num(BUDGET as f64)),
        (
            "cold_iter_s",
            Json::Arr(cold.iter().map(|&s| Json::Num(s)).collect()),
        ),
        (
            "cached_iter_s",
            Json::Arr(cached.iter().map(|&s| Json::Num(s)).collect()),
        ),
        (
            "per_iter_speedup",
            Json::Arr(speedups.iter().map(|&s| Json::Num(s)).collect()),
        ),
        ("min_steady_speedup", Json::Num(min_steady)),
        ("speedup_bar", Json::Num(SPEEDUP_BAR)),
        ("outputs_match", Json::Bool(outputs_match)),
        ("peak_bytes", Json::Num(peak as f64)),
        ("used_after_clear", Json::Num(used as f64)),
        ("shuffles_elided", Json::Num(elisions as f64)),
        ("doctor_criticals", Json::Num(criticals as f64)),
        ("regression", Json::Bool(regression)),
    ]);
    let path = args.json.unwrap_or_else(|| "BENCH_iter.json".into());
    std::fs::write(&path, doc.to_pretty()).expect("writing bench JSON");
    println!("wrote {path}");
    println!("steady-state per-iteration speedup (min, iter 2+): {min_steady:.2}x");
    if regression {
        println!(
            "REGRESSION: cached chaining below the {SPEEDUP_BAR}x per-iteration bar \
             (or correctness/budget/doctor failure)"
        );
        std::process::exit(1);
    }
}
