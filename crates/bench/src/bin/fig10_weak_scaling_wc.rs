//! **Figure 10** — "Weak scalability of MR-MPI and Mimir": WordCount on
//! both platforms, fixed data per node, node counts 2–64. The paper's
//! shape: Mimir scales flat to 64 nodes; MR-MPI (64 M) stops at 32 nodes
//! on the uniform dataset and cannot run the skewed Wikipedia dataset at
//! all (its hot keys overflow the static page of whichever rank owns
//! them), and even the large-page configuration dies by 16 nodes.
//!
//! Thread-count note (EXPERIMENTS.md): the host cannot run 64 × 24 rank
//! threads, so scaling figures run a *thinned* platform (4 ranks/node)
//! with the paper's per-rank data share — the ratios that decide who
//! spills are preserved exactly.

use mimir_apps::wordcount::WcOptions;
use mimir_bench::runner::WcDataset;
use mimir_bench::sweeps::{wc_scaling_figure, WcSeries};
use mimir_bench::{print_figure, write_json, HarnessArgs, Platform};

fn main() {
    let args = HarnessArgs::parse();
    let max_nodes = args.max_nodes.unwrap_or(if args.quick { 8 } else { 64 });
    let node_counts: Vec<usize> = [2usize, 4, 8, 16, 32, 64]
        .into_iter()
        .filter(|&n| n <= max_nodes)
        .collect();

    let mut figs = Vec::new();
    for (platform, per_node_paper) in [
        (Platform::comet_mini(), 512 << 10), // paper: 512 MB/node on 24 ranks
        (Platform::mira_mini(), 256 << 10),  // paper: 256 MB/node on 16 ranks
    ] {
        let thin = platform.thin(4);
        let bytes_per_rank = per_node_paper / platform.ranks_per_node;
        let series: &[(&str, WcSeries)] = &[
            ("Mimir", WcSeries::Mimir(WcOptions::default())),
            (
                "MR-MPI (64K)",
                WcSeries::MrMpi {
                    page: platform.mrmpi_page_small,
                    cps: false,
                },
            ),
            (
                "MR-MPI (large)",
                WcSeries::MrMpi {
                    page: platform.mrmpi_page_large,
                    cps: false,
                },
            ),
        ];
        for (suffix, dataset) in [
            ("uniform", WcDataset::Uniform),
            ("wikipedia", WcDataset::Wikipedia),
        ] {
            figs.push(wc_scaling_figure(
                &format!("fig10-{}-{suffix}", platform.name),
                &format!(
                    "Weak scaling, WC ({suffix}), {} ({} B/rank)",
                    platform.name, bytes_per_rank
                ),
                &thin,
                dataset,
                bytes_per_rank,
                &node_counts,
                series,
            ));
        }
    }
    for fig in &figs {
        print_figure(fig);
    }
    if let Some(path) = &args.json {
        for fig in &figs {
            write_json(&format!("{path}.{}.json", fig.id), fig);
        }
    }
}
