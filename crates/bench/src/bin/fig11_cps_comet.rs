//! **Figure 11** — "Performance of KV compression on one Comet node":
//! Mimir and MR-MPI each with and without their KV-compression paths, on
//! all four benchmark datasets. The paper's shapes: compression lowers
//! *Mimir's* peak (freed container pages are reclaimed) and extends its
//! maximum in-memory dataset; MR-MPI's footprint is unchanged (fixed page
//! sets) so compression only shrinks the shuffled bytes; BFS's peak is
//! unchanged for both (its peak lives in the partitioning phase).

use mimir_apps::bfs::BfsOptions;
use mimir_apps::octree::OcOptions;
use mimir_apps::wordcount::WcOptions;
use mimir_bench::runner::WcDataset;
use mimir_bench::sweeps::{bfs_figure, oc_figure, wc_figure, BfsSeries, OcSeries, WcSeries};
use mimir_bench::{print_figure, write_json, HarnessArgs, Platform};

fn main() {
    let args = HarnessArgs::parse();
    let p = Platform::comet_mini();
    // The paper uses MR-MPI's maximum page size here, "because the
    // increased page size allows MR-MPI to support larger datasets".
    let page = p.mrmpi_page_large;

    let cps_wc = WcOptions {
        compress: true,
        ..WcOptions::default()
    };
    let cps_oc = OcOptions {
        compress: true,
        ..OcOptions::default()
    };
    let cps_bfs = BfsOptions {
        compress: true,
        ..BfsOptions::default()
    };

    let wc_series: &[(&str, WcSeries)] = &[
        ("Mimir", WcSeries::Mimir(WcOptions::default())),
        ("Mimir (cps)", WcSeries::Mimir(cps_wc)),
        ("MR-MPI", WcSeries::MrMpi { page, cps: false }),
        ("MR-MPI (cps)", WcSeries::MrMpi { page, cps: true }),
    ];
    let oc_series: &[(&str, OcSeries)] = &[
        ("Mimir", OcSeries::Mimir(OcOptions::default())),
        ("Mimir (cps)", OcSeries::Mimir(cps_oc)),
        ("MR-MPI", OcSeries::MrMpi { page, cps: false }),
        ("MR-MPI (cps)", OcSeries::MrMpi { page, cps: true }),
    ];
    let bfs_series: &[(&str, BfsSeries)] = &[
        ("Mimir", BfsSeries::Mimir(BfsOptions::default())),
        ("Mimir (cps)", BfsSeries::Mimir(cps_bfs)),
        ("MR-MPI", BfsSeries::MrMpi { page, cps: false }),
        ("MR-MPI (cps)", BfsSeries::MrMpi { page, cps: true }),
    ];

    let wc_sizes: &[usize] = if args.quick {
        &[512 << 10, 4 << 20]
    } else {
        &[
            512 << 10,
            1 << 20,
            2 << 20,
            4 << 20,
            8 << 20,
            16 << 20,
            32 << 20,
            64 << 20,
        ]
    };
    let oc_points: &[u32] = if args.quick {
        &[15, 18]
    } else {
        &[15, 16, 17, 18, 19, 20, 21, 22]
    };
    let bfs_scales: &[u32] = if args.quick {
        &[10, 13]
    } else {
        &[10, 11, 12, 13, 14, 15, 16]
    };

    let figs = [
        wc_figure(
            "fig11a",
            "KV compression, WC (Uniform), Comet",
            &p,
            1,
            WcDataset::Uniform,
            wc_sizes,
            wc_series,
        ),
        wc_figure(
            "fig11b",
            "KV compression, WC (Wikipedia), Comet",
            &p,
            1,
            WcDataset::Wikipedia,
            wc_sizes,
            wc_series,
        ),
        oc_figure(
            "fig11c",
            "KV compression, OC, Comet",
            &p,
            1,
            oc_points,
            oc_series,
        ),
        bfs_figure(
            "fig11d",
            "KV compression, BFS, Comet",
            &p,
            1,
            bfs_scales,
            bfs_series,
        ),
    ];
    for fig in &figs {
        print_figure(fig);
    }
    if let Some(path) = &args.json {
        for fig in &figs {
            write_json(&format!("{path}.{}.json", fig.id), fig);
        }
    }
}
