//! **Figure 1** — "Single-node execution time of WordCount with MR-MPI on
//! Comet": the out-of-core cliff. Once the dataset's intermediate KVs no
//! longer fit MR-MPI's static pages, every page round-trips through the
//! shared parallel file system and execution time degrades by orders of
//! magnitude (the paper reports ~1000× from 4 GB to 64 GB).
//!
//! Scaled sweep: 1 MB–64 MB on comet-mini with 64 KiB MR-MPI pages.

use mimir_bench::report::{DataPoint, Figure, Series};
use mimir_bench::runner::run_fig1_point;
use mimir_bench::{fmt_size, print_figure, write_json, HarnessArgs, Platform};

fn main() {
    let args = HarnessArgs::parse();
    let p = Platform::comet_mini();
    let sizes: &[usize] = if args.quick {
        &[1 << 20, 2 << 20, 4 << 20, 8 << 20]
    } else {
        &[
            1 << 20,
            2 << 20,
            4 << 20,
            8 << 20,
            16 << 20,
            32 << 20,
            64 << 20,
        ]
    };

    let mut points = Vec::new();
    for &size in sizes {
        let outcome = run_fig1_point(&p, size);
        eprintln!(
            "  fig01 {}: {:?} {:.3}s",
            fmt_size(size),
            outcome.status,
            outcome.time_s
        );
        points.push(DataPoint {
            x: fmt_size(size),
            outcome,
        });
    }
    let fig = Figure {
        id: "fig01".into(),
        title: "MR-MPI WordCount single-node cliff (paper Fig. 1)".into(),
        xlabel: "dataset".into(),
        series: vec![Series {
            label: "MR-MPI (512K)".into(),
            points,
        }],
    };
    print_figure(&fig);

    // The headline number: degradation factor between the largest
    // in-memory point and the largest spilled point.
    let times: Vec<(f64, bool)> = fig.series[0]
        .points
        .iter()
        .map(|pt| {
            (
                pt.outcome.time_s,
                pt.outcome.status == mimir_bench::Status::Spilled,
            )
        })
        .collect();
    let best_in_mem = times
        .iter()
        .filter(|(_, s)| !s)
        .map(|(t, _)| *t)
        .fold(f64::NAN, f64::max);
    let worst_spill = times
        .iter()
        .filter(|(_, s)| *s)
        .map(|(t, _)| *t)
        .fold(f64::NAN, f64::max);
    if best_in_mem.is_finite() && worst_spill.is_finite() {
        println!(
            "\ndegradation: {:.0}x (in-memory {:.3}s -> spilled {:.1}s; paper reports ~1000x)",
            worst_spill / best_in_mem,
            best_in_mem,
            worst_spill
        );
    }
    if let Some(path) = &args.json {
        write_json(path, &fig);
    }
}
