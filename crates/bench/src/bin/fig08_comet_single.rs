//! **Figure 8** — "Peak memory usage and execution times on one Comet
//! node": baseline Mimir vs MR-MPI (64 M and 512 M pages) across the four
//! benchmark datasets, sweeping dataset size.
//!
//! Paper shapes to reproduce: Mimir uses ≥25 % less memory in the common
//! regime, stays in memory for ~4× larger datasets than the best MR-MPI
//! configuration, and matches its in-memory execution times.

use mimir_apps::bfs::BfsOptions;
use mimir_apps::octree::OcOptions;
use mimir_apps::wordcount::WcOptions;
use mimir_bench::runner::WcDataset;
use mimir_bench::sweeps::{bfs_figure, oc_figure, wc_figure, BfsSeries, OcSeries, WcSeries};
use mimir_bench::{print_figure, write_json, HarnessArgs, Platform};

fn main() {
    let args = HarnessArgs::parse();
    let p = Platform::comet_mini();
    let small = p.mrmpi_page_small;
    let large = p.mrmpi_page_large;

    let wc_series: &[(&str, WcSeries)] = &[
        ("Mimir", WcSeries::Mimir(WcOptions::default())),
        (
            "MR-MPI (64K)",
            WcSeries::MrMpi {
                page: small,
                cps: false,
            },
        ),
        (
            "MR-MPI (512K)",
            WcSeries::MrMpi {
                page: large,
                cps: false,
            },
        ),
    ];
    let oc_series: &[(&str, OcSeries)] = &[
        ("Mimir", OcSeries::Mimir(OcOptions::default())),
        (
            "MR-MPI (64K)",
            OcSeries::MrMpi {
                page: small,
                cps: false,
            },
        ),
        (
            "MR-MPI (512K)",
            OcSeries::MrMpi {
                page: large,
                cps: false,
            },
        ),
    ];
    let bfs_series: &[(&str, BfsSeries)] = &[
        ("Mimir", BfsSeries::Mimir(BfsOptions::default())),
        (
            "MR-MPI (64K)",
            BfsSeries::MrMpi {
                page: small,
                cps: false,
            },
        ),
        (
            "MR-MPI (512K)",
            BfsSeries::MrMpi {
                page: large,
                cps: false,
            },
        ),
    ];

    let wc_sizes: &[usize] = if args.quick {
        &[256 << 10, 1 << 20, 4 << 20]
    } else {
        &[
            256 << 10,
            512 << 10,
            1 << 20,
            2 << 20,
            4 << 20,
            8 << 20,
            16 << 20,
        ]
    };
    let oc_points: &[u32] = if args.quick {
        &[14, 16, 18]
    } else {
        &[14, 15, 16, 17, 18, 19, 20]
    };
    let bfs_scales: &[u32] = if args.quick {
        &[9, 11, 13]
    } else {
        &[9, 10, 11, 12, 13, 14, 15, 16]
    };

    let figs = [
        wc_figure(
            "fig08a",
            "WC (Uniform), one Comet node",
            &p,
            1,
            WcDataset::Uniform,
            wc_sizes,
            wc_series,
        ),
        wc_figure(
            "fig08b",
            "WC (Wikipedia), one Comet node",
            &p,
            1,
            WcDataset::Wikipedia,
            wc_sizes,
            wc_series,
        ),
        oc_figure("fig08c", "OC, one Comet node", &p, 1, oc_points, oc_series),
        bfs_figure(
            "fig08d",
            "BFS, one Comet node",
            &p,
            1,
            bfs_scales,
            bfs_series,
        ),
    ];
    for fig in &figs {
        print_figure(fig);
    }
    if let Some(path) = &args.json {
        for fig in &figs {
            write_json(&format!("{path}.{}.json", fig.id), fig);
        }
    }
}
