//! **Job-service mixed-workload bench** — aggregate throughput of the
//! multi-tenant scheduler versus serial execution of the same job mix.
//!
//! The workload is the service's design target: N small WordCounts plus
//! one large BFS, each starting with a paced read of its input from the
//! simulated parallel file system (the I/O model really sleeps the
//! modeled duration, so "waiting on the PFS" occupies wall-clock without
//! occupying a core — exactly the gap concurrency exists to fill). The
//! *serial* baseline runs the identical specs through the identical
//! scheduler with `max_running = 1`; the *concurrent* run allows 3 jobs
//! in flight, so one job's I/O stall overlaps another's map/shuffle
//! compute.
//!
//! Writes `BENCH_sched.json`; `--quick` shrinks the mix for the CI
//! smoke gate. The acceptance bar is ≥1.3× aggregate throughput
//! (serial wall-clock / concurrent wall-clock) with zero budget
//! violations and identical outputs in both runs; a `REGRESSION`
//! marker (nonzero exit) fires otherwise.

use std::time::Instant;

use mimir_apps::bfs::{bfs_mimir, BfsOptions};
use mimir_apps::wordcount::{wordcount_mimir, WcOptions};
use mimir_bench::HarnessArgs;
use mimir_datagen::{Graph500, UniformWords};
use mimir_io::{IoModel, IoModelConfig};
use mimir_mem::MemPool;
use mimir_mpi::run_world;
use mimir_obs::Json;
use mimir_sched::{JobOutcome, JobService, JobSpec, JobYield, SchedConfig};

const RANKS: usize = 4;
const BUDGET: usize = 24 << 20;

#[derive(Clone, Copy)]
struct Mix {
    n_wordcounts: u64,
    wc_bytes_per_rank: usize,
    /// Simulated PFS input read per WordCount, bytes (paced).
    wc_read_bytes: usize,
    bfs_scale: u32,
    bfs_read_bytes: usize,
}

struct RunResult {
    wall_s: f64,
    /// Concatenated per-job digests — must be identical across runs.
    digest: Vec<u8>,
    peak_bytes: usize,
    used_after: usize,
    all_done: bool,
}

fn build_specs(mix: Mix) -> Vec<JobSpec> {
    let mut specs = Vec::new();
    for j in 0..mix.n_wordcounts {
        specs.push(
            JobSpec::new(format!("wc{j}"), 1 << 20, move |ctx| {
                // Paced ingest: the job waits on the simulated PFS.
                ctx.io().charge_read(mix.wc_read_bytes);
                let text = UniformWords::new(j + 1).generate(
                    ctx.rank(),
                    ctx.size(),
                    mix.wc_bytes_per_rank,
                );
                let (mut counts, _m) = wordcount_mimir(ctx, &text, &WcOptions::all())?;
                counts.sort();
                let mut data = Vec::new();
                for (word, n) in &counts {
                    data.extend_from_slice(word);
                    data.extend_from_slice(&n.to_le_bytes());
                }
                let kvs = counts.len() as u64;
                Ok(JobYield {
                    data,
                    kvs_out: kvs,
                    spill_bytes: 0,
                })
            })
            .priority(1),
        );
    }
    specs.push(
        JobSpec::new("bfs", 4 << 20, move |ctx| {
            ctx.io().charge_read(mix.bfs_read_bytes);
            let graph = Graph500::new(mix.bfs_scale, 42);
            let edges = graph.edges(ctx.rank(), ctx.size());
            let (result, _m) = bfs_mimir(ctx, &edges, 1, &BfsOptions::all())?;
            let mut data = result.visited_global.to_le_bytes().to_vec();
            data.extend_from_slice(&u64::from(result.depth).to_le_bytes());
            Ok(JobYield::from_data(data))
        })
        .priority(2),
    );
    specs
}

/// Runs the whole mix through the service with the given concurrency
/// and returns per-rank results.
fn run_mix(mix: Mix, max_running: usize) -> RunResult {
    let per_rank = run_world(RANKS, move |comm| {
        let pool = MemPool::new(format!("node{}", comm.rank()), 64 * 1024, BUDGET).unwrap();
        let io = IoModel::new(IoModelConfig::lustre_scaled()).unwrap();
        io.set_paced(true);
        let cfg = SchedConfig {
            queue_cap: 16,
            max_running,
            max_retries: 3,
        };
        let mut svc = JobService::new(comm, pool, io, cfg);
        let t0 = Instant::now();
        let ids: Vec<u64> = build_specs(mix)
            .into_iter()
            .map(|s| svc.submit(s))
            .collect();
        svc.run_until_idle();
        let wall_s = t0.elapsed().as_secs_f64();
        let all_done = ids
            .iter()
            .all(|&id| svc.outcome(id) == Some(JobOutcome::Done));
        let mut digest = Vec::new();
        for &id in &ids {
            if let Some(y) = svc.take_output(id) {
                digest.extend_from_slice(&y.data);
            }
        }
        (
            wall_s,
            digest,
            svc.pool().peak(),
            svc.pool().used(),
            all_done,
        )
    });
    // Wall-clock is the slowest rank; digests concatenate rank-ordered.
    let mut digest = Vec::new();
    let mut wall_s: f64 = 0.0;
    let mut peak_bytes = 0;
    let mut used_after = 0;
    let mut all_done = true;
    for (w, d, peak, used, done) in per_rank {
        wall_s = wall_s.max(w);
        digest.extend_from_slice(&d);
        peak_bytes = peak_bytes.max(peak);
        used_after = used_after.max(used);
        all_done &= done;
    }
    RunResult {
        wall_s,
        digest,
        peak_bytes,
        used_after,
        all_done,
    }
}

fn main() {
    let args = HarnessArgs::parse();
    let mix = if args.quick {
        Mix {
            n_wordcounts: 4,
            wc_bytes_per_rank: 8 * 1024,
            wc_read_bytes: 2 << 20,
            bfs_scale: 9,
            bfs_read_bytes: 4 << 20,
        }
    } else {
        Mix {
            n_wordcounts: 8,
            wc_bytes_per_rank: 48 * 1024,
            wc_read_bytes: 8 << 20,
            bfs_scale: 12,
            bfs_read_bytes: 24 << 20,
        }
    };

    println!(
        "mixed workload: {} wordcounts + 1 BFS (scale {}) on {RANKS} ranks, {} MiB/node budget",
        mix.n_wordcounts,
        mix.bfs_scale,
        BUDGET >> 20
    );

    let serial = run_mix(mix, 1);
    let concurrent = run_mix(mix, 3);

    let speedup = serial.wall_s / concurrent.wall_s;
    let outputs_match = serial.digest == concurrent.digest;
    let budget_ok = serial.peak_bytes <= BUDGET
        && concurrent.peak_bytes <= BUDGET
        && serial.used_after == 0
        && concurrent.used_after == 0;

    println!(
        "{:<12}{:>10}{:>12}{:>14}{:>10}",
        "mode", "wall(s)", "peak(MiB)", "jobs done", "speedup"
    );
    for (mode, r, s) in [
        ("serial", &serial, 1.0),
        ("concurrent", &concurrent, speedup),
    ] {
        println!(
            "{:<12}{:>10.3}{:>12.2}{:>14}{:>9.2}x",
            mode,
            r.wall_s,
            r.peak_bytes as f64 / (1 << 20) as f64,
            if r.all_done { "all" } else { "NOT ALL" },
            s,
        );
    }
    println!("outputs match: {outputs_match}");

    let regression =
        speedup < 1.3 || !outputs_match || !budget_ok || !serial.all_done || !concurrent.all_done;

    let doc = Json::obj(vec![
        ("bench", Json::Str("sched_mixed_workload".into())),
        ("quick", Json::Bool(args.quick)),
        ("ranks", Json::Num(RANKS as f64)),
        ("node_budget_bytes", Json::Num(BUDGET as f64)),
        ("n_wordcounts", Json::Num(mix.n_wordcounts as f64)),
        ("bfs_scale", Json::Num(f64::from(mix.bfs_scale))),
        ("serial_wall_s", Json::Num(serial.wall_s)),
        ("concurrent_wall_s", Json::Num(concurrent.wall_s)),
        ("aggregate_speedup", Json::Num(speedup)),
        ("serial_peak_bytes", Json::Num(serial.peak_bytes as f64)),
        (
            "concurrent_peak_bytes",
            Json::Num(concurrent.peak_bytes as f64),
        ),
        ("outputs_match", Json::Bool(outputs_match)),
        (
            "budget_violations",
            Json::Num(f64::from(u8::from(!budget_ok))),
        ),
        ("regression", Json::Bool(regression)),
    ]);
    let path = args.json.unwrap_or_else(|| "BENCH_sched.json".into());
    std::fs::write(&path, doc.to_pretty()).expect("writing bench JSON");
    println!("wrote {path}");
    println!("aggregate throughput (concurrent vs serial): {speedup:.2}x");
    if regression {
        println!("REGRESSION: concurrent job service below the 1.3x bar (or correctness failure)");
        std::process::exit(1);
    }
}
