//! Weak scaling of OC and BFS, Mimir vs MR-MPI — the study the paper
//! runs but does not plot: "Scalability studies of OC and BFS on Comet
//! and Mira (not shown in the paper) confirm the conclusions observed
//! for WC." This harness produces those figures so the claim is
//! checkable.
//!
//! Same thinning convention as fig10 (4 ranks/node, per-rank workload
//! share preserved).

use mimir_apps::bfs::BfsOptions;
use mimir_apps::octree::OcOptions;
use mimir_bench::runner::{run_bfs_mimir, run_bfs_mrmpi, run_oc_mimir, run_oc_mrmpi};
use mimir_bench::sweeps::scaling_figure;
use mimir_bench::{print_figure, write_json, HarnessArgs, Platform};

fn main() {
    let args = HarnessArgs::parse();
    let max_nodes = args.max_nodes.unwrap_or(if args.quick { 8 } else { 64 });
    let node_counts: Vec<usize> = [2usize, 4, 8, 16, 32, 64]
        .into_iter()
        .filter(|&n| n <= max_nodes)
        .collect();

    let mut figs = Vec::new();
    for full in [Platform::comet_mini(), Platform::mira_mini()] {
        let thin = full.thin(4);
        // Per-rank shares mirroring the fig10 WC choice: the largest
        // per-node workload the small-page MR-MPI can hold in memory on
        // balanced data.
        let oc_points_per_rank = 1usize << 11;
        let bfs_verts_per_rank = 1usize << 7;
        let series = ["Mimir", "MR-MPI (64K)", "MR-MPI (large)"];

        {
            let labels: Vec<&str> = series.to_vec();
            figs.push(scaling_figure(
                &format!("scaling-oc-{}", full.name),
                &format!("Weak scaling, OC, {}", full.name),
                "nodes",
                &node_counts,
                &labels,
                |si, nodes| {
                    let points = oc_points_per_rank * thin.ranks(nodes);
                    match si {
                        0 => run_oc_mimir(&thin, nodes, points, OcOptions::default()),
                        1 => run_oc_mrmpi(&thin, nodes, points, thin.mrmpi_page_small, false),
                        _ => run_oc_mrmpi(&thin, nodes, points, thin.mrmpi_page_large, false),
                    }
                },
            ));
        }
        {
            let labels: Vec<&str> = series.to_vec();
            figs.push(scaling_figure(
                &format!("scaling-bfs-{}", full.name),
                &format!("Weak scaling, BFS, {}", full.name),
                "nodes",
                &node_counts,
                &labels,
                |si, nodes| {
                    let verts = bfs_verts_per_rank * thin.ranks(nodes);
                    let scale = usize::BITS - 1 - verts.leading_zeros();
                    match si {
                        0 => run_bfs_mimir(&thin, nodes, scale, BfsOptions::default()),
                        1 => run_bfs_mrmpi(&thin, nodes, scale, thin.mrmpi_page_small, false),
                        _ => run_bfs_mrmpi(&thin, nodes, scale, thin.mrmpi_page_large, false),
                    }
                },
            ));
        }
    }

    for fig in &figs {
        print_figure(fig);
    }
    if let Some(path) = &args.json {
        for fig in &figs {
            write_json(&format!("{path}.{}.json", fig.id), fig);
        }
    }
}
