//! **Figure 12** — "Performance of KV compression on one Mira node": the
//! Figure 11 comparison on the BG/Q preset, where the paper reports Mimir
//! with compression "processing up to 16-fold larger datasets compared
//! with MR-MPI".

use mimir_apps::bfs::BfsOptions;
use mimir_apps::octree::OcOptions;
use mimir_apps::wordcount::WcOptions;
use mimir_bench::runner::WcDataset;
use mimir_bench::sweeps::{bfs_figure, oc_figure, wc_figure, BfsSeries, OcSeries, WcSeries};
use mimir_bench::{print_figure, write_json, HarnessArgs, Platform};

fn main() {
    let args = HarnessArgs::parse();
    let p = Platform::mira_mini();
    // Paper: max page for WC (128 M), default page for OC and BFS (the
    // 128 M page set is not even allocatable for those).
    let wc_page = p.mrmpi_page_large;
    let other_page = p.mrmpi_page_small;

    let cps_wc = WcOptions {
        compress: true,
        ..WcOptions::default()
    };
    let cps_oc = OcOptions {
        compress: true,
        ..OcOptions::default()
    };
    let cps_bfs = BfsOptions {
        compress: true,
        ..BfsOptions::default()
    };

    let wc_series: &[(&str, WcSeries)] = &[
        ("Mimir", WcSeries::Mimir(WcOptions::default())),
        ("Mimir (cps)", WcSeries::Mimir(cps_wc)),
        (
            "MR-MPI",
            WcSeries::MrMpi {
                page: wc_page,
                cps: false,
            },
        ),
        (
            "MR-MPI (cps)",
            WcSeries::MrMpi {
                page: wc_page,
                cps: true,
            },
        ),
    ];
    let oc_series: &[(&str, OcSeries)] = &[
        ("Mimir", OcSeries::Mimir(OcOptions::default())),
        ("Mimir (cps)", OcSeries::Mimir(cps_oc)),
        (
            "MR-MPI",
            OcSeries::MrMpi {
                page: other_page,
                cps: false,
            },
        ),
        (
            "MR-MPI (cps)",
            OcSeries::MrMpi {
                page: other_page,
                cps: true,
            },
        ),
    ];
    let bfs_series: &[(&str, BfsSeries)] = &[
        ("Mimir", BfsSeries::Mimir(BfsOptions::default())),
        ("Mimir (cps)", BfsSeries::Mimir(cps_bfs)),
        (
            "MR-MPI",
            BfsSeries::MrMpi {
                page: other_page,
                cps: false,
            },
        ),
        (
            "MR-MPI (cps)",
            BfsSeries::MrMpi {
                page: other_page,
                cps: true,
            },
        ),
    ];

    let wc_sizes: &[usize] = if args.quick {
        &[256 << 10, 1 << 20]
    } else {
        &[256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20, 8 << 20]
    };
    let oc_points: &[u32] = if args.quick {
        &[14, 16]
    } else {
        &[14, 15, 16, 17, 18, 19]
    };
    let bfs_scales: &[u32] = if args.quick {
        &[8, 10]
    } else {
        &[8, 9, 10, 11, 12, 13]
    };

    let figs = [
        wc_figure(
            "fig12a",
            "KV compression, WC (Uniform), Mira",
            &p,
            1,
            WcDataset::Uniform,
            wc_sizes,
            wc_series,
        ),
        wc_figure(
            "fig12b",
            "KV compression, WC (Wikipedia), Mira",
            &p,
            1,
            WcDataset::Wikipedia,
            wc_sizes,
            wc_series,
        ),
        oc_figure(
            "fig12c",
            "KV compression, OC, Mira",
            &p,
            1,
            oc_points,
            oc_series,
        ),
        bfs_figure(
            "fig12d",
            "KV compression, BFS, Mira",
            &p,
            1,
            bfs_scales,
            bfs_series,
        ),
    ];
    for fig in &figs {
        print_figure(fig);
    }
    if let Some(path) = &args.json {
        for fig in &figs {
            write_json(&format!("{path}.{}.json", fig.id), fig);
        }
    }
}
