//! **Figure 9** — "Peak memory usage and execution times on one Mira
//! node": as Figure 8, on the 16-rank / 16 MiB-node BG/Q preset with
//! MR-MPI pages of 64 K and 128 K. The paper's extra wrinkle: the 128 M
//! page configuration was not even runnable for OC and BFS because the
//! page sets exhaust the node — reproduced here as OOM cells.

use mimir_apps::bfs::BfsOptions;
use mimir_apps::octree::OcOptions;
use mimir_apps::wordcount::WcOptions;
use mimir_bench::runner::WcDataset;
use mimir_bench::sweeps::{bfs_figure, oc_figure, wc_figure, BfsSeries, OcSeries, WcSeries};
use mimir_bench::{print_figure, write_json, HarnessArgs, Platform};

fn main() {
    let args = HarnessArgs::parse();
    let p = Platform::mira_mini();
    let small = p.mrmpi_page_small;
    let large = p.mrmpi_page_large;

    let wc_series: &[(&str, WcSeries)] = &[
        ("Mimir", WcSeries::Mimir(WcOptions::default())),
        (
            "MR-MPI (64K)",
            WcSeries::MrMpi {
                page: small,
                cps: false,
            },
        ),
        (
            "MR-MPI (128K)",
            WcSeries::MrMpi {
                page: large,
                cps: false,
            },
        ),
    ];
    let oc_series: &[(&str, OcSeries)] = &[
        ("Mimir", OcSeries::Mimir(OcOptions::default())),
        (
            "MR-MPI (64K)",
            OcSeries::MrMpi {
                page: small,
                cps: false,
            },
        ),
        (
            "MR-MPI (128K)",
            OcSeries::MrMpi {
                page: large,
                cps: false,
            },
        ),
    ];
    let bfs_series: &[(&str, BfsSeries)] = &[
        ("Mimir", BfsSeries::Mimir(BfsOptions::default())),
        (
            "MR-MPI (64K)",
            BfsSeries::MrMpi {
                page: small,
                cps: false,
            },
        ),
        (
            "MR-MPI (128K)",
            BfsSeries::MrMpi {
                page: large,
                cps: false,
            },
        ),
    ];

    let wc_sizes: &[usize] = if args.quick {
        &[64 << 10, 256 << 10, 1 << 20]
    } else {
        &[64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20, 2 << 20]
    };
    let oc_points: &[u32] = if args.quick {
        &[12, 14, 16]
    } else {
        &[12, 13, 14, 15, 16, 17]
    };
    let bfs_scales: &[u32] = if args.quick {
        &[8, 10]
    } else {
        &[8, 9, 10, 11, 12]
    };

    let figs = [
        wc_figure(
            "fig09a",
            "WC (Uniform), one Mira node",
            &p,
            1,
            WcDataset::Uniform,
            wc_sizes,
            wc_series,
        ),
        wc_figure(
            "fig09b",
            "WC (Wikipedia), one Mira node",
            &p,
            1,
            WcDataset::Wikipedia,
            wc_sizes,
            wc_series,
        ),
        oc_figure("fig09c", "OC, one Mira node", &p, 1, oc_points, oc_series),
        bfs_figure(
            "fig09d",
            "BFS, one Mira node",
            &p,
            1,
            bfs_scales,
            bfs_series,
        ),
    ];
    for fig in &figs {
        print_figure(fig);
    }
    if let Some(path) = &args.json {
        for fig in &figs {
            write_json(&format!("{path}.{}.json", fig.id), fig);
        }
    }
}
