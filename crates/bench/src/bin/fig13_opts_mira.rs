//! **Figure 13** — "Performance of different optimizations on one Mira
//! node": Mimir's optimization staircase — baseline, +KV-hint,
//! +partial-reduction, +KV-compression — on the four benchmark datasets.
//! Paper shapes: each step lowers the peak for WC and OC (4× larger max
//! dataset with the full stack); BFS benefits from the hint only (no pr
//! for a map-only job; cps cannot move its partition-phase peak).

use mimir_apps::bfs::BfsOptions;
use mimir_apps::octree::OcOptions;
use mimir_apps::wordcount::WcOptions;
use mimir_bench::runner::WcDataset;
use mimir_bench::sweeps::{bfs_figure, oc_figure, wc_figure, BfsSeries, OcSeries, WcSeries};
use mimir_bench::{print_figure, write_json, HarnessArgs, Platform};

fn main() {
    let args = HarnessArgs::parse();
    let p = Platform::mira_mini();

    let wc = |hint, pr, cps| {
        WcSeries::Mimir(WcOptions {
            hint,
            partial_reduce: pr,
            compress: cps,
        })
    };
    let oc = |hint, pr, cps| {
        OcSeries::Mimir(OcOptions {
            hint,
            partial_reduce: pr,
            compress: cps,
            ..OcOptions::default()
        })
    };
    let wc_series: &[(&str, WcSeries)] = &[
        ("Mimir", wc(false, false, false)),
        ("Mimir (hint)", wc(true, false, false)),
        ("Mimir (hint;pr)", wc(true, true, false)),
        ("Mimir (hint;pr;cps)", wc(true, true, true)),
    ];
    let oc_series: &[(&str, OcSeries)] = &[
        ("Mimir", oc(false, false, false)),
        ("Mimir (hint)", oc(true, false, false)),
        ("Mimir (hint;pr)", oc(true, true, false)),
        ("Mimir (hint;pr;cps)", oc(true, true, true)),
    ];
    // "The BFS algorithm used by Mimir does not support the
    // partial-reduction optimization."
    let bfs_series: &[(&str, BfsSeries)] = &[
        ("Mimir", BfsSeries::Mimir(BfsOptions::default())),
        (
            "Mimir (hint)",
            BfsSeries::Mimir(BfsOptions {
                hint: true,
                compress: false,
            }),
        ),
        ("Mimir (hint;cps)", BfsSeries::Mimir(BfsOptions::all())),
    ];

    let wc_sizes: &[usize] = if args.quick {
        &[256 << 10, 1 << 20]
    } else {
        &[256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20, 8 << 20]
    };
    let oc_points: &[u32] = if args.quick {
        &[14, 16]
    } else {
        &[14, 15, 16, 17, 18, 19]
    };
    let bfs_scales: &[u32] = if args.quick {
        &[8, 10]
    } else {
        &[8, 9, 10, 11, 12, 13]
    };

    let figs = [
        wc_figure(
            "fig13a",
            "Optimization stack, WC (Uniform), Mira",
            &p,
            1,
            WcDataset::Uniform,
            wc_sizes,
            wc_series,
        ),
        wc_figure(
            "fig13b",
            "Optimization stack, WC (Wikipedia), Mira",
            &p,
            1,
            WcDataset::Wikipedia,
            wc_sizes,
            wc_series,
        ),
        oc_figure(
            "fig13c",
            "Optimization stack, OC, Mira",
            &p,
            1,
            oc_points,
            oc_series,
        ),
        bfs_figure(
            "fig13d",
            "Optimization stack, BFS, Mira",
            &p,
            1,
            bfs_scales,
            bfs_series,
        ),
    ];
    for fig in &figs {
        print_figure(fig);
    }
    if let Some(path) = &args.json {
        for fig in &figs {
            write_json(&format!("{path}.{}.json", fig.id), fig);
        }
    }
}
