//! **Shuffle ablation** — throughput of the aggregate hot path under the
//! three [`ShuffleMode`] data paths, isolating the exchange engine from
//! map/convert/reduce costs: each rank pushes fixed-size KVs with
//! uniform-random keys straight through a [`Shuffler`] into a
//! [`KvContainer`] sink.
//!
//! `Legacy` allocates per round (a `Vec` per partition, a `Vec` per
//! message) and re-inserts received KVs one at a time; `ZeroCopy` sends
//! from send-buffer slices through pooled transport buffers and drains
//! whole runs with page-wise memcpy; `Overlapped` additionally posts the
//! sends before the done-allreduce. The acceptance bar for this ablation
//! is ≥1.3× on the heavy 8-rank cell (zero-copy+overlap vs legacy).
//!
//! Writes `BENCH_shuffle.json`; `--quick` runs one small cell as a CI
//! smoke test. Prints a `REGRESSION` marker and exits nonzero if the
//! zero-copy paths lose to the legacy baseline anywhere.

use std::time::Instant;

use mimir_bench::{fmt_size, HarnessArgs};
use mimir_core::{Emitter, KvContainer, KvMeta, Partitioner, ShuffleMode, Shuffler};
use mimir_datagen::rank_rng;
use mimir_mem::MemPool;
use mimir_mpi::run_world;
use mimir_obs::Json;

/// One measured configuration.
struct Cell {
    ranks: usize,
    comm_buf: usize,
    kvs_per_rank: usize,
}

/// One mode's best-of-repeats result for a cell.
struct Measure {
    mode: ShuffleMode,
    /// Aggregate shuffle throughput: total emitted bytes / slowest rank.
    mb_per_s: f64,
    rounds: u64,
    send_allocs: u64,
    bytes_copied: u64,
    max_round_recv_bytes: u64,
}

const KV_BYTES: u64 = 16; // fixed(8,8): small KVs stress per-KV overhead

fn run_cell(cell: &Cell, mode: ShuffleMode, repeats: usize) -> Measure {
    let mut best: Option<Measure> = None;
    for _ in 0..repeats {
        let ranks = cell.ranks;
        let comm_buf = cell.comm_buf;
        let n = cell.kvs_per_rank;
        let out = run_world(ranks, move |comm| {
            let pool = MemPool::unlimited("bench", 1 << 20);
            let meta = KvMeta::fixed(8, 8);
            let sink = KvContainer::new(&pool, meta);
            let mut sh = Shuffler::with_options(
                comm,
                &pool,
                meta,
                comm_buf,
                sink,
                Partitioner::hash(),
                mode,
            )
            .unwrap();
            let mut rng = rank_rng(0x5FFE, sh.rank());
            let t0 = Instant::now();
            for _ in 0..n {
                let key = rng.next_u64().to_le_bytes();
                sh.emit(&key, &[0u8; 8]).unwrap();
            }
            let (_, stats) = sh.finish().unwrap();
            let elapsed = t0.elapsed().as_secs_f64();
            (elapsed, stats, comm.stats())
        });
        let slowest = out.iter().map(|(t, _, _)| *t).fold(0.0, f64::max);
        let total_bytes = (ranks * cell.kvs_per_rank) as u64 * KV_BYTES;
        let m = Measure {
            mode,
            mb_per_s: total_bytes as f64 / (1 << 20) as f64 / slowest,
            rounds: out[0].1.rounds,
            send_allocs: out.iter().map(|(_, _, c)| c.send_allocs).sum(),
            bytes_copied: out.iter().map(|(_, _, c)| c.bytes_copied).sum(),
            max_round_recv_bytes: out
                .iter()
                .map(|(_, s, _)| s.max_round_recv_bytes)
                .max()
                .unwrap(),
        };
        if best.as_ref().is_none_or(|b| m.mb_per_s > b.mb_per_s) {
            best = Some(m);
        }
    }
    best.unwrap()
}

fn mode_name(mode: ShuffleMode) -> &'static str {
    match mode {
        ShuffleMode::Legacy => "legacy",
        ShuffleMode::ZeroCopy => "zero-copy",
        ShuffleMode::Overlapped => "overlapped",
        ShuffleMode::Adaptive => "adaptive",
    }
}

fn main() {
    let args = HarnessArgs::parse();
    let (cells, repeats): (Vec<Cell>, usize) = if args.quick {
        (
            vec![Cell {
                ranks: 2,
                comm_buf: 64 << 10,
                kvs_per_rank: 30_000,
            }],
            2,
        )
    } else {
        let mut cells = Vec::new();
        for ranks in [2usize, 4, 8] {
            for comm_buf in [64 << 10, 256 << 10, 1 << 20] {
                cells.push(Cell {
                    ranks,
                    comm_buf,
                    // Heavy exchange: each rank emits 8 send-buffers'
                    // worth, so every cell runs ~9 rounds and the pooled
                    // steady state dominates warm-up.
                    kvs_per_rank: 8 * comm_buf / KV_BYTES as usize,
                });
            }
        }
        (cells, 3)
    };

    let modes = [
        ShuffleMode::Legacy,
        ShuffleMode::ZeroCopy,
        ShuffleMode::Overlapped,
    ];
    println!(
        "{:<6}{:>8}{:>10}{:>12}{:>12}{:>10}{:>12}{:>14}",
        "ranks", "buf", "mode", "MB/s", "speedup", "rounds", "send_allocs", "bytes_copied"
    );

    let mut rows = Vec::new();
    let mut regression = false;
    let mut heavy8_speedup: Option<f64> = None;
    for cell in &cells {
        let measures: Vec<Measure> = modes.iter().map(|&m| run_cell(cell, m, repeats)).collect();
        let legacy = measures[0].mb_per_s;
        let best_new = measures[1].mb_per_s.max(measures[2].mb_per_s);
        if best_new < legacy {
            regression = true;
        }
        if cell.ranks == 8 && cell.comm_buf == (256 << 10) {
            heavy8_speedup = Some(best_new / legacy);
        }
        for m in &measures {
            let speedup = m.mb_per_s / legacy;
            println!(
                "{:<6}{:>8}{:>10}{:>12.1}{:>11.2}x{:>10}{:>12}{:>14}",
                cell.ranks,
                fmt_size(cell.comm_buf),
                mode_name(m.mode),
                m.mb_per_s,
                speedup,
                m.rounds,
                m.send_allocs,
                m.bytes_copied
            );
            rows.push(Json::obj(vec![
                ("ranks", Json::Num(cell.ranks as f64)),
                ("comm_buf", Json::Num(cell.comm_buf as f64)),
                ("kvs_per_rank", Json::Num(cell.kvs_per_rank as f64)),
                ("mode", Json::Str(mode_name(m.mode).into())),
                ("mb_per_s", Json::Num(m.mb_per_s)),
                ("speedup_vs_legacy", Json::Num(speedup)),
                ("rounds", Json::Num(m.rounds as f64)),
                ("send_allocs", Json::Num(m.send_allocs as f64)),
                ("bytes_copied", Json::Num(m.bytes_copied as f64)),
                (
                    "max_round_recv_bytes",
                    Json::Num(m.max_round_recv_bytes as f64),
                ),
            ]));
        }
    }

    let doc = Json::obj(vec![
        ("bench", Json::Str("shuffle_ablation".into())),
        ("quick", Json::Bool(args.quick)),
        ("kv_meta", Json::Str("fixed(8,8)".into())),
        (
            "heavy8_speedup",
            heavy8_speedup.map_or(Json::Null, Json::Num),
        ),
        ("regression", Json::Bool(regression)),
        ("cells", Json::Arr(rows)),
    ]);
    let path = args.json.unwrap_or_else(|| "BENCH_shuffle.json".into());
    std::fs::write(&path, doc.to_pretty()).expect("writing bench JSON");
    println!("wrote {path}");
    if let Some(s) = heavy8_speedup {
        println!("heavy-8 (8 ranks, 256K buffers) speedup vs legacy: {s:.2}x");
    }
    if regression {
        println!("REGRESSION: zero-copy shuffle slower than legacy baseline");
        std::process::exit(1);
    }
}
