//! Smoke tests for the figure runners on a micro platform, so the
//! harness code paths are covered by `cargo test` and not only by the
//! long-running binaries.

use mimir_apps::bfs::BfsOptions;
use mimir_apps::octree::OcOptions;
use mimir_apps::wordcount::WcOptions;
use mimir_bench::runner::{
    run_bfs_mimir, run_bfs_mrmpi, run_oc_mimir, run_oc_mrmpi, run_wc_mimir, run_wc_mrmpi, WcDataset,
};
use mimir_bench::{Platform, Status};

/// A 2-rank micro platform for fast tests.
fn micro() -> Platform {
    Platform::comet_mini().thin(2)
}

#[test]
fn wc_runners_in_memory_regime() {
    let p = micro();
    for dataset in [WcDataset::Uniform, WcDataset::Wikipedia] {
        let mimir = run_wc_mimir(&p, 1, dataset, 64 << 10, WcOptions::default());
        assert_eq!(mimir.status, Status::InMemory, "{dataset:?}");
        assert!(mimir.time_s.is_finite() && mimir.time_s > 0.0);
        assert!(mimir.peak_node_bytes > 0);
        assert!(mimir.kv_bytes > 0);

        let mrmpi = run_wc_mrmpi(&p, 1, dataset, 64 << 10, p.mrmpi_page_large, false);
        assert_eq!(mrmpi.status, Status::InMemory, "{dataset:?}");
        assert!(mrmpi.peak_node_bytes >= 7 * p.mrmpi_page_large);
    }
}

#[test]
fn wc_runner_detects_spill_and_oom() {
    let p = micro();
    // Tiny pages on a big dataset → spill.
    let spilled = run_wc_mrmpi(
        &p,
        1,
        WcDataset::Uniform,
        1 << 20,
        p.mrmpi_page_small,
        false,
    );
    assert_eq!(spilled.status, Status::Spilled);
    assert!(spilled.modeled_io_s > 0.0);

    // A dataset far beyond the thin node budget → Mimir OOM.
    let oom = run_wc_mimir(&p, 1, WcDataset::Uniform, 16 << 20, WcOptions::default());
    assert_eq!(oom.status, Status::Oom);
    assert!(oom.time_s.is_nan());
}

#[test]
fn oc_and_bfs_runners() {
    let p = micro();
    let oc = run_oc_mimir(&p, 1, 1 << 12, OcOptions::default());
    assert_eq!(oc.status, Status::InMemory);
    let oc_mr = run_oc_mrmpi(&p, 1, 1 << 12, p.mrmpi_page_large, true);
    assert_eq!(oc_mr.status, Status::InMemory);

    let bfs = run_bfs_mimir(&p, 1, 8, BfsOptions::all());
    assert_eq!(bfs.status, Status::InMemory);
    let bfs_mr = run_bfs_mrmpi(&p, 1, 8, p.mrmpi_page_large, false);
    assert_eq!(bfs_mr.status, Status::InMemory);
}

#[test]
fn multi_node_runner() {
    let p = micro();
    let out = run_wc_mimir(&p, 3, WcDataset::Uniform, 96 << 10, WcOptions::all());
    assert_eq!(out.status, Status::InMemory);
}

#[test]
fn outcome_json_roundtrips_including_oom() {
    let p = micro();
    let oom = run_wc_mimir(&p, 1, WcDataset::Uniform, 16 << 20, WcOptions::default());
    let json = oom.to_json().to_string();
    let parsed = mimir_obs::Json::parse(&json).unwrap();
    let back = mimir_bench::RunOutcome::from_json(&parsed).unwrap();
    assert_eq!(back.status, Status::Oom);
    assert!(back.time_s.is_nan(), "NaN survives the JSON round trip");
}
