//! Spill-store stress tests: arbitrary chunk sequences round-trip, and
//! per-rank stores operate concurrently without interference. Driven by
//! a seeded PRNG so failures replay deterministically.

use mimir_datagen::rank_rng;
use mimir_io::{IoModel, SpillStore};

#[test]
fn arbitrary_chunk_sequences_roundtrip() {
    for case in 0..32u64 {
        let mut rng = rank_rng(0x0005_B111, case as usize);
        let chunks: Vec<Vec<u8>> = (0..rng.gen_range(0..30))
            .map(|_| {
                (0..rng.gen_range(0..2000))
                    .map(|_| rng.gen_range(0..256) as u8)
                    .collect()
            })
            .collect();
        let store = SpillStore::new_temp("prop", IoModel::free()).unwrap();
        let mut f = store.create("chunks").unwrap();
        for c in &chunks {
            f.write_chunk(c).unwrap();
        }
        f.finish().unwrap();
        let mut r = f.read_chunks().unwrap();
        for expected in &chunks {
            let got = r.next_chunk().unwrap().expect("chunk present");
            assert_eq!(&got, expected, "case {case}");
        }
        assert!(r.next_chunk().unwrap().is_none(), "case {case}");
    }
}

#[test]
fn concurrent_per_rank_stores_do_not_interfere() {
    let model = IoModel::free();
    std::thread::scope(|s| {
        for rank in 0..8usize {
            let model = model.clone();
            s.spawn(move || {
                let store = SpillStore::new_temp(&format!("rank{rank}"), model).unwrap();
                let mut files = Vec::new();
                for round in 0..5 {
                    let mut f = store.create("data").unwrap();
                    for i in 0..50u32 {
                        let payload = vec![(rank * 10 + round) as u8; i as usize % 97];
                        f.write_chunk(&payload).unwrap();
                    }
                    f.finish().unwrap();
                    files.push(f);
                }
                for (round, f) in files.iter().enumerate() {
                    let mut r = f.read_chunks().unwrap();
                    let mut n = 0;
                    while let Some(chunk) = r.next_chunk().unwrap() {
                        assert!(chunk.iter().all(|&b| b == (rank * 10 + round) as u8));
                        n += 1;
                    }
                    assert_eq!(n, 50);
                }
            });
        }
    });
    // Shared model saw all the traffic.
    assert_eq!(model.stats().write_ops, 8 * 5 * 50);
}

#[test]
fn many_files_in_one_store() {
    let store = SpillStore::new_temp("many", IoModel::free()).unwrap();
    let mut files = Vec::new();
    for i in 0..100u32 {
        let mut f = store.create("f").unwrap();
        f.write_chunk(&i.to_le_bytes()).unwrap();
        f.finish().unwrap();
        files.push(f);
    }
    for (i, f) in files.iter().enumerate() {
        let mut r = f.read_chunks().unwrap();
        let c = r.next_chunk().unwrap().unwrap();
        assert_eq!(u32::from_le_bytes(c.try_into().unwrap()), i as u32);
    }
}

#[test]
fn spill_lifecycle_is_traced() {
    use mimir_obs::{install, take, EventKind, Recorder};
    install(Recorder::new(0, 256));
    {
        let store = SpillStore::new_temp("traced", IoModel::free()).unwrap();
        let mut f = store.create("kv").unwrap();
        f.write_chunk(&[9u8; 100]).unwrap();
        f.write_chunk(&[9u8; 50]).unwrap();
        f.finish().unwrap();
        f.finish().unwrap(); // idempotent: second finish emits nothing
    }
    let r = take().unwrap();
    let evs = r.events();
    let begins: Vec<_> = evs
        .iter()
        .filter(|e| e.kind == EventKind::SpillBegin)
        .collect();
    let ends: Vec<_> = evs
        .iter()
        .filter(|e| e.kind == EventKind::SpillEnd)
        .collect();
    assert_eq!(begins.len(), 1);
    assert_eq!(ends.len(), 1, "double finish emits one end event");
    assert_eq!(begins[0].a, ends[0].a, "matching spill id");
    assert_eq!(ends[0].b, 150, "payload bytes on the end event");
}
