//! Spill-store stress and property tests: arbitrary chunk sequences
//! round-trip, and per-rank stores operate concurrently without
//! interference.

use mimir_io::{IoModel, SpillStore};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn arbitrary_chunk_sequences_roundtrip(
        chunks in prop::collection::vec(
            prop::collection::vec(proptest::num::u8::ANY, 0..2000),
            0..30,
        ),
    ) {
        let store = SpillStore::new_temp("prop", IoModel::free()).unwrap();
        let mut f = store.create("chunks").unwrap();
        for c in &chunks {
            f.write_chunk(c).unwrap();
        }
        f.finish().unwrap();
        let mut r = f.read_chunks().unwrap();
        for expected in &chunks {
            let got = r.next_chunk().unwrap().expect("chunk present");
            prop_assert_eq!(&got, expected);
        }
        prop_assert!(r.next_chunk().unwrap().is_none());
    }
}

#[test]
fn concurrent_per_rank_stores_do_not_interfere() {
    let model = IoModel::free();
    std::thread::scope(|s| {
        for rank in 0..8usize {
            let model = model.clone();
            s.spawn(move || {
                let store = SpillStore::new_temp(&format!("rank{rank}"), model).unwrap();
                let mut files = Vec::new();
                for round in 0..5 {
                    let mut f = store.create("data").unwrap();
                    for i in 0..50u32 {
                        let payload = vec![(rank * 10 + round) as u8; i as usize % 97];
                        f.write_chunk(&payload).unwrap();
                    }
                    f.finish().unwrap();
                    files.push(f);
                }
                for (round, f) in files.iter().enumerate() {
                    let mut r = f.read_chunks().unwrap();
                    let mut n = 0;
                    while let Some(chunk) = r.next_chunk().unwrap() {
                        assert!(chunk.iter().all(|&b| b == (rank * 10 + round) as u8));
                        n += 1;
                    }
                    assert_eq!(n, 50);
                }
            });
        }
    });
    // Shared model saw all the traffic.
    assert_eq!(model.stats().write_ops, 8 * 5 * 50);
}

#[test]
fn many_files_in_one_store() {
    let store = SpillStore::new_temp("many", IoModel::free()).unwrap();
    let mut files = Vec::new();
    for i in 0..100u32 {
        let mut f = store.create("f").unwrap();
        f.write_chunk(&i.to_le_bytes()).unwrap();
        f.finish().unwrap();
        files.push(f);
    }
    for (i, f) in files.iter().enumerate() {
        let mut r = f.read_chunks().unwrap();
        let c = r.next_chunk().unwrap().unwrap();
        assert_eq!(u32::from_le_bytes(c.try_into().unwrap()), i as u32);
    }
}
