use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::{IoError, Result};

/// Cost-model parameters for the simulated parallel file system.
///
/// The defaults are scaled alongside the platform presets (the
/// reproduction scales the paper's sizes GB→MB): what matters for
/// reproducing the paper's *shapes* is the ratio between how fast a node
/// can touch its own DRAM and how fast it can push pages through the
/// shared PFS, which on Comet/Mira is three to four orders of magnitude.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoModelConfig {
    /// Aggregate read bandwidth of the shared file system, bytes/second.
    pub read_bw: f64,
    /// Aggregate write bandwidth, bytes/second.
    pub write_bw: f64,
    /// Fixed cost per operation (metadata round trip to the PFS servers;
    /// on Mira, the trip through the 1:128 I/O forwarding node).
    pub op_latency: Duration,
}

impl IoModelConfig {
    /// A Lustre-like shared file system scaled for MB-sized experiments
    /// (Comet-mini preset).
    pub fn lustre_scaled() -> Self {
        Self {
            read_bw: 64.0 * 1024.0 * 1024.0,
            write_bw: 12.0 * 1024.0 * 1024.0,
            op_latency: Duration::from_micros(500),
        }
    }

    /// A GPFS-behind-forwarding-nodes file system scaled for MB-sized
    /// experiments (Mira-mini preset); higher per-op latency, lower
    /// bandwidth per node.
    pub fn gpfs_scaled() -> Self {
        Self {
            read_bw: 16.0 * 1024.0 * 1024.0,
            write_bw: 8.0 * 1024.0 * 1024.0,
            op_latency: Duration::from_millis(2),
        }
    }

    /// Free I/O, for tests that exercise spill mechanics without caring
    /// about cost.
    pub fn free() -> Self {
        Self {
            read_bw: f64::INFINITY,
            write_bw: f64::INFINITY,
            op_latency: Duration::ZERO,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.read_bw <= 0.0
            || self.write_bw <= 0.0
            || self.read_bw.is_nan()
            || self.write_bw.is_nan()
        {
            return Err(IoError::InvalidConfig("bandwidths must be positive".into()));
        }
        Ok(())
    }
}

/// Accumulates the modeled cost of every spill/input operation.
///
/// One `IoModel` is shared (via `Arc`-style cloning) by all ranks of a
/// simulated machine, so its totals model a *shared* bottleneck: the sum
/// of all modeled charges is the time the PFS spent serving the job, which
/// is the dominant term once a framework starts spilling.
///
/// ```
/// use mimir_io::{IoModel, IoModelConfig};
/// use std::time::Duration;
///
/// let model = IoModel::new(IoModelConfig {
///     read_bw: 1024.0 * 1024.0, // 1 MiB/s
///     write_bw: 1024.0 * 1024.0,
///     op_latency: Duration::ZERO,
/// }).unwrap();
/// model.charge_write(512 * 1024); // half a MiB
/// assert!((model.modeled_time().as_secs_f64() - 0.5).abs() < 1e-9);
/// ```
#[derive(Clone)]
pub struct IoModel {
    inner: Arc<ModelInner>,
}

struct ModelInner {
    cfg: IoModelConfig,
    /// When set, every charge also *sleeps* its modeled duration, turning
    /// the accounting model into a wall-clock stall — see
    /// [`IoModel::set_paced`].
    paced: AtomicBool,
    modeled_nanos: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    read_ops: AtomicU64,
    write_ops: AtomicU64,
}

/// Snapshot of an [`IoModel`]'s counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoStats {
    /// Total modeled time spent in the I/O subsystem.
    pub modeled: Duration,
    /// Bytes read through the model.
    pub bytes_read: u64,
    /// Bytes written through the model.
    pub bytes_written: u64,
    /// Read operations.
    pub read_ops: u64,
    /// Write operations.
    pub write_ops: u64,
}

impl IoModel {
    /// Creates a model from `cfg`.
    ///
    /// # Errors
    /// [`IoError::InvalidConfig`] for non-positive bandwidths.
    pub fn new(cfg: IoModelConfig) -> Result<Self> {
        cfg.validate()?;
        Ok(Self {
            inner: Arc::new(ModelInner {
                cfg,
                paced: AtomicBool::new(false),
                modeled_nanos: AtomicU64::new(0),
                bytes_read: AtomicU64::new(0),
                bytes_written: AtomicU64::new(0),
                read_ops: AtomicU64::new(0),
                write_ops: AtomicU64::new(0),
            }),
        })
    }

    /// A model that charges nothing.
    pub fn free() -> Self {
        Self::new(IoModelConfig::free()).expect("free config is valid")
    }

    /// Charges a write of `bytes` and returns the modeled duration of this
    /// single operation.
    pub fn charge_write(&self, bytes: usize) -> Duration {
        self.inner
            .bytes_written
            .fetch_add(bytes as u64, Ordering::Relaxed);
        self.inner.write_ops.fetch_add(1, Ordering::Relaxed);
        self.charge(bytes, self.inner.cfg.write_bw)
    }

    /// Charges a read of `bytes` and returns the modeled duration of this
    /// single operation.
    pub fn charge_read(&self, bytes: usize) -> Duration {
        self.inner
            .bytes_read
            .fetch_add(bytes as u64, Ordering::Relaxed);
        self.inner.read_ops.fetch_add(1, Ordering::Relaxed);
        self.charge(bytes, self.inner.cfg.read_bw)
    }

    /// Total modeled time accumulated so far.
    pub fn modeled_time(&self) -> Duration {
        Duration::from_nanos(self.inner.modeled_nanos.load(Ordering::Acquire))
    }

    /// Snapshot of all counters.
    pub fn stats(&self) -> IoStats {
        IoStats {
            modeled: self.modeled_time(),
            bytes_read: self.inner.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.inner.bytes_written.load(Ordering::Relaxed),
            read_ops: self.inner.read_ops.load(Ordering::Relaxed),
            write_ops: self.inner.write_ops.load(Ordering::Relaxed),
        }
    }

    /// Resets the accumulated time and counters, for phase-scoped
    /// measurement.
    pub fn reset(&self) {
        self.inner.modeled_nanos.store(0, Ordering::Release);
        self.inner.bytes_read.store(0, Ordering::Relaxed);
        self.inner.bytes_written.store(0, Ordering::Relaxed);
        self.inner.read_ops.store(0, Ordering::Relaxed);
        self.inner.write_ops.store(0, Ordering::Relaxed);
    }

    /// The configuration this model charges with.
    pub fn config(&self) -> IoModelConfig {
        self.inner.cfg
    }

    /// Turns pacing on or off (shared by all clones of this model).
    ///
    /// Unpaced (the default), charges only *account* modeled time — runs
    /// finish as fast as the CPU allows and the modeled PFS time is a
    /// number in the report. Paced, every charge also sleeps its modeled
    /// duration on the calling thread, so an I/O-bound phase really stalls
    /// the rank that issued it. That is what gives a multi-job scheduler
    /// something to overlap: while one job sleeps in its ingest reads,
    /// another job's compute proceeds — the same latency-hiding the paper's
    /// platforms get from asynchronous PFS traffic.
    pub fn set_paced(&self, paced: bool) {
        self.inner.paced.store(paced, Ordering::Release);
    }

    /// Whether charges currently sleep their modeled duration.
    pub fn is_paced(&self) -> bool {
        self.inner.paced.load(Ordering::Acquire)
    }

    fn charge(&self, bytes: usize, bw: f64) -> Duration {
        let transfer = if bw.is_finite() {
            Duration::from_secs_f64(bytes as f64 / bw)
        } else {
            Duration::ZERO
        };
        let total = transfer + self.inner.cfg.op_latency;
        self.inner
            .modeled_nanos
            .fetch_add(total.as_nanos() as u64, Ordering::AcqRel);
        if total > Duration::ZERO && self.is_paced() {
            std::thread::sleep(total);
        }
        total
    }
}

impl std::fmt::Debug for IoModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IoModel")
            .field("config", &self.inner.cfg)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let m = IoModel::new(IoModelConfig {
            read_bw: 1000.0,
            write_bw: 500.0,
            op_latency: Duration::from_millis(1),
        })
        .unwrap();
        let w = m.charge_write(500); // 1 s transfer + 1 ms latency
        assert!((w.as_secs_f64() - 1.001).abs() < 1e-6);
        let r = m.charge_read(1000); // 1 s + 1 ms
        assert!((r.as_secs_f64() - 1.001).abs() < 1e-6);
        assert!((m.modeled_time().as_secs_f64() - 2.002).abs() < 1e-3);
        let s = m.stats();
        assert_eq!(s.bytes_written, 500);
        assert_eq!(s.bytes_read, 1000);
        assert_eq!((s.read_ops, s.write_ops), (1, 1));
    }

    #[test]
    fn free_model_charges_nothing() {
        let m = IoModel::free();
        assert_eq!(m.charge_write(1 << 30), Duration::ZERO);
        assert_eq!(m.modeled_time(), Duration::ZERO);
    }

    #[test]
    fn shared_clones_share_counters() {
        let m = IoModel::new(IoModelConfig::lustre_scaled()).unwrap();
        let m2 = m.clone();
        m.charge_write(1024);
        m2.charge_write(1024);
        assert_eq!(m.stats().bytes_written, 2048);
    }

    #[test]
    fn invalid_bandwidth_rejected() {
        let cfg = IoModelConfig {
            read_bw: 0.0,
            write_bw: 1.0,
            op_latency: Duration::ZERO,
        };
        assert!(IoModel::new(cfg).is_err());
    }

    #[test]
    fn paced_model_sleeps_the_modeled_time() {
        let m = IoModel::new(IoModelConfig {
            read_bw: f64::INFINITY,
            write_bw: f64::INFINITY,
            op_latency: Duration::from_millis(20),
        })
        .unwrap();
        let quick = std::time::Instant::now();
        m.charge_read(1);
        assert!(
            quick.elapsed() < Duration::from_millis(15),
            "unpaced is free"
        );
        m.set_paced(true);
        let slow = std::time::Instant::now();
        m.charge_read(1);
        assert!(slow.elapsed() >= Duration::from_millis(20), "paced stalls");
    }

    #[test]
    fn reset_zeroes_counters() {
        let m = IoModel::new(IoModelConfig::gpfs_scaled()).unwrap();
        m.charge_read(4096);
        m.reset();
        assert_eq!(m.stats().bytes_read, 0);
        assert_eq!(m.modeled_time(), Duration::ZERO);
    }
}
