use std::fmt;

/// Errors from the I/O subsystem.
#[derive(Debug)]
pub enum IoError {
    /// An underlying filesystem operation failed.
    Os {
        /// What the subsystem was doing.
        context: String,
        /// The OS error.
        source: std::io::Error,
    },
    /// A spill file's framing was corrupt (truncated chunk, bad length).
    CorruptSpill(String),
    /// Invalid configuration (zero bandwidth, no ranks, …).
    InvalidConfig(String),
}

impl IoError {
    pub(crate) fn os(context: impl Into<String>) -> impl FnOnce(std::io::Error) -> IoError {
        let context = context.into();
        move |source| IoError::Os { context, source }
    }
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Os { context, source } => write!(f, "{context}: {source}"),
            IoError::CorruptSpill(msg) => write!(f, "corrupt spill file: {msg}"),
            IoError::InvalidConfig(msg) => write!(f, "invalid I/O configuration: {msg}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Os { source, .. } => Some(source),
            _ => None,
        }
    }
}
