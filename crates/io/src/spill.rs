use std::fs::{self, File};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::{IoError, IoModel, Result};

/// A directory of spill files with RAII cleanup.
///
/// Each rank's out-of-core pages go through a store; every write/read is
/// charged to the shared [`IoModel`], because on the paper's platforms the
/// spill target is the shared parallel file system, not a local disk.
pub struct SpillStore {
    dir: PathBuf,
    model: IoModel,
    counter: Arc<AtomicU64>,
    /// Total payload bytes written through this store's files, so per-job
    /// (per-communicator) disk usage is reportable while the job runs.
    bytes_written: Arc<AtomicU64>,
    owns_dir: bool,
}

impl SpillStore {
    /// Creates a store in a fresh unique subdirectory of the system temp
    /// directory; the directory is removed when the store drops.
    ///
    /// Shorthand for [`Self::new_temp_scoped`] with the default `"world"`
    /// scope.
    pub fn new_temp(label: &str, model: IoModel) -> Result<Self> {
        Self::new_temp_scoped("world", label, model)
    }

    /// Creates a temp-directory store whose directory name carries the
    /// owning world/communicator name (e.g. `Comm::name()`), so the spill
    /// dirs of concurrent jobs are attributable at a glance:
    /// `mimir-spill-<scope>-<label>-<pid>-<token>`.
    pub fn new_temp_scoped(scope: &str, label: &str, model: IoModel) -> Result<Self> {
        // Communicator names contain dots ("world.job3"); keep those, but
        // strip path separators and whitespace defensively.
        let scope: String = scope
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '.' || c == '-' || c == '_' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        let unique = format!(
            "mimir-spill-{scope}-{label}-{}-{:x}",
            std::process::id(),
            fresh_token()
        );
        let dir = std::env::temp_dir().join(unique);
        fs::create_dir_all(&dir).map_err(IoError::os(format!("creating spill dir {dir:?}")))?;
        Ok(Self {
            dir,
            model,
            counter: Arc::new(AtomicU64::new(0)),
            bytes_written: Arc::new(AtomicU64::new(0)),
            owns_dir: true,
        })
    }

    /// Creates a store in an existing directory the caller owns.
    pub fn in_dir(dir: impl Into<PathBuf>, model: IoModel) -> Self {
        Self {
            dir: dir.into(),
            model,
            counter: Arc::new(AtomicU64::new(0)),
            bytes_written: Arc::new(AtomicU64::new(0)),
            owns_dir: false,
        }
    }

    /// Opens a new spill file for writing.
    pub fn create(&self, label: &str) -> Result<SpillFile> {
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        let path = self.dir.join(format!("{label}-{n}.spill"));
        let file =
            File::create(&path).map_err(IoError::os(format!("creating spill file {path:?}")))?;
        mimir_obs::emit(mimir_obs::EventKind::SpillBegin, n, 0);
        Ok(SpillFile {
            path,
            id: n,
            writer: Some(BufWriter::new(file)),
            model: self.model.clone(),
            bytes: 0,
            chunks: 0,
            store_bytes: Arc::clone(&self.bytes_written),
        })
    }

    /// The directory the store's files live in.
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }

    /// Total payload bytes written through this store so far (across all
    /// its files, including deleted ones) — the per-job disk usage number.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }

    /// The cost model this store charges.
    pub fn model(&self) -> &IoModel {
        &self.model
    }
}

impl Drop for SpillStore {
    fn drop(&mut self) {
        if self.owns_dir {
            let _ = fs::remove_dir_all(&self.dir);
        }
    }
}

/// A chunked, length-prefixed spill file.
///
/// Writers append `[u64 le length][payload]` frames; readers stream the
/// frames back in order. Both directions are charged to the I/O model.
pub struct SpillFile {
    path: PathBuf,
    /// Store-wide sequence number, used as the trace-event spill id.
    id: u64,
    writer: Option<BufWriter<File>>,
    model: IoModel,
    bytes: u64,
    chunks: u64,
    /// The owning store's cumulative byte counter.
    store_bytes: Arc<AtomicU64>,
}

impl SpillFile {
    /// Appends one chunk.
    ///
    /// # Errors
    /// OS write failures, or use after [`Self::finish`].
    pub fn write_chunk(&mut self, data: &[u8]) -> Result<()> {
        let w = self
            .writer
            .as_mut()
            .ok_or_else(|| IoError::CorruptSpill("write after finish".into()))?;
        w.write_all(&(data.len() as u64).to_le_bytes())
            .and_then(|()| w.write_all(data))
            .map_err(IoError::os(format!(
                "writing spill chunk to {:?}",
                self.path
            )))?;
        self.model.charge_write(data.len() + 8);
        self.bytes += data.len() as u64;
        self.store_bytes
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        self.chunks += 1;
        Ok(())
    }

    /// Flushes and closes the write side. Further writes fail; reads are
    /// now allowed.
    pub fn finish(&mut self) -> Result<()> {
        if let Some(mut w) = self.writer.take() {
            w.flush()
                .map_err(IoError::os(format!("flushing spill file {:?}", self.path)))?;
            mimir_obs::emit(mimir_obs::EventKind::SpillEnd, self.id, self.bytes);
        }
        Ok(())
    }

    /// Streams the chunks back in write order.
    ///
    /// # Errors
    /// Fails if the file is still open for writing or cannot be opened.
    pub fn read_chunks(&self) -> Result<SpillReader> {
        if self.writer.is_some() {
            return Err(IoError::CorruptSpill("read_chunks before finish".into()));
        }
        let file = File::open(&self.path)
            .map_err(IoError::os(format!("opening spill file {:?}", self.path)))?;
        Ok(SpillReader {
            reader: BufReader::new(file),
            model: self.model.clone(),
            path: self.path.clone(),
        })
    }

    /// Payload bytes written (excluding framing).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Number of chunks written.
    pub fn chunks(&self) -> u64 {
        self.chunks
    }

    /// Deletes the backing file.
    pub fn delete(mut self) -> Result<()> {
        self.finish()?;
        fs::remove_file(&self.path)
            .map_err(IoError::os(format!("deleting spill file {:?}", self.path)))
    }
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        let _ = self.finish();
        let _ = fs::remove_file(&self.path);
    }
}

/// Streaming reader over a [`SpillFile`]'s chunks.
pub struct SpillReader {
    reader: BufReader<File>,
    model: IoModel,
    path: PathBuf,
}

impl SpillReader {
    /// Reads the next chunk, or `Ok(None)` at end of file.
    ///
    /// # Errors
    /// OS failures or truncated framing.
    pub fn next_chunk(&mut self) -> Result<Option<Vec<u8>>> {
        let mut len_buf = [0u8; 8];
        match self.reader.read_exact(&mut len_buf) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(IoError::os(format!("reading spill {:?}", self.path))(e)),
        }
        let len = u64::from_le_bytes(len_buf) as usize;
        let mut data = vec![0u8; len];
        self.reader.read_exact(&mut data).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                IoError::CorruptSpill(format!("truncated chunk in {:?}", self.path))
            } else {
                IoError::os(format!("reading spill {:?}", self.path))(e)
            }
        })?;
        self.model.charge_read(len + 8);
        Ok(Some(data))
    }
}

fn fresh_token() -> u64 {
    static TOKEN: AtomicU64 = AtomicU64::new(0);
    // Mix a counter with the thread id hash so parallel tests in one
    // process cannot collide.
    let c = TOKEN.fetch_add(1, Ordering::Relaxed);
    let t = std::thread::current().id();
    let mut h = std::collections::hash_map::DefaultHasher::new();
    use std::hash::{Hash, Hasher};
    t.hash(&mut h);
    h.finish() ^ (c << 32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_chunks_in_order() {
        let store = SpillStore::new_temp("t", IoModel::free()).unwrap();
        let mut f = store.create("kv").unwrap();
        f.write_chunk(b"alpha").unwrap();
        f.write_chunk(b"").unwrap();
        f.write_chunk(&[7u8; 10_000]).unwrap();
        f.finish().unwrap();

        let mut r = f.read_chunks().unwrap();
        assert_eq!(r.next_chunk().unwrap().unwrap(), b"alpha");
        assert_eq!(r.next_chunk().unwrap().unwrap(), b"");
        assert_eq!(r.next_chunk().unwrap().unwrap(), vec![7u8; 10_000]);
        assert!(r.next_chunk().unwrap().is_none());
        assert_eq!(f.bytes(), 5 + 10_000);
        assert_eq!(f.chunks(), 3);
    }

    #[test]
    fn read_before_finish_is_refused() {
        let store = SpillStore::new_temp("t", IoModel::free()).unwrap();
        let mut f = store.create("kv").unwrap();
        f.write_chunk(b"x").unwrap();
        assert!(matches!(f.read_chunks(), Err(IoError::CorruptSpill(_))));
    }

    #[test]
    fn io_is_charged_to_model() {
        let model = IoModel::new(crate::IoModelConfig {
            read_bw: 1024.0,
            write_bw: 1024.0,
            op_latency: std::time::Duration::ZERO,
        })
        .unwrap();
        let store = SpillStore::new_temp("t", model.clone()).unwrap();
        let mut f = store.create("kv").unwrap();
        f.write_chunk(&[0u8; 1016]).unwrap(); // +8 framing = 1024
        f.finish().unwrap();
        let mut r = f.read_chunks().unwrap();
        while r.next_chunk().unwrap().is_some() {}
        let s = model.stats();
        assert_eq!(s.bytes_written, 1024);
        assert_eq!(s.bytes_read, 1024);
        assert!((model.modeled_time().as_secs_f64() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn store_drop_removes_directory() {
        let dir;
        {
            let store = SpillStore::new_temp("t", IoModel::free()).unwrap();
            dir = store.dir.clone();
            let mut f = store.create("kv").unwrap();
            f.write_chunk(b"data").unwrap();
            f.finish().unwrap();
            assert!(dir.exists());
            drop(f);
        }
        assert!(!dir.exists());
    }

    #[test]
    fn multiple_files_get_distinct_paths() {
        let store = SpillStore::new_temp("t", IoModel::free()).unwrap();
        let a = store.create("x").unwrap();
        let b = store.create("x").unwrap();
        assert_ne!(a.path, b.path);
    }

    #[test]
    fn scoped_store_names_dir_after_communicator() {
        let store = SpillStore::new_temp_scoped("world.job3", "wc", IoModel::free()).unwrap();
        let dirname = store
            .dir()
            .file_name()
            .unwrap()
            .to_string_lossy()
            .into_owned();
        assert!(
            dirname.starts_with("mimir-spill-world.job3-wc-"),
            "dir: {dirname}"
        );
        // Path separators in a hostile scope must not escape the temp dir.
        let store = SpillStore::new_temp_scoped("a/../b", "wc", IoModel::free()).unwrap();
        let dirname = store
            .dir()
            .file_name()
            .unwrap()
            .to_string_lossy()
            .into_owned();
        assert!(
            dirname.starts_with("mimir-spill-a_.._b-wc-"),
            "dir: {dirname}"
        );
    }

    #[test]
    fn store_tracks_cumulative_bytes_across_files() {
        let store = SpillStore::new_temp("t", IoModel::free()).unwrap();
        let mut a = store.create("x").unwrap();
        a.write_chunk(&[1u8; 100]).unwrap();
        a.finish().unwrap();
        let mut b = store.create("y").unwrap();
        b.write_chunk(&[2u8; 50]).unwrap();
        b.delete().unwrap();
        assert_eq!(store.bytes_written(), 150, "deleted files still count");
    }
}
