//! Input splitting: sharding a byte stream across ranks at record
//! boundaries.
//!
//! Both frameworks read file input the same way the originals do: the byte
//! range of the input is divided evenly across ranks, and each rank's range
//! is then snapped to record boundaries so that no record is processed
//! twice or split in half. The ownership rule is the standard one (shared
//! by Hadoop splits and MR-MPI's file reader): a rank owns exactly the
//! records whose *first byte* falls inside its raw byte range.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::ops::Range;
use std::path::Path;

use crate::{IoError, IoModel, Result};

/// Evenly divides `total` bytes into `parts` contiguous ranges.
/// The first `total % parts` ranges get one extra byte.
pub fn byte_ranges(total: u64, parts: usize) -> Vec<Range<u64>> {
    assert!(parts > 0, "need at least one part");
    let base = total / parts as u64;
    let extra = total % parts as u64;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0u64;
    for i in 0..parts as u64 {
        let len = base + u64::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Snaps a raw byte range to record boundaries within `data`.
///
/// * Start: a range beginning at 0 keeps its start; otherwise it skips
///   forward past the record that began before it (records starting at
///   `start` exist iff `data[start-1]` is a delimiter).
/// * End: a range whose last raw byte is a delimiter ends there; otherwise
///   it extends to finish the record that straddles its raw end.
///
/// Adjacent raw ranges produce adjacent aligned ranges, so applying this
/// to the output of [`byte_ranges`] covers every record exactly once.
pub fn align_range(data: &[u8], raw: Range<usize>, delim: u8) -> Range<usize> {
    let len = data.len();
    let raw_end = raw.end.min(len);
    let mut start = raw.start.min(len);
    if start > 0 {
        match data[start - 1..].iter().position(|&b| b == delim) {
            Some(pos) => start = start - 1 + pos + 1,
            None => start = len,
        }
    }
    let mut end = raw_end;
    if end > 0 && end < len && data[end - 1] != delim {
        end = data[end..]
            .iter()
            .position(|&b| b == delim)
            .map_or(len, |p| end + p + 1);
    }
    start..end.max(start)
}

/// Splits `data` into `parts` record-aligned ranges covering every record
/// exactly once.
pub fn split_records(data: &[u8], parts: usize, delim: u8) -> Vec<Range<usize>> {
    byte_ranges(data.len() as u64, parts)
        .into_iter()
        .map(|r| align_range(data, r.start as usize..r.end as usize, delim))
        .collect()
}

/// Reads rank `rank`-of-`n_ranks`'s record-aligned share of the file at
/// `path`, charging the read to `model`.
///
/// # Errors
/// OS failures opening, seeking, or reading the file.
pub fn read_split(
    path: &Path,
    rank: usize,
    n_ranks: usize,
    delim: u8,
    model: &IoModel,
) -> Result<Vec<u8>> {
    let mut file = File::open(path).map_err(IoError::os(format!("opening input {path:?}")))?;
    let total = file
        .metadata()
        .map_err(IoError::os(format!("stat {path:?}")))?
        .len();
    let raw = byte_ranges(total, n_ranks)
        .into_iter()
        .nth(rank)
        .expect("rank < n_ranks");

    // Read the raw range plus one lookback byte (for the start rule) and a
    // growing lookahead window (until the end rule can find a delimiter or
    // EOF), then align in memory.
    let read_start = raw.start.saturating_sub(1);
    let mut lookahead: u64 = 64 * 1024;
    let buf = loop {
        let window_end = (raw.end + lookahead).min(total);
        let len = (window_end - read_start) as usize;
        let mut b = vec![0u8; len];
        file.seek(SeekFrom::Start(read_start))
            .map_err(IoError::os(format!("seeking {path:?}")))?;
        file.read_exact(&mut b)
            .map_err(IoError::os(format!("reading {path:?}")))?;
        let tail_start = (raw.end - read_start) as usize;
        if window_end == total || b[tail_start..].contains(&delim) {
            break b;
        }
        lookahead = lookahead.saturating_mul(4);
    };
    model.charge_read(buf.len());

    let local_raw = (raw.start - read_start) as usize..(raw.end - read_start) as usize;
    let aligned = align_range(&buf, local_raw, delim);
    Ok(buf[aligned].to_vec())
}

/// Evenly divides `n_records` fixed-size records into `parts` contiguous
/// record ranges (for binary datasets — points, edges — where records
/// never straddle and no delimiter scan is needed).
pub fn record_ranges(n_records: u64, parts: usize) -> Vec<Range<u64>> {
    byte_ranges(n_records, parts)
}

/// Reads rank `rank`-of-`n_ranks`'s share of a binary file of
/// `record_size`-byte records, charging the read to `model`.
///
/// # Errors
/// OS failures, or a file whose length is not a whole number of records.
pub fn read_fixed_split(
    path: &Path,
    rank: usize,
    n_ranks: usize,
    record_size: usize,
    model: &IoModel,
) -> Result<Vec<u8>> {
    assert!(record_size > 0, "record size must be non-zero");
    let mut file = File::open(path).map_err(IoError::os(format!("opening input {path:?}")))?;
    let total_bytes = file
        .metadata()
        .map_err(IoError::os(format!("stat {path:?}")))?
        .len();
    if total_bytes % record_size as u64 != 0 {
        return Err(IoError::CorruptSpill(format!(
            "{path:?}: {total_bytes} B is not a multiple of {record_size}-byte records"
        )));
    }
    let n_records = total_bytes / record_size as u64;
    let range = record_ranges(n_records, n_ranks)
        .into_iter()
        .nth(rank)
        .expect("rank < n_ranks");
    let start = range.start * record_size as u64;
    let len = ((range.end - range.start) as usize) * record_size;
    let mut buf = vec![0u8; len];
    file.seek(SeekFrom::Start(start))
        .map_err(IoError::os(format!("seeking {path:?}")))?;
    file.read_exact(&mut buf)
        .map_err(IoError::os(format!("reading {path:?}")))?;
    model.charge_read(buf.len());
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn records(data: &[u8]) -> Vec<Vec<u8>> {
        data.split(|&b| b == b'\n')
            .filter(|l| !l.is_empty())
            .map(<[u8]>::to_vec)
            .collect()
    }

    #[test]
    fn byte_ranges_cover_exactly() {
        let rs = byte_ranges(10, 3);
        assert_eq!(rs, vec![0..4, 4..7, 7..10]);
        let rs = byte_ranges(3, 5);
        assert_eq!(rs.iter().map(|r| r.end - r.start).sum::<u64>(), 3);
        assert_eq!(rs.last().unwrap().end, 3);
    }

    #[test]
    fn split_records_covers_every_record_once() {
        let data = b"aa\nbbbb\nc\ndddd\nee\nf\n";
        let expected = records(data);
        for parts in 1..=(data.len() + 2) {
            let ranges = split_records(data, parts, b'\n');
            let mut collected = Vec::new();
            for r in &ranges {
                collected.extend(records(&data[r.clone()]));
            }
            assert_eq!(collected, expected, "parts={parts}");
        }
    }

    #[test]
    fn split_aligns_on_exact_boundaries() {
        // Crafted so a raw boundary falls exactly after a delimiter:
        // "ab\ncd\n" split into 2 → raw 0..3 / 3..6.
        let data = b"ab\ncd\n";
        let ranges = split_records(data, 2, b'\n');
        assert_eq!(&data[ranges[0].clone()], b"ab\n");
        assert_eq!(&data[ranges[1].clone()], b"cd\n");
    }

    #[test]
    fn split_records_without_trailing_newline() {
        let data = b"one\ntwo\nthree";
        for parts in 1..=6 {
            let ranges = split_records(data, parts, b'\n');
            let mut collected = Vec::new();
            for r in &ranges {
                collected.extend(records(&data[r.clone()]));
            }
            assert_eq!(collected, records(data), "parts={parts}");
        }
    }

    #[test]
    fn one_giant_record_goes_to_one_part() {
        let data = b"xxxxxxxxxxxxxxxxxxxx";
        let ranges = split_records(data, 4, b'\n');
        let owners: Vec<_> = ranges
            .iter()
            .filter(|r| !data[(*r).clone()].is_empty())
            .collect();
        assert_eq!(owners.len(), 1);
        assert_eq!(owners[0], &(0..data.len()));
    }

    #[test]
    fn empty_input() {
        let ranges = split_records(b"", 3, b'\n');
        assert!(ranges.iter().all(|r| r.is_empty()));
    }

    #[test]
    fn read_split_matches_in_memory_split() {
        let dir = std::env::temp_dir().join(format!("mimir-split-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("input.txt");
        let mut content = Vec::new();
        for i in 0..1000 {
            content.extend_from_slice(format!("record-{i} with some text\n").as_bytes());
        }
        std::fs::write(&path, &content).unwrap();

        let model = IoModel::free();
        for n_ranks in [1, 3, 7] {
            let expected = split_records(&content, n_ranks, b'\n');
            for rank in 0..n_ranks {
                let got = read_split(&path, rank, n_ranks, b'\n', &model).unwrap();
                assert_eq!(
                    got,
                    content[expected[rank].clone()].to_vec(),
                    "rank {rank}/{n_ranks}"
                );
            }
        }
        assert!(model.stats().bytes_read > 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_split_with_long_lines_grows_lookahead() {
        let dir = std::env::temp_dir().join(format!("mimir-split-long-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("long.txt");
        // One 300 KiB record then small ones: forces the lookahead to grow
        // past its initial 64 KiB window for rank 0's end alignment.
        let mut content = vec![b'z'; 300 * 1024];
        content.push(b'\n');
        content.extend_from_slice(b"tail-1\ntail-2\n");
        std::fs::write(&path, &content).unwrap();

        let model = IoModel::free();
        let expected = split_records(&content, 4, b'\n');
        for rank in 0..4 {
            let got = read_split(&path, rank, 4, b'\n', &model).unwrap();
            assert_eq!(got, content[expected[rank].clone()].to_vec(), "rank {rank}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fixed_split_covers_every_record_once() {
        let dir = std::env::temp_dir().join(format!("mimir-fixed-split-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("records.bin");
        // 101 records of 12 bytes, numbered.
        let mut content = Vec::new();
        for i in 0..101u32 {
            content.extend_from_slice(&i.to_le_bytes());
            content.extend_from_slice(&[0u8; 8]);
        }
        std::fs::write(&path, &content).unwrap();
        let model = IoModel::free();
        for parts in [1usize, 3, 7] {
            let mut seen = Vec::new();
            for rank in 0..parts {
                let share = read_fixed_split(&path, rank, parts, 12, &model).unwrap();
                assert_eq!(share.len() % 12, 0, "whole records only");
                for rec in share.chunks_exact(12) {
                    seen.push(u32::from_le_bytes(rec[0..4].try_into().unwrap()));
                }
            }
            assert_eq!(seen, (0..101).collect::<Vec<_>>(), "parts={parts}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fixed_split_rejects_ragged_files() {
        let dir = std::env::temp_dir().join(format!("mimir-fixed-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ragged.bin");
        std::fs::write(&path, [0u8; 13]).unwrap();
        let model = IoModel::free();
        assert!(read_fixed_split(&path, 0, 2, 12, &model).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
