//! Zero-copy record iteration over in-memory text buffers.
//!
//! Ranks hold their input split as one contiguous byte buffer (read once,
//! per the I/O model); map phases then iterate records without further
//! allocation, per the perf-book guidance on avoiding per-line `String`s.

/// Iterator over `\n`-terminated lines of a byte buffer, yielding slices
/// without the terminator. A final unterminated line is yielded too;
/// empty lines are skipped.
pub struct LineReader<'a> {
    rest: &'a [u8],
}

impl<'a> LineReader<'a> {
    /// Creates a reader over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Self { rest: data }
    }
}

impl<'a> Iterator for LineReader<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        loop {
            if self.rest.is_empty() {
                return None;
            }
            let (line, rest) = match self.rest.iter().position(|&b| b == b'\n') {
                Some(pos) => (&self.rest[..pos], &self.rest[pos + 1..]),
                None => (self.rest, &[][..]),
            };
            self.rest = rest;
            if !line.is_empty() {
                return Some(line);
            }
        }
    }
}

/// Calls `f` for every non-empty line of `data`.
pub fn for_each_line(data: &[u8], mut f: impl FnMut(&[u8])) {
    for line in LineReader::new(data) {
        f(line);
    }
}

/// Iterator over whitespace-separated words of a line.
pub fn words(line: &[u8]) -> impl Iterator<Item = &[u8]> {
    line.split(u8::is_ascii_whitespace)
        .filter(|w| !w.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_with_and_without_trailing_newline() {
        let got: Vec<_> = LineReader::new(b"a\nbb\nccc").collect();
        assert_eq!(got, vec![&b"a"[..], b"bb", b"ccc"]);
        let got: Vec<_> = LineReader::new(b"a\nbb\n").collect();
        assert_eq!(got, vec![&b"a"[..], b"bb"]);
    }

    #[test]
    fn empty_lines_are_skipped() {
        let got: Vec<_> = LineReader::new(b"\n\na\n\n\nb\n").collect();
        assert_eq!(got, vec![&b"a"[..], b"b"]);
        assert_eq!(LineReader::new(b"").count(), 0);
        assert_eq!(LineReader::new(b"\n\n").count(), 0);
    }

    #[test]
    fn words_split_on_any_whitespace() {
        let got: Vec<_> = words(b"  the quick\tbrown   fox ").collect();
        assert_eq!(got, vec![&b"the"[..], b"quick", b"brown", b"fox"]);
        assert_eq!(words(b"   \t ").count(), 0);
    }

    #[test]
    fn for_each_line_visits_all() {
        let mut n = 0;
        for_each_line(b"x\ny\nz", |_| n += 1);
        assert_eq!(n, 3);
    }
}
