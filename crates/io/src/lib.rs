//! # mimir-io — the I/O subsystem of the reproduction
//!
//! Supercomputer nodes in the paper have no local persistent storage: both
//! input datasets and MR-MPI's page spills live on a *shared parallel file
//! system* (Lustre on Comet, GPFS behind 1:128 I/O forwarding nodes on
//! Mira). That shared, bandwidth-limited path is what turns MR-MPI's page
//! spills into the three-orders-of-magnitude slowdown of the paper's
//! Figure 1.
//!
//! This crate provides:
//!
//! * [`IoModel`] — a calibrated cost model for the parallel file system.
//!   Spills really happen (bytes round-trip through files on local disk so
//!   the code path is exercised end to end), but the *reported* cost of
//!   each operation is computed from configurable bandwidth/latency
//!   parameters and accumulated as *modeled time*. Harnesses report
//!   `execution time = measured compute time + modeled I/O time`,
//!   reproducing the paper's platform economics on a machine whose local
//!   SSD is nothing like a loaded Lustre installation.
//! * [`SpillStore`]/[`SpillFile`] — length-prefixed chunked spill files
//!   with RAII cleanup, used by MR-MPI's out-of-core mode.
//! * [`splitter`] — byte-range input splitting at record boundaries, the
//!   way both frameworks shard an input file across ranks.

pub mod splitter;

mod error;
mod model;
mod spill;
mod text;

pub use error::IoError;
pub use model::{IoModel, IoModelConfig, IoStats};
pub use spill::{SpillFile, SpillReader, SpillStore};
pub use text::{for_each_line, words, LineReader};

/// Result alias for fallible I/O operations.
pub type Result<T> = std::result::Result<T, IoError>;
