//! Property: cross-rank report merging is order-independent.
//!
//! A gathered run merges per-rank [`RankReport`]s in whatever order the
//! collective delivered them; the cluster aggregate must not depend on
//! it. Sums commute, maxes commute, job records key-merge by id — this
//! test exercises all of it (including the wait/skew counters added by
//! the diagnosis layer) over seeded random reports and random
//! permutations, no external property-test crate needed.

use mimir_obs::{JobRecord, RankReport};

/// xorshift64*: tiny seeded PRNG, deterministic across platforms.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// A report with every counter the merge touches randomized. Times are
/// integer milliseconds (exactly representable, so f64 max/sum are
/// order-exact) and job ids overlap across ranks to exercise key-merge.
fn random_report(rng: &mut Rng, rank: usize) -> RankReport {
    let mut r = RankReport::new(rank);
    r.comm.sends = rng.below(1 << 20);
    r.comm.recvs = rng.below(1 << 20);
    r.comm.bytes_sent = rng.below(1 << 40);
    r.comm.bytes_recvd = rng.below(1 << 40);
    r.comm.collectives = rng.below(1 << 10);
    r.comm.bytes_copied = rng.below(1 << 30);
    r.comm.send_allocs = rng.below(1 << 10);
    r.mem.pages_allocated = rng.below(1 << 16);
    r.mem.pages_recycled = rng.below(1 << 16);
    r.mem.bytes_in_use = rng.below(1 << 30);
    r.mem.peak_bytes = rng.below(1 << 30);
    r.mem.budget_bytes = rng.below(1 << 32);
    r.mem.oom_events = rng.below(4);
    r.shuffle.kvs_emitted = rng.below(1 << 24);
    r.shuffle.kv_bytes_emitted = rng.below(1 << 32);
    r.shuffle.kvs_received = rng.below(1 << 24);
    r.shuffle.rounds = rng.below(64);
    r.shuffle.spilled_bytes = rng.below(1 << 28);
    r.shuffle.bytes_received = rng.below(1 << 32);
    r.shuffle.max_round_recv_bytes = rng.below(1 << 24);
    r.shuffle.max_dest_bytes = rng.below(1 << 24);
    r.shuffle.imbalance_permille = 1000 + rng.below(4000);
    r.shuffle.gini_permille = rng.below(1000);
    r.waits.total_wait_ns = rng.below(1 << 40);
    r.waits.total_work_ns = rng.below(1 << 36);
    r.waits.sync_wait_ns = rng.below(1 << 38);
    r.waits.data_wait_ns = rng.below(1 << 38);
    r.waits.barrier_wait_ns = rng.below(1 << 38);
    r.times.map_s = rng.below(10_000) as f64 / 1000.0;
    r.times.convert_s = rng.below(10_000) as f64 / 1000.0;
    r.times.reduce_s = rng.below(10_000) as f64 / 1000.0;
    r.peaks.map_bytes = rng.below(1 << 30);
    r.peaks.convert_bytes = rng.below(1 << 30);
    r.peaks.reduce_bytes = rng.below(1 << 30);
    r.job.unique_keys = rng.below(1 << 20);
    r.job.kvs_out = rng.below(1 << 20);
    r.job.node_peak_bytes = rng.below(1 << 30);
    r.live.snapshots = rng.below(1 << 12);
    r.live.published_bytes = rng.below(1 << 28);
    r.live.publish_ns = rng.below(1 << 32);
    r.live.max_publish_lag_ms = rng.below(1 << 10);
    r.live.flight_dumps = rng.below(3);
    r.events_dropped = rng.below(100);
    // 0–3 job records drawn from a small id pool so ranks share ids.
    for _ in 0..rng.below(4) {
        let id = rng.below(5);
        r.jobs.push(JobRecord {
            id,
            name: format!("job{id}"),
            priority: rng.below(3),
            outcome: rng.below(6),
            retries: rng.below(3),
            queued_s: rng.below(1000) as f64,
            running_s: rng.below(1000) as f64,
            footprint_bytes: rng.below(1 << 24),
            kvs_out: rng.below(1 << 16),
            spill_bytes: rng.below(1 << 20),
        });
    }
    r
}

/// Folds `reports` in the order given by `perm` into a neutral
/// accumulator (rank/ranks zeroed so the base contributes nothing).
fn fold(reports: &[RankReport], perm: &[usize]) -> RankReport {
    let mut acc = RankReport::new(0);
    acc.ranks = 0;
    for &i in perm {
        acc.merge(&reports[i]);
    }
    acc
}

#[test]
fn merge_is_order_independent() {
    let mut rng = Rng(0x5eed_0001);
    for trial in 0..50 {
        let n = 2 + (rng.below(7) as usize);
        let reports: Vec<RankReport> = (0..n).map(|r| random_report(&mut rng, r)).collect();
        let identity: Vec<usize> = (0..n).collect();
        let baseline = fold(&reports, &identity).to_json_string();
        // A few random permutations per world.
        for _ in 0..4 {
            let mut perm = identity.clone();
            for i in (1..n).rev() {
                let j = rng.below(i as u64 + 1) as usize;
                perm.swap(i, j);
            }
            let shuffled = fold(&reports, &perm).to_json_string();
            assert_eq!(
                baseline, shuffled,
                "merge depended on order (trial {trial}, perm {perm:?})"
            );
        }
    }
}

#[test]
fn merge_is_associative_pairwise() {
    let mut rng = Rng(0x5eed_0002);
    for _ in 0..50 {
        let a = random_report(&mut rng, 0);
        let b = random_report(&mut rng, 1);
        let c = random_report(&mut rng, 2);
        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left.to_json_string(), right.to_json_string());
    }
}

#[test]
fn merge_sums_waits_and_maxes_skew() {
    // Spot-check the new diagnosis counters against hand arithmetic, so
    // the property tests can't both be fooled by a sign-flip.
    let mut a = RankReport::new(0);
    a.waits.sync_wait_ns = 100;
    a.waits.barrier_wait_ns = 7;
    a.shuffle.imbalance_permille = 1200;
    a.shuffle.gini_permille = 300;
    a.mem.oom_events = 1;
    let mut b = RankReport::new(1);
    b.waits.sync_wait_ns = 50;
    b.shuffle.imbalance_permille = 3000;
    b.shuffle.gini_permille = 100;
    a.merge(&b);
    assert_eq!(a.waits.sync_wait_ns, 150);
    assert_eq!(a.waits.barrier_wait_ns, 7);
    assert_eq!(a.shuffle.imbalance_permille, 3000);
    assert_eq!(a.shuffle.gini_permille, 300);
    assert_eq!(a.mem.oom_events, 1);
    assert_eq!(a.ranks, 2);
}

#[test]
fn merge_sums_live_counters_and_maxes_lag() {
    // Same spot-check discipline for the telemetry-plane counters.
    let mut a = RankReport::new(0);
    a.live.snapshots = 10;
    a.live.published_bytes = 4000;
    a.live.publish_ns = 900;
    a.live.max_publish_lag_ms = 3;
    a.live.flight_dumps = 1;
    let mut b = RankReport::new(1);
    b.live.snapshots = 12;
    b.live.published_bytes = 5000;
    b.live.publish_ns = 1100;
    b.live.max_publish_lag_ms = 25;
    a.merge(&b);
    assert_eq!(a.live.snapshots, 22);
    assert_eq!(a.live.published_bytes, 9000);
    assert_eq!(a.live.publish_ns, 2000);
    assert_eq!(a.live.max_publish_lag_ms, 25, "lag takes the max");
    assert_eq!(a.live.flight_dumps, 1);
}
