//! Property: the crate's JSON writer and parser are inverses.
//!
//! `Json::parse(x.to_string()) == x` and
//! `Json::parse(x.to_pretty()) == x` over seeded random values — deep
//! nesting, unicode and control-character strings, and finite floats
//! (the writer maps non-finite numbers to `null` by design, so the
//! generator never produces them). Plus: `parse_lines` tolerates blank
//! lines and trailing newlines, which real `.jsonl` files always have.

use mimir_obs::Json;

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// A string mixing ASCII, escapes, control chars, and multi-byte
/// unicode — everything the writer must escape or pass through.
fn random_string(rng: &mut Rng) -> String {
    const POOL: &[char] = &[
        'a', 'Z', '0', ' ', '"', '\\', '\n', '\r', '\t', '\u{1}', '\u{1f}', 'é', 'λ', '中', '🦀',
        '\u{2028}', '/', '<', '{', ']',
    ];
    let len = rng.below(12) as usize;
    (0..len)
        .map(|_| POOL[rng.below(POOL.len() as u64) as usize])
        .collect()
}

/// A finite f64: mostly integers (the writer prints them without a
/// fraction), sometimes dyadic fractions and large magnitudes — all
/// exactly representable, all shortest-roundtrip printable.
fn random_number(rng: &mut Rng) -> f64 {
    match rng.below(4) {
        0 => rng.below(1 << 53) as f64,
        1 => -(rng.below(1 << 31) as f64),
        2 => rng.below(1 << 20) as f64 + (rng.below(1024) as f64) / 1024.0,
        _ => (rng.below(1 << 40) as f64) * 1e-6,
    }
}

fn random_json(rng: &mut Rng, depth: u32) -> Json {
    let leaf_only = depth >= 6;
    match rng.below(if leaf_only { 4 } else { 6 }) {
        0 => Json::Null,
        1 => Json::Bool(rng.below(2) == 1),
        2 => Json::Num(random_number(rng)),
        3 => Json::Str(random_string(rng)),
        4 => {
            let n = rng.below(5) as usize;
            Json::Arr((0..n).map(|_| random_json(rng, depth + 1)).collect())
        }
        _ => {
            let n = rng.below(5) as usize;
            Json::Obj(
                (0..n)
                    .map(|i| {
                        (
                            format!("k{i}_{}", random_string(rng)),
                            random_json(rng, depth + 1),
                        )
                    })
                    .collect(),
            )
        }
    }
}

#[test]
fn parse_inverts_both_writers() {
    let mut rng = Rng(0x5eed_1001);
    for trial in 0..500 {
        let value = random_json(&mut rng, 0);
        let compact = value.to_string();
        let parsed = Json::parse(&compact)
            .unwrap_or_else(|e| panic!("trial {trial}: unparseable compact output {compact}: {e}"));
        assert_eq!(parsed, value, "compact roundtrip (trial {trial})");
        let pretty = value.to_pretty();
        let parsed = Json::parse(&pretty)
            .unwrap_or_else(|e| panic!("trial {trial}: unparseable pretty output {pretty}: {e}"));
        assert_eq!(parsed, value, "pretty roundtrip (trial {trial})");
    }
}

#[test]
fn deep_nesting_roundtrips() {
    // A pathological 40-deep chain exercises the recursion paths the
    // random generator rarely reaches.
    let mut v = Json::Num(1.0);
    for i in 0..40 {
        v = if i % 2 == 0 {
            Json::Arr(vec![v])
        } else {
            Json::obj(vec![("inner", v)])
        };
    }
    assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
    assert_eq!(Json::parse(&v.to_pretty()).unwrap(), v);
}

#[test]
fn non_finite_numbers_write_as_null_by_design() {
    assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
}

#[test]
fn parse_lines_tolerates_blank_lines_and_trailing_newlines() {
    let mut rng = Rng(0x5eed_1002);
    let docs: Vec<Json> = (0..10)
        .map(|_| Json::obj(vec![("v", random_json(&mut rng, 4))]))
        .collect();
    let body: String = docs.iter().map(|d| format!("{d}\n")).collect();
    for padded in [
        body.clone(),
        format!("{body}\n\n"),
        format!("\n{body}"),
        body.replace('\n', "\n\n"),
        body.trim_end().to_string(), // no trailing newline at all
    ] {
        let parsed = Json::parse_lines(&padded).expect("tolerant parse");
        assert_eq!(parsed, docs, "padding changed the parsed documents");
    }
}
