//! Proves the acceptance criterion that the emit path allocates nothing:
//! neither the disabled path (no recorder installed) nor the enabled hot
//! path (recording into the preallocated ring) may touch the allocator.
//!
//! Uses a counting global allocator with a *per-thread* counter: the
//! libtest harness allocates concurrently on its own threads, and a
//! process-wide count would pick that noise up (observed as a rare
//! flake). The `const` thread-local initializer keeps TLS access safe
//! inside the allocator (no lazy init on first use).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use mimir_obs::{emit, install, phase_span, step_span, take, EventKind, Phase, Recorder, Step};

struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocs_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.with(Cell::get);
    f();
    ALLOCS.with(Cell::get) - before
}

#[test]
fn emit_paths_never_allocate() {
    // Disabled path: no recorder installed — every hook is a no-op.
    let disabled = allocs_during(|| {
        for i in 0..10_000u64 {
            emit(EventKind::MemSample, i, i * 2);
            let p = phase_span(Phase::Map);
            let s = step_span(Step::Alltoallv);
            drop(s);
            drop(p);
        }
    });
    assert_eq!(disabled, 0, "disabled emit path must not allocate");

    // Enabled path: the ring is preallocated up front, so recording —
    // including past capacity, where the ring wraps — stays allocation-
    // free after install.
    install(Recorder::new(0, 1024));
    let enabled = allocs_during(|| {
        for i in 0..10_000u64 {
            emit(EventKind::MemSample, i, i * 2);
            let p = phase_span(Phase::Reduce);
            let s = step_span(Step::Drain);
            drop(s);
            drop(p);
        }
    });
    let rec = take().expect("recorder still installed");
    assert_eq!(enabled, 0, "enabled hot path must not allocate");
    assert_eq!(rec.events().len(), 1024, "ring filled to capacity");
    assert!(rec.dropped() > 0, "overflow exercised the wrap path");
}
