//! JSON-lines exporter: one self-describing record per line.
//!
//! The format is `grep`/`jq`-friendly raw material: a `report` line per
//! rank (counters only) followed by an `event` line per retained trace
//! event. Chrome-trace answers "show me the timeline"; this answers
//! "let me script over the numbers".

use crate::json::Json;
use crate::report::RankReport;

/// Renders `reports` as JSON-lines text.
///
/// When any rank's trace ring overwrote events, the stream opens with a
/// `header` record carrying the loss — consumers scripting over the
/// event lines must not mistake a truncated timeline for a short run.
pub fn jsonl_string(reports: &[RankReport]) -> String {
    let mut out = String::new();
    let dropped: u64 = reports.iter().map(|r| r.events_dropped).sum();
    if dropped > 0 {
        let header = Json::obj(vec![
            ("record", Json::Str("header".into())),
            ("ranks", Json::Num(reports.len() as f64)),
            ("events_dropped", Json::Num(dropped as f64)),
            (
                "warning",
                Json::Str(format!(
                    "{dropped} events were overwritten by the trace ring; event \
                     lines are truncated at the front. Raise MIMIR_TRACE_CAP."
                )),
            ),
        ]);
        out.push_str(&header.to_string());
        out.push('\n');
    }
    for r in reports {
        let mut counters_only = r.clone();
        let events = std::mem::take(&mut counters_only.events);
        let mut line = Json::obj(vec![("record", Json::Str("report".into()))]);
        if let (Json::Obj(dst), Json::Obj(src)) = (&mut line, counters_only.to_json()) {
            dst.extend(src);
        }
        out.push_str(&line.to_string());
        out.push('\n');
        for e in &events {
            let line = Json::obj(vec![
                ("record", Json::Str("event".into())),
                ("rank", Json::Num(r.rank as f64)),
                ("t_ns", Json::Num(e.t_ns as f64)),
                ("kind", Json::Str(e.kind.name().into())),
                ("label", Json::Str(e.label().into())),
                ("a", Json::Num(e.a as f64)),
                ("b", Json::Num(e.b as f64)),
            ]);
            out.push_str(&line.to_string());
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventKind, Phase};

    #[test]
    fn emits_report_then_event_lines() {
        let mut r = RankReport::new(1);
        r.shuffle.kvs_emitted = 7;
        r.events.push(Event {
            t_ns: 99,
            kind: EventKind::PhaseBegin,
            a: Phase::Reduce as u64,
            b: 0,
        });
        let text = jsonl_string(&[r]);
        let docs = Json::parse_lines(&text).unwrap();
        assert_eq!(docs.len(), 2);
        assert_eq!(docs[0].get("record").unwrap().as_str(), Some("report"));
        assert_eq!(
            docs[0]
                .get("shuffle")
                .unwrap()
                .get("kvs_emitted")
                .unwrap()
                .as_u64(),
            Some(7)
        );
        assert_eq!(
            docs[0].get("events").unwrap().as_arr().unwrap().len(),
            0,
            "report line carries counters, not the event dump"
        );
        assert_eq!(docs[1].get("record").unwrap().as_str(), Some("event"));
        assert_eq!(docs[1].get("label").unwrap().as_str(), Some("reduce"));
        assert_eq!(docs[1].get("t_ns").unwrap().as_u64(), Some(99));
    }

    #[test]
    fn dropped_events_prepend_a_header_warning() {
        let mut a = RankReport::new(0);
        a.events_dropped = 3;
        let mut b = RankReport::new(1);
        b.events_dropped = 4;
        let text = jsonl_string(&[a, b]);
        let docs = Json::parse_lines(&text).unwrap();
        assert_eq!(docs[0].get("record").unwrap().as_str(), Some("header"));
        assert_eq!(docs[0].get("events_dropped").unwrap().as_u64(), Some(7));
        assert!(docs[0]
            .get("warning")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("MIMIR_TRACE_CAP"));
        // Lossless exports stay header-free: the report line leads.
        let clean = jsonl_string(&[RankReport::new(0)]);
        let docs = Json::parse_lines(&clean).unwrap();
        assert_eq!(docs[0].get("record").unwrap().as_str(), Some("report"));
    }
}
