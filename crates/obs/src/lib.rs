//! Observability substrate for the Mimir reproduction.
//!
//! Three pieces, all dependency-free:
//!
//! - **Event tracing** ([`recorder`]): a per-rank [`Recorder`] holding a
//!   preallocated ring of fixed-size [`Event`]s. Rank threads install a
//!   recorder; instrumentation throughout the stack calls [`emit`] /
//!   [`phase_span`] / [`step_span`], which cost nothing when tracing is
//!   off and never allocate when it is on. Enabled with `MIMIR_TRACE=1`.
//! - **Metrics registry** ([`report`]): [`RankReport`] unifies the
//!   communication, memory-pool, shuffle, and job statistics scattered
//!   across the stack into one serializable record with cross-rank
//!   [`RankReport::merge`].
//! - **Exporters** ([`chrome`], [`jsonl`]): chrome trace_event JSON for
//!   Perfetto / `about://tracing`, and JSON-lines for scripting. Both sit
//!   on the crate's own minimal [`json`] module, so nothing external is
//!   needed to write *or* parse them.
//! - **Live telemetry + flight recorder** ([`live`]): per-rank sidecar
//!   streams of periodic counter snapshots for in-flight diagnosis
//!   (`MIMIR_LIVE_DIR`), and crash-scoped postmortem dumps so failed
//!   runs still leave a doctor-ingestible record.

#![warn(missing_docs)]

pub mod chrome;
pub mod event;
pub mod json;
pub mod jsonl;
pub mod live;
pub mod recorder;
pub mod report;

pub use chrome::{chrome_trace, chrome_trace_string};
pub use event::{pack_rank_bytes, unpack_rank_bytes, Event, EventKind, Phase, Step};
pub use json::{Json, JsonError};
pub use jsonl::jsonl_string;
pub use live::{flight_dump, LiveConfig, LiveHandle, LiveShared};
pub use recorder::{
    active, emit, env_capacity, env_enabled, env_flow_enabled, flow_recv, flow_send, install,
    next_flow_id, phase_span, span, step_span, take, Recorder, SpanGuard, DEFAULT_CAPACITY,
    FLOW_SEQ_BITS,
};
pub use report::{
    AdaptCounters, CacheCounters, CacheNameRecord, CommCounters, GroupCounters, JobCounters,
    JobRecord, LiveCounters, MemCounters, PhasePeaks, PhaseTimes, RankReport, ShuffleCounters,
    WaitCounters,
};
