//! A minimal JSON value, writer, and parser.
//!
//! The workspace builds offline with no external crates, so the
//! observability layer carries its own JSON support: enough for
//! chrome-trace files, JSON-lines event logs, figure records, and
//! parse-back in tests. Numbers are `f64` (every quantity we serialize —
//! timestamps in nanoseconds, byte counts, KV counts — fits losslessly
//! in the 53-bit mantissa at the scales the reproduction runs at).

use std::collections::VecDeque;
use std::fmt::Write as _;

/// A parsed or under-construction JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

/// A parse failure with byte offset context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset in the input.
    pub at: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Convenience constructor for objects.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Looks up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if numeric and non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().filter(|n| *n >= 0.0).map(|n| n as u64)
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_str(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write(out),
        }
    }

    /// Parses one JSON document (trailing whitespace allowed).
    ///
    /// # Errors
    /// Malformed input, with the byte offset of the failure.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data"));
        }
        Ok(v)
    }

    /// Parses a stream of whitespace/newline-separated JSON documents
    /// (the JSON-lines shape).
    ///
    /// # Errors
    /// Malformed input anywhere in the stream.
    pub fn parse_lines(input: &str) -> Result<Vec<Json>, JsonError> {
        let mut out = Vec::new();
        for (i, line) in input.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            out.push(Json::parse(line).map_err(|mut e| {
                e.msg = format!("line {}: {}", i + 1, e.msg);
                e
            })?);
        }
        Ok(out)
    }
}

/// Compact serialization (no whitespace); `to_string()` comes with it.
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null"); // JSON has no NaN/Inf; mirror serde_json
    } else if n == n.trunc() && n.abs() < 9.007_199_254_740_992e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            msg: msg.to_string(),
            at: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, lit: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'n' => self.eat("null").map(|()| Json::Null),
            b't' => self.eat("true").map(|()| Json::Bool(true)),
            b'f' => self.eat("false").map(|()| Json::Bool(false)),
            b'"' => self.string().map(Json::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.pos += 1; // '{'
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected object key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected `:`"));
            }
            self.pos += 1;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        let mut pending_surrogate: Option<u16> = None;
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    if pending_surrogate.is_some() {
                        return Err(self.err("unpaired surrogate"));
                    }
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    let simple = match esc {
                        b'"' => Some('"'),
                        b'\\' => Some('\\'),
                        b'/' => Some('/'),
                        b'b' => Some('\u{8}'),
                        b'f' => Some('\u{c}'),
                        b'n' => Some('\n'),
                        b'r' => Some('\r'),
                        b't' => Some('\t'),
                        b'u' => None,
                        _ => return Err(self.err("bad escape")),
                    };
                    if let Some(c) = simple {
                        if pending_surrogate.is_some() {
                            return Err(self.err("unpaired surrogate"));
                        }
                        out.push(c);
                        continue;
                    }
                    // \uXXXX
                    if self.pos + 4 > self.bytes.len() {
                        return Err(self.err("truncated \\u escape"));
                    }
                    let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                        .map_err(|_| self.err("bad \\u escape"))?;
                    let code =
                        u16::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
                    self.pos += 4;
                    match (pending_surrogate.take(), code) {
                        (None, 0xD800..=0xDBFF) => pending_surrogate = Some(code),
                        (None, c) => match char::from_u32(u32::from(c)) {
                            Some(c) => out.push(c),
                            None => return Err(self.err("invalid code point")),
                        },
                        (Some(hi), 0xDC00..=0xDFFF) => {
                            let c = 0x10000
                                + ((u32::from(hi) - 0xD800) << 10)
                                + (u32::from(code) - 0xDC00);
                            match char::from_u32(c) {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid surrogate pair")),
                            }
                        }
                        (Some(_), _) => return Err(self.err("unpaired surrogate")),
                    }
                }
                _ => {
                    if pending_surrogate.is_some() {
                        return Err(self.err("unpaired surrogate"));
                    }
                    // Consume one UTF-8 code point.
                    let start = self.pos;
                    let len = utf8_len(b).ok_or_else(|| self.err("invalid UTF-8"))?;
                    if start + len > self.bytes.len() {
                        return Err(self.err("truncated UTF-8"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos += len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

fn utf8_len(first: u8) -> Option<usize> {
    match first {
        0x00..=0x7F => Some(1),
        0xC0..=0xDF => Some(2),
        0xE0..=0xEF => Some(3),
        0xF0..=0xF7 => Some(4),
        _ => None,
    }
}

/// Breadth-first pretty assertion helper used by tests: collects every
/// `(path, scalar)` leaf of a value.
pub fn leaves(root: &Json) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut queue: VecDeque<(String, &Json)> = VecDeque::new();
    queue.push_back((String::new(), root));
    while let Some((path, v)) = queue.pop_front() {
        match v {
            Json::Arr(items) => {
                for (i, item) in items.iter().enumerate() {
                    queue.push_back((format!("{path}[{i}]"), item));
                }
            }
            Json::Obj(fields) => {
                for (k, item) in fields {
                    queue.push_back((format!("{path}.{k}"), item));
                }
            }
            scalar => out.push((path, scalar.to_string())),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_values() {
        let v = Json::obj(vec![
            ("name", Json::Str("mimir \"obs\"\n".into())),
            ("n", Json::Num(42.0)),
            ("frac", Json::Num(0.5)),
            ("neg", Json::Num(-17.0)),
            ("ok", Json::Bool(true)),
            ("nothing", Json::Null),
            (
                "arr",
                Json::Arr(vec![Json::Num(1.0), Json::Str("x".into()), Json::Null]),
            ),
        ]);
        let text = v.to_string();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, v);
        let pretty = v.to_pretty();
        assert_eq!(Json::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = Json::parse(r#"{"s":"a\tbé😀c"}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "a\tbé😀c");
    }

    #[test]
    fn integers_print_without_exponent() {
        assert_eq!(Json::Num(1_000_000_000_000.0).to_string(), "1000000000000");
        assert_eq!(Json::Num(0.25).to_string(), "0.25");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "{\"a\":}", "tru", "\"unterminated", "1 2"] {
            assert!(Json::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn parse_lines_splits_documents() {
        let docs = Json::parse_lines("{\"a\":1}\n\n{\"b\":2}\n").unwrap();
        assert_eq!(docs.len(), 2);
        assert_eq!(docs[1].get("b").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn get_and_accessors() {
        let v = Json::parse(r#"{"x": 3, "y": [1, 2], "s": "hi", "b": false}"#).unwrap();
        assert_eq!(v.get("x").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("y").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("s").unwrap().as_str(), Some("hi"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("missing"), None);
        assert!(leaves(&v).len() >= 5);
    }
}
