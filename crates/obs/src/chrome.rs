//! Chrome trace_event exporter.
//!
//! Produces the JSON object format consumed by Perfetto
//! (<https://ui.perfetto.dev>) and `about://tracing`: a `traceEvents`
//! array of `ph:"B"`/`ph:"E"` duration events, `ph:"C"` counters, and
//! `ph:"i"` instants. Each rank becomes one `tid` under a single `pid`,
//! so a multi-rank run renders as stacked per-rank timelines — the view
//! behind the paper's phase-interleaving discussion (Figures 4–6).

use std::collections::HashSet;

use crate::event::{unpack_rank_bytes, Event, EventKind};
use crate::json::Json;
use crate::report::RankReport;

/// Process id used for all ranks (one logical job = one process row).
const PID: f64 = 1.0;

/// Scheduler job lanes get tids far above the rank lanes:
/// `(rank + 1) * JOB_LANE_STRIDE + job_id`, so each rank's jobs group
/// under that rank in Perfetto's tid-sorted view.
const JOB_LANE_STRIDE: u64 = 1_000;

/// The tid of job `job_id`'s lane on `rank`.
fn job_lane(rank: u64, job_id: u64) -> f64 {
    ((rank + 1) * JOB_LANE_STRIDE + job_id) as f64
}

/// Converts one rank's events into trace_event records. `flows` is the
/// set of flow ids seen on *both* ends across the whole report set:
/// arrows are only drawn for complete pairs, so a ring-dropped half can
/// never leave a dangling `ph:"s"` in the export.
fn rank_events(rank: u64, events: &[Event], flows: &HashSet<u64>, out: &mut Vec<Json>) {
    let tid = Json::Num(rank as f64);
    // Per-job lane state: which span ("queued"/"running") is open, so
    // suspend/re-admit cycles and ends stay balanced whatever order the
    // scheduler emitted.
    let mut job_state: std::collections::HashMap<u64, &'static str> =
        std::collections::HashMap::new();
    let job_span = |out: &mut Vec<Json>,
                    state: &mut std::collections::HashMap<u64, &'static str>,
                    job: u64,
                    ts: &Json,
                    next: Option<&'static str>,
                    args: Vec<(&str, Json)>| {
        let lane = Json::Num(job_lane(rank, job));
        if let Some(open) = state.remove(&job) {
            out.push(Json::obj(vec![
                ("name", Json::Str(open.into())),
                ("ph", Json::Str("E".into())),
                ("ts", ts.clone()),
                ("pid", Json::Num(PID)),
                ("tid", lane.clone()),
            ]));
        } else if next.is_some() {
            // First sighting of this job on this rank: label its lane.
            out.push(Json::obj(vec![
                ("name", Json::Str("thread_name".into())),
                ("ph", Json::Str("M".into())),
                ("pid", Json::Num(PID)),
                ("tid", lane.clone()),
                (
                    "args",
                    Json::obj(vec![("name", Json::Str(format!("r{rank} job {job}")))]),
                ),
            ]));
        }
        if let Some(name) = next {
            out.push(Json::obj(vec![
                ("name", Json::Str(name.into())),
                ("ph", Json::Str("B".into())),
                ("ts", ts.clone()),
                ("pid", Json::Num(PID)),
                ("tid", lane),
                ("args", Json::obj(args)),
            ]));
            state.insert(job, name);
        }
    };
    for e in events {
        // trace_event timestamps are microseconds; keep sub-µs precision
        // as a fraction.
        let ts = Json::Num(e.t_ns as f64 / 1000.0);
        match e.kind {
            EventKind::PhaseBegin | EventKind::RoundBegin | EventKind::StepBegin => {
                out.push(Json::obj(vec![
                    ("name", Json::Str(e.label().to_string())),
                    ("ph", Json::Str("B".into())),
                    ("ts", ts),
                    ("pid", Json::Num(PID)),
                    ("tid", tid.clone()),
                    ("args", Json::obj(vec![("a", Json::Num(e.a as f64))])),
                ]));
            }
            EventKind::PhaseEnd | EventKind::RoundEnd | EventKind::StepEnd => {
                out.push(Json::obj(vec![
                    ("name", Json::Str(e.label().to_string())),
                    ("ph", Json::Str("E".into())),
                    ("ts", ts),
                    ("pid", Json::Num(PID)),
                    ("tid", tid.clone()),
                    (
                        "args",
                        Json::obj(vec![
                            ("a", Json::Num(e.a as f64)),
                            ("b", Json::Num(e.b as f64)),
                        ]),
                    ),
                ]));
            }
            EventKind::MemSample => {
                out.push(Json::obj(vec![
                    ("name", Json::Str(format!("pool-bytes r{rank}"))),
                    ("ph", Json::Str("C".into())),
                    ("ts", ts),
                    ("pid", Json::Num(PID)),
                    ("tid", tid.clone()),
                    (
                        "args",
                        Json::obj(vec![
                            ("used", Json::Num(e.a as f64)),
                            ("peak", Json::Num(e.b as f64)),
                        ]),
                    ),
                ]));
            }
            EventKind::SpillBegin => {
                out.push(Json::obj(vec![
                    ("name", Json::Str("spill".into())),
                    ("ph", Json::Str("B".into())),
                    ("ts", ts),
                    ("pid", Json::Num(PID)),
                    ("tid", tid.clone()),
                    ("args", Json::obj(vec![("file", Json::Num(e.a as f64))])),
                ]));
            }
            EventKind::SpillEnd => {
                out.push(Json::obj(vec![
                    ("name", Json::Str("spill".into())),
                    ("ph", Json::Str("E".into())),
                    ("ts", ts),
                    ("pid", Json::Num(PID)),
                    ("tid", tid.clone()),
                    (
                        "args",
                        Json::obj(vec![
                            ("file", Json::Num(e.a as f64)),
                            ("bytes", Json::Num(e.b as f64)),
                        ]),
                    ),
                ]));
            }
            EventKind::GroupRehash => {
                out.push(Json::obj(vec![
                    ("name", Json::Str("group-rehash".into())),
                    ("ph", Json::Str("i".into())),
                    ("s", Json::Str("t".into())),
                    ("ts", ts),
                    ("pid", Json::Num(PID)),
                    ("tid", tid.clone()),
                    (
                        "args",
                        Json::obj(vec![
                            ("capacity", Json::Num(e.a as f64)),
                            ("groups", Json::Num(e.b as f64)),
                        ]),
                    ),
                ]));
            }
            EventKind::CombinerFlush => {
                out.push(Json::obj(vec![
                    ("name", Json::Str("combiner-flush".into())),
                    ("ph", Json::Str("i".into())),
                    ("s", Json::Str("t".into())),
                    ("ts", ts),
                    ("pid", Json::Num(PID)),
                    ("tid", tid.clone()),
                    (
                        "args",
                        Json::obj(vec![
                            ("entries", Json::Num(e.a as f64)),
                            ("table_bytes", Json::Num(e.b as f64)),
                        ]),
                    ),
                ]));
            }
            EventKind::JobSubmit => {
                job_span(
                    out,
                    &mut job_state,
                    e.a,
                    &ts,
                    Some("queued"),
                    vec![("priority", Json::Num(e.b as f64))],
                );
            }
            EventKind::JobAdmit => {
                job_span(
                    out,
                    &mut job_state,
                    e.a,
                    &ts,
                    Some("running"),
                    vec![("footprint_bytes", Json::Num(e.b as f64))],
                );
            }
            EventKind::JobSuspend => {
                job_span(
                    out,
                    &mut job_state,
                    e.a,
                    &ts,
                    Some("queued"),
                    vec![("retries", Json::Num(e.b as f64))],
                );
            }
            EventKind::JobEnd => {
                job_span(out, &mut job_state, e.a, &ts, None, Vec::new());
                out.push(Json::obj(vec![
                    ("name", Json::Str(format!("job {} end", e.a))),
                    ("ph", Json::Str("i".into())),
                    ("s", Json::Str("t".into())),
                    ("ts", Json::Num(e.t_ns as f64 / 1000.0)),
                    ("pid", Json::Num(PID)),
                    ("tid", Json::Num(job_lane(rank, e.a))),
                    ("args", Json::obj(vec![("outcome", Json::Num(e.b as f64))])),
                ]));
            }
            EventKind::RoundWait => {
                out.push(Json::obj(vec![
                    ("name", Json::Str(format!("round-wait r{rank}"))),
                    ("ph", Json::Str("C".into())),
                    ("ts", ts),
                    ("pid", Json::Num(PID)),
                    ("tid", tid.clone()),
                    (
                        "args",
                        Json::obj(vec![
                            ("sync_wait_ns", Json::Num(e.a as f64)),
                            ("data_wait_ns", Json::Num(e.b as f64)),
                        ]),
                    ),
                ]));
            }
            EventKind::RoundSkew => {
                out.push(Json::obj(vec![
                    ("name", Json::Str(format!("round-skew r{rank}"))),
                    ("ph", Json::Str("C".into())),
                    ("ts", ts),
                    ("pid", Json::Num(PID)),
                    ("tid", tid.clone()),
                    (
                        "args",
                        Json::obj(vec![
                            ("imbalance_permille", Json::Num(e.a as f64)),
                            ("gini_permille", Json::Num(e.b as f64)),
                        ]),
                    ),
                ]));
            }
            EventKind::FlowSend | EventKind::FlowRecv => {
                if !flows.contains(&e.a) {
                    continue;
                }
                let (peer, bytes) = unpack_rank_bytes(e.b);
                let (ph, peer_key) = if e.kind == EventKind::FlowSend {
                    ("s", "dst")
                } else {
                    ("f", "src")
                };
                let mut rec = vec![
                    ("name", Json::Str("msg".into())),
                    ("cat", Json::Str("flow".into())),
                    ("ph", Json::Str(ph.into())),
                    // String ids: numeric ids above 2^53 would lose
                    // precision through the JSON float path.
                    ("id", Json::Str(format!("0x{:x}", e.a))),
                    ("ts", ts),
                    ("pid", Json::Num(PID)),
                    ("tid", tid.clone()),
                ];
                if e.kind == EventKind::FlowRecv {
                    // Bind to the enclosing slice, not the next one: the
                    // arrow should land where the receive matched.
                    rec.push(("bp", Json::Str("e".into())));
                }
                rec.push((
                    "args",
                    Json::obj(vec![
                        (peer_key, Json::Num(peer as f64)),
                        ("bytes", Json::Num(bytes as f64)),
                    ]),
                ));
                out.push(Json::obj(rec));
            }
            EventKind::AdaptDecision => {
                out.push(Json::obj(vec![
                    ("name", Json::Str("adapt-decision".into())),
                    ("ph", Json::Str("i".into())),
                    ("s", Json::Str("t".into())),
                    ("ts", ts),
                    ("pid", Json::Num(PID)),
                    ("tid", tid.clone()),
                    (
                        "args",
                        Json::obj(vec![
                            ("decision", Json::Num(e.a as f64)),
                            ("operand", Json::Num(e.b as f64)),
                        ]),
                    ),
                ]));
            }
            EventKind::ShuffleElided => {
                out.push(Json::obj(vec![
                    ("name", Json::Str("shuffle-elided".into())),
                    ("ph", Json::Str("i".into())),
                    ("s", Json::Str("t".into())),
                    ("ts", ts),
                    ("pid", Json::Num(PID)),
                    ("tid", tid.clone()),
                    (
                        "args",
                        Json::obj(vec![
                            ("kvs", Json::Num(e.a as f64)),
                            ("bytes", Json::Num(e.b as f64)),
                        ]),
                    ),
                ]));
            }
            EventKind::CacheEvict | EventKind::CacheReload => {
                let name = if e.kind == EventKind::CacheEvict {
                    "cache-evict"
                } else {
                    "cache-reload"
                };
                out.push(Json::obj(vec![
                    ("name", Json::Str(name.into())),
                    ("ph", Json::Str("i".into())),
                    ("s", Json::Str("t".into())),
                    ("ts", ts),
                    ("pid", Json::Num(PID)),
                    ("tid", tid.clone()),
                    (
                        "args",
                        Json::obj(vec![
                            ("name_hash", Json::Num(e.a as f64)),
                            ("bytes", Json::Num(e.b as f64)),
                        ]),
                    ),
                ]));
            }
            EventKind::JobHeartbeat => {
                // Memory counter on the job's own lane: tenants' pool
                // footprints read side by side under their rank row.
                out.push(Json::obj(vec![
                    ("name", Json::Str(format!("job-mem r{rank} j{}", e.a))),
                    ("ph", Json::Str("C".into())),
                    ("ts", ts),
                    ("pid", Json::Num(PID)),
                    ("tid", Json::Num(job_lane(rank, e.a))),
                    ("args", Json::obj(vec![("used", Json::Num(e.b as f64))])),
                ]));
            }
        }
    }
}

/// Builds the chrome-trace document for a set of per-rank reports.
///
/// Ranks appear as thread rows named `rank N`; span, counter, and
/// instant events come from each report's retained trace events.
pub fn chrome_trace(reports: &[RankReport]) -> Json {
    // Prescan for complete flow pairs: an id qualifies only when its
    // send and receive halves both survived their rings.
    let mut sent = HashSet::new();
    let mut recvd = HashSet::new();
    for r in reports {
        for e in &r.events {
            match e.kind {
                EventKind::FlowSend => {
                    sent.insert(e.a);
                }
                EventKind::FlowRecv => {
                    recvd.insert(e.a);
                }
                _ => {}
            }
        }
    }
    let flows: HashSet<u64> = sent.intersection(&recvd).copied().collect();
    let mut events = Vec::new();
    for r in reports {
        // Thread-name metadata gives Perfetto readable row labels.
        events.push(Json::obj(vec![
            ("name", Json::Str("thread_name".into())),
            ("ph", Json::Str("M".into())),
            ("pid", Json::Num(PID)),
            ("tid", Json::Num(r.rank as f64)),
            (
                "args",
                Json::obj(vec![("name", Json::Str(format!("rank {}", r.rank)))]),
            ),
        ]));
        rank_events(r.rank, &r.events, &flows, &mut events);
    }
    let dropped: u64 = reports.iter().map(|r| r.events_dropped).sum();
    let mut doc = vec![
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::Str("ms".into())),
    ];
    if dropped > 0 {
        // The timeline silently starts mid-run when the ring wrapped;
        // stamp the loss where a human opening the trace will see it.
        doc.push((
            "metadata",
            Json::obj(vec![
                ("events_dropped", Json::Num(dropped as f64)),
                (
                    "warning",
                    Json::Str(format!(
                        "{dropped} events were overwritten by the trace ring; \
                         the timeline is truncated at the front. Raise \
                         MIMIR_TRACE_CAP (events per rank) to keep the full run."
                    )),
                ),
            ]),
        ));
    }
    Json::obj(doc)
}

/// Serializes [`chrome_trace`] to a writable JSON string.
pub fn chrome_trace_string(reports: &[RankReport]) -> String {
    chrome_trace(reports).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Phase, Step};
    use crate::report::RankReport;

    fn report_with_events(rank: u64, events: Vec<Event>) -> RankReport {
        RankReport {
            rank,
            ranks: 1,
            events,
            ..RankReport::default()
        }
    }

    #[test]
    fn spans_counters_and_instants_export() {
        let evs = vec![
            Event {
                t_ns: 1_000,
                kind: EventKind::PhaseBegin,
                a: Phase::Map as u64,
                b: 0,
            },
            Event {
                t_ns: 2_000,
                kind: EventKind::MemSample,
                a: 4096,
                b: 8192,
            },
            Event {
                t_ns: 2_500,
                kind: EventKind::CombinerFlush,
                a: 10,
                b: 640,
            },
            Event {
                t_ns: 3_000,
                kind: EventKind::StepBegin,
                a: Step::Alltoallv as u64,
                b: 0,
            },
            Event {
                t_ns: 4_000,
                kind: EventKind::StepEnd,
                a: Step::Alltoallv as u64,
                b: 123,
            },
            Event {
                t_ns: 5_000,
                kind: EventKind::PhaseEnd,
                a: Phase::Map as u64,
                b: 0,
            },
        ];
        let doc = chrome_trace(&[report_with_events(2, evs)]);
        let text = doc.to_string();
        let parsed = Json::parse(&text).unwrap();
        let trace = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        // 1 metadata + 6 events.
        assert_eq!(trace.len(), 7);
        assert_eq!(trace[0].get("ph").unwrap().as_str(), Some("M"));
        let map_begin = &trace[1];
        assert_eq!(map_begin.get("name").unwrap().as_str(), Some("map"));
        assert_eq!(map_begin.get("ph").unwrap().as_str(), Some("B"));
        assert_eq!(map_begin.get("tid").unwrap().as_u64(), Some(2));
        assert!((map_begin.get("ts").unwrap().as_f64().unwrap() - 1.0).abs() < 1e-9);
        let counter = &trace[2];
        assert_eq!(counter.get("ph").unwrap().as_str(), Some("C"));
        assert_eq!(
            counter.get("args").unwrap().get("used").unwrap().as_u64(),
            Some(4096)
        );
        let instant = &trace[3];
        assert_eq!(instant.get("ph").unwrap().as_str(), Some("i"));
        let step_end = &trace[5];
        assert_eq!(step_end.get("name").unwrap().as_str(), Some("alltoallv"));
        assert_eq!(
            step_end.get("args").unwrap().get("b").unwrap().as_u64(),
            Some(123)
        );
    }

    #[test]
    fn job_lifecycle_renders_as_balanced_lane_spans() {
        let evs = vec![
            Event {
                t_ns: 1_000,
                kind: EventKind::JobSubmit,
                a: 3,
                b: 7, // priority
            },
            Event {
                t_ns: 2_000,
                kind: EventKind::JobAdmit,
                a: 3,
                b: 4096,
            },
            Event {
                t_ns: 3_000,
                kind: EventKind::JobSuspend,
                a: 3,
                b: 1,
            },
            Event {
                t_ns: 4_000,
                kind: EventKind::JobAdmit,
                a: 3,
                b: 8192,
            },
            Event {
                t_ns: 5_000,
                kind: EventKind::JobEnd,
                a: 3,
                b: 0,
            },
        ];
        let doc = chrome_trace(&[report_with_events(1, evs)]);
        let trace = doc.get("traceEvents").unwrap().as_arr().unwrap().to_vec();
        let lane = (1 + 1) * 1_000 + 3; // (rank+1)*stride + job id
        let lane_events: Vec<_> = trace
            .iter()
            .filter(|e| e.get("tid").and_then(Json::as_u64) == Some(lane))
            .collect();
        let (mut begins, mut ends, mut metas, mut instants) = (0, 0, 0, 0);
        for ev in &lane_events {
            match ev.get("ph").and_then(Json::as_str) {
                Some("B") => begins += 1,
                Some("E") => ends += 1,
                Some("M") => metas += 1,
                Some("i") => instants += 1,
                _ => {}
            }
        }
        assert_eq!(metas, 1, "one lane label");
        assert_eq!(begins, 4, "queued, running, queued-again, running-again");
        assert_eq!(begins, ends, "balanced spans despite suspend cycle");
        assert_eq!(instants, 1, "job-end marker");
        // First span on the lane is the queued state.
        let first_b = lane_events
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("B"))
            .unwrap();
        assert_eq!(first_b.get("name").unwrap().as_str(), Some("queued"));
    }

    #[test]
    fn dropped_events_stamp_trace_metadata() {
        let mut lossy = report_with_events(0, Vec::new());
        lossy.events_dropped = 42;
        let doc = chrome_trace(&[lossy]);
        let meta = doc.get("metadata").expect("metadata stamped on loss");
        assert_eq!(meta.get("events_dropped").unwrap().as_u64(), Some(42));
        assert!(meta
            .get("warning")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("MIMIR_TRACE_CAP"));
        let clean = chrome_trace(&[report_with_events(0, Vec::new())]);
        assert!(clean.get("metadata").is_none(), "no loss, no warning");
    }

    #[test]
    fn wait_skew_and_heartbeat_render_as_counter_lanes() {
        let evs = vec![
            Event {
                t_ns: 1_000,
                kind: EventKind::RoundWait,
                a: 5_000,
                b: 7_000,
            },
            Event {
                t_ns: 2_000,
                kind: EventKind::RoundSkew,
                a: 2_400,
                b: 310,
            },
            Event {
                t_ns: 3_000,
                kind: EventKind::JobHeartbeat,
                a: 5,
                b: 65_536,
            },
        ];
        let doc = chrome_trace(&[report_with_events(1, evs)]);
        let trace = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let counters: Vec<_> = trace
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("C"))
            .collect();
        assert_eq!(counters.len(), 3);
        assert_eq!(
            counters[0]
                .get("args")
                .unwrap()
                .get("sync_wait_ns")
                .unwrap()
                .as_u64(),
            Some(5_000)
        );
        assert_eq!(
            counters[1]
                .get("args")
                .unwrap()
                .get("imbalance_permille")
                .unwrap()
                .as_u64(),
            Some(2_400)
        );
        // The heartbeat lands on job 5's lane, not the rank lane.
        assert_eq!(
            counters[2].get("tid").and_then(Json::as_u64),
            Some((1 + 1) * 1_000 + 5)
        );
    }

    #[test]
    fn flow_arrows_export_only_complete_pairs() {
        // Flow ids from rank 0: the rank component of `(rank << 48) | seq`
        // is zero, leaving just the sequence.
        let flow_ok = 1u64;
        let flow_lost = 2u64; // receive half dropped
        let sender = report_with_events(
            0,
            vec![
                Event {
                    t_ns: 1_000,
                    kind: EventKind::FlowSend,
                    a: flow_ok,
                    b: (1 << 48) | 64,
                },
                Event {
                    t_ns: 2_000,
                    kind: EventKind::FlowSend,
                    a: flow_lost,
                    b: (1 << 48) | 64,
                },
            ],
        );
        let receiver = report_with_events(
            1,
            vec![Event {
                t_ns: 1_500,
                kind: EventKind::FlowRecv,
                a: flow_ok,
                b: 64, // src rank 0 packed in the high bits (= 0)
            }],
        );
        let doc = chrome_trace(&[sender, receiver]);
        let trace = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let starts: Vec<_> = trace
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("s"))
            .collect();
        let finishes: Vec<_> = trace
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("f"))
            .collect();
        assert_eq!(starts.len(), 1, "the unmatched send draws no arrow");
        assert_eq!(finishes.len(), 1);
        assert_eq!(
            starts[0].get("id").unwrap().as_str(),
            finishes[0].get("id").unwrap().as_str(),
            "the pair binds by id"
        );
        assert_eq!(starts[0].get("tid").and_then(Json::as_u64), Some(0));
        assert_eq!(finishes[0].get("tid").and_then(Json::as_u64), Some(1));
        assert_eq!(finishes[0].get("bp").and_then(Json::as_str), Some("e"));
        assert_eq!(
            starts[0]
                .get("args")
                .unwrap()
                .get("dst")
                .and_then(Json::as_u64),
            Some(1)
        );
    }

    #[test]
    fn begin_end_pairs_balance_per_rank() {
        let evs = vec![
            Event {
                t_ns: 0,
                kind: EventKind::PhaseBegin,
                a: Phase::Job as u64,
                b: 0,
            },
            Event {
                t_ns: 1,
                kind: EventKind::RoundBegin,
                a: 0,
                b: 0,
            },
            Event {
                t_ns: 2,
                kind: EventKind::RoundEnd,
                a: 0,
                b: 1,
            },
            Event {
                t_ns: 3,
                kind: EventKind::PhaseEnd,
                a: Phase::Job as u64,
                b: 0,
            },
        ];
        let doc = chrome_trace(&[
            report_with_events(0, evs.clone()),
            report_with_events(1, evs),
        ]);
        let trace = doc.get("traceEvents").unwrap().as_arr().unwrap().to_vec();
        for rank in 0..2u64 {
            let (mut begins, mut ends) = (0, 0);
            for ev in trace
                .iter()
                .filter(|e| e.get("tid").and_then(Json::as_u64) == Some(rank))
            {
                match ev.get("ph").and_then(Json::as_str) {
                    Some("B") => begins += 1,
                    Some("E") => ends += 1,
                    _ => {}
                }
            }
            assert_eq!(begins, 2);
            assert_eq!(begins, ends, "balanced B/E pairs for rank {rank}");
        }
    }

    #[test]
    fn adapt_decisions_render_as_thread_instants() {
        let evs = vec![
            Event {
                t_ns: 1_000,
                kind: EventKind::AdaptDecision,
                a: 1, // decision code (e.g. mode switch)
                b: 7, // operand (round / dest / permille, per code)
            },
            Event {
                t_ns: 2_000,
                kind: EventKind::AdaptDecision,
                a: 5,
                b: 3,
            },
        ];
        let doc = chrome_trace(&[report_with_events(1, evs)]);
        let trace = doc.get("traceEvents").unwrap().as_arr().unwrap().to_vec();
        let decisions: Vec<_> = trace
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("adapt-decision"))
            .collect();
        assert_eq!(decisions.len(), 2);
        for d in &decisions {
            // Thread-scoped instants: they pin to the deciding rank's
            // lane instead of spanning the whole process track.
            assert_eq!(d.get("ph").and_then(Json::as_str), Some("i"));
            assert_eq!(d.get("s").and_then(Json::as_str), Some("t"));
            assert_eq!(d.get("tid").and_then(Json::as_u64), Some(1));
        }
        assert_eq!(
            decisions[0]
                .get("args")
                .unwrap()
                .get("decision")
                .and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(
            decisions[1]
                .get("args")
                .unwrap()
                .get("operand")
                .and_then(Json::as_u64),
            Some(3)
        );
    }
}
