//! The live telemetry plane and flight recorder.
//!
//! Everything else in `mimir-obs` speaks *after* the world exits; this
//! module speaks *while it runs* — and when it dies. Two pieces:
//!
//! - **Telemetry plane**: each rank arms a [`LiveShared`] accumulator
//!   that instrumentation throughout the stack feeds (comm deltas from
//!   `mimir-mpi`, pool gauges and phase marks from `mimir-core`, job
//!   lanes from `mimir-sched`). A per-rank publisher thread snapshots it
//!   every [`LiveConfig::interval`] into a cumulative [`RankReport`] and
//!   appends one `{"record":"live",...}` line to
//!   `<dir>/rank<r>.live.jsonl`. Sidecar files work identically for
//!   in-process rank threads and forked UDS ranks (children inherit the
//!   environment), so one tailer — the online doctor in `mimir-doctor`
//!   — serves both transports.
//! - **Flight recorder**: [`flight_dump`] writes a crash-scoped
//!   postmortem (`rank<r>.crash.jsonl`: a `crash` line, then the rank's
//!   final report and trace-ring events in the standard JSON-lines
//!   format) on panic, abort, or disconnect, and an async-signal-safe
//!   pre-formatted fallback covers `SIGTERM` for process-per-rank
//!   worlds. Every failed run leaves a doctor-ingestible corpse.
//!
//! Armed with `MIMIR_LIVE_DIR=<dir>` (publish interval
//! `MIMIR_LIVE_INTERVAL_MS`, default 100; crash dir `MIMIR_FLIGHT_DIR`,
//! default `<dir>/postmortem`), or programmatically via
//! [`set_force_config`] for tests and benches that must not race on
//! process-wide environment variables.

use std::cell::RefCell;
use std::fs::{self, File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicI32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use crate::json::Json;
use crate::report::{
    CommCounters, JobRecord, LiveCounters, MemCounters, RankReport, ShuffleCounters, WaitCounters,
};

/// Phase-gauge value meaning "no phase mark seen yet".
pub const PHASE_NONE: u64 = u64::MAX;

/// Default publish interval when `MIMIR_LIVE_INTERVAL_MS` is unset.
pub const DEFAULT_INTERVAL: Duration = Duration::from_millis(100);

/// Where and how often the telemetry plane publishes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiveConfig {
    /// Directory receiving one `rank<r>.live.jsonl` sidecar per rank.
    pub dir: PathBuf,
    /// Snapshot publish interval.
    pub interval: Duration,
    /// Directory receiving flight-recorder crash dumps.
    pub flight_dir: PathBuf,
}

impl LiveConfig {
    /// A config publishing into `dir` at the default interval, with
    /// crash dumps under `<dir>/postmortem`.
    pub fn new(dir: impl Into<PathBuf>) -> LiveConfig {
        let dir = dir.into();
        let flight_dir = dir.join("postmortem");
        LiveConfig {
            dir,
            interval: DEFAULT_INTERVAL,
            flight_dir,
        }
    }

    /// Reads `MIMIR_LIVE_DIR` / `MIMIR_LIVE_INTERVAL_MS` /
    /// `MIMIR_FLIGHT_DIR`; `None` when no live dir is configured.
    pub fn from_env() -> Option<LiveConfig> {
        let dir = std::env::var("MIMIR_LIVE_DIR").ok()?;
        if dir.is_empty() {
            return None;
        }
        let mut cfg = LiveConfig::new(dir);
        if let Ok(raw) = std::env::var("MIMIR_LIVE_INTERVAL_MS") {
            if let Ok(ms) = raw.trim().parse::<u64>() {
                cfg.interval = Duration::from_millis(ms.max(1));
            }
        }
        if let Ok(flight) = std::env::var("MIMIR_FLIGHT_DIR") {
            if !flight.is_empty() {
                cfg.flight_dir = PathBuf::from(flight);
            }
        }
        Some(cfg)
    }
}

/// Process-wide config override (tests and benches inside one process
/// must not race on `std::env`).
static FORCE: Mutex<Option<LiveConfig>> = Mutex::new(None);

/// Overrides (or, with `None`, clears the override of) the config that
/// [`arm`] and [`flight_dump`] consult, taking precedence over the
/// environment.
pub fn set_force_config(cfg: Option<LiveConfig>) {
    *FORCE.lock().unwrap() = cfg;
}

/// The effective config: the [`set_force_config`] override when set,
/// otherwise the environment; `None` disarms the plane.
pub fn config() -> Option<LiveConfig> {
    if let Some(cfg) = FORCE.lock().unwrap().clone() {
        return Some(cfg);
    }
    LiveConfig::from_env()
}

/// The mutable accumulator sections (one uncontended lock shared by the
/// rank thread and its 10 Hz publisher).
#[derive(Debug, Default)]
struct Inner {
    comm: CommCounters,
    waits: WaitCounters,
    mem: MemCounters,
    shuffle: ShuffleCounters,
    jobs: Vec<JobRecord>,
    live: LiveCounters,
}

/// One rank's shared live-telemetry state: instrumentation pushes into
/// it from the rank thread, the publisher thread snapshots it.
#[derive(Debug)]
pub struct LiveShared {
    rank: u64,
    world: u64,
    start: Instant,
    seq: AtomicU64,
    /// Latest phase mark (a `Phase` discriminant, or [`PHASE_NONE`]).
    phase: AtomicU64,
    /// Nanoseconds of the *currently in-flight* blocked receive — the
    /// signal that keeps a waiting rank's wait climbing between receive
    /// completions, so the straggler rule can fire while the cluster is
    /// still stuck.
    pending_wait_ns: AtomicU64,
    inner: Mutex<Inner>,
}

impl LiveShared {
    fn new(rank: u64, world: u64) -> LiveShared {
        LiveShared {
            rank,
            world,
            start: Instant::now(),
            seq: AtomicU64::new(0),
            phase: AtomicU64::new(PHASE_NONE),
            pending_wait_ns: AtomicU64::new(0),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// The rank this accumulator describes.
    pub fn rank(&self) -> u64 {
        self.rank
    }

    /// The world size the rank belongs to.
    pub fn world(&self) -> u64 {
        self.world
    }

    /// Milliseconds since the plane was armed.
    pub fn elapsed_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    /// Folds a communication-counter delta in (cumulative sums).
    pub fn add_comm(&self, delta: &CommCounters) {
        self.inner.lock().unwrap().comm.merge(delta);
    }

    /// Folds a wait-attribution delta in (cumulative sums).
    pub fn add_waits(&self, delta: &WaitCounters) {
        self.inner.lock().unwrap().waits.merge(delta);
    }

    /// Replaces the memory gauges (the pool's counters are already
    /// cumulative, so the latest view wins).
    pub fn set_mem(&self, mem: MemCounters) {
        self.inner.lock().unwrap().mem = mem;
    }

    /// Replaces the shuffle counters with the active shuffle's latest
    /// cumulative view.
    pub fn set_shuffle(&self, shuffle: ShuffleCounters) {
        self.inner.lock().unwrap().shuffle = shuffle;
    }

    /// Replaces the per-job lane records (the scheduler's current
    /// running set).
    pub fn set_jobs(&self, jobs: Vec<JobRecord>) {
        self.inner.lock().unwrap().jobs = jobs;
    }

    /// Marks the phase the rank is currently in.
    pub fn set_phase(&self, phase: u64) {
        self.phase.store(phase, Ordering::Relaxed);
    }

    /// The latest phase mark ([`PHASE_NONE`] when never marked).
    pub fn phase(&self) -> u64 {
        self.phase.load(Ordering::Relaxed)
    }

    /// Publishes the progress of an in-flight blocked receive (0 clears
    /// it on completion).
    pub fn set_pending_wait(&self, ns: u64) {
        self.pending_wait_ns.store(ns, Ordering::Relaxed);
    }

    /// Counts one flight-recorder dump.
    pub fn count_flight_dump(&self) {
        self.inner.lock().unwrap().live.flight_dumps += 1;
    }

    /// The publisher's own bookkeeping counters.
    pub fn live_counters(&self) -> LiveCounters {
        self.inner.lock().unwrap().live
    }

    /// Builds the cumulative counters-only report the publisher ships:
    /// accumulated sections, the in-flight blocked receive folded into
    /// the waits, and `times.map_s` carrying wall-clock-since-arm so a
    /// windowed delta always sees time advancing — even on a rank that
    /// is stuck.
    pub fn snapshot(&self) -> RankReport {
        let inner = self.inner.lock().unwrap();
        let mut r = RankReport::new(self.rank as usize);
        r.ranks = self.world;
        r.comm = inner.comm;
        r.waits = inner.waits;
        r.mem = inner.mem;
        r.shuffle = inner.shuffle;
        r.jobs = inner.jobs.clone();
        r.live = inner.live;
        drop(inner);
        let pending = self.pending_wait_ns.load(Ordering::Relaxed);
        r.waits.total_wait_ns += pending;
        r.waits.sync_wait_ns += pending;
        r.times.map_s = self.start.elapsed().as_secs_f64();
        r
    }

    fn record_publish(&self, bytes: u64, spent: Duration, lag_ms: u64) {
        let mut inner = self.inner.lock().unwrap();
        inner.live.snapshots += 1;
        inner.live.published_bytes += bytes;
        inner.live.publish_ns += spent.as_nanos() as u64;
        inner.live.max_publish_lag_ms = inner.live.max_publish_lag_ms.max(lag_ms);
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Arc<LiveShared>>> = const { RefCell::new(None) };
}

/// Installs `shared` as this thread's live accumulator (instrumentation
/// free functions and new communicators pick it up), returning any
/// previous one.
pub fn install_shared(shared: Arc<LiveShared>) -> Option<Arc<LiveShared>> {
    CURRENT.with(|c| c.borrow_mut().replace(shared))
}

/// Removes and returns this thread's live accumulator.
pub fn take_shared() -> Option<Arc<LiveShared>> {
    CURRENT.with(|c| c.borrow_mut().take())
}

/// This thread's live accumulator, if the plane is armed here.
pub fn shared() -> Option<Arc<LiveShared>> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Marks the phase this thread's rank is in; a no-op when unarmed.
pub fn note_phase(phase: u64) {
    CURRENT.with(|c| {
        if let Some(l) = c.borrow().as_ref() {
            l.set_phase(phase);
        }
    });
}

/// Publishes the rank's latest memory-pool gauges; a no-op when unarmed.
pub fn note_mem(mem: MemCounters) {
    CURRENT.with(|c| {
        if let Some(l) = c.borrow().as_ref() {
            l.set_mem(mem);
        }
    });
}

/// Publishes the active shuffle's latest counters; a no-op when unarmed.
pub fn note_shuffle(shuffle: ShuffleCounters) {
    CURRENT.with(|c| {
        if let Some(l) = c.borrow().as_ref() {
            l.set_shuffle(shuffle);
        }
    });
}

/// Publishes the scheduler's current per-job lane records; a no-op when
/// unarmed.
pub fn note_jobs(jobs: Vec<JobRecord>) {
    CURRENT.with(|c| {
        if let Some(l) = c.borrow().as_ref() {
            l.set_jobs(jobs);
        }
    });
}

/// A running telemetry plane on one rank: owns the publisher thread and
/// disarms on [`LiveHandle::disarm`] (or drop, best-effort).
#[derive(Debug)]
pub struct LiveHandle {
    shared: Arc<LiveShared>,
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
    process_scoped: bool,
}

impl LiveHandle {
    /// The accumulator the publisher is snapshotting.
    pub fn shared(&self) -> Arc<LiveShared> {
        Arc::clone(&self.shared)
    }

    /// Stops the publisher (it writes a final snapshot and a `live_end`
    /// record first), uninstalls the thread-local accumulator, and
    /// returns the publisher's bookkeeping counters so the caller can
    /// fold them into the rank's final report.
    pub fn disarm(mut self) -> LiveCounters {
        self.shutdown();
        take_shared();
        self.shared.live_counters()
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(join) = self.join.take() {
            join.thread().unpark();
            let _ = join.join();
        }
        if self.process_scoped {
            sigterm_disarm();
        }
    }
}

impl Drop for LiveHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Arms the telemetry plane for `rank` of `world`: creates the live
/// dir, installs the thread-local accumulator on the calling (rank)
/// thread, and spawns the publisher. `process_scoped` additionally
/// installs the async-signal-safe `SIGTERM` flight-recorder fallback —
/// pass it only for process-per-rank worlds (the handler and its
/// pre-opened dump file are process-wide).
///
/// Returns `None` when no live dir is configured ([`config`]) or the
/// sidecar file cannot be created (telemetry is best-effort; the job
/// must not die for it).
pub fn arm(rank: usize, world: usize, process_scoped: bool) -> Option<LiveHandle> {
    let cfg = config()?;
    if fs::create_dir_all(&cfg.dir).is_err() {
        return None;
    }
    let path = cfg.dir.join(format!("rank{rank}.live.jsonl"));
    let file = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(&path)
        .ok()?;
    let shared = Arc::new(LiveShared::new(rank as u64, world as u64));
    install_shared(Arc::clone(&shared));
    if process_scoped {
        sigterm_arm(&cfg, rank, world);
    }
    let stop = Arc::new(AtomicBool::new(false));
    let publisher = Publisher {
        shared: Arc::clone(&shared),
        stop: Arc::clone(&stop),
        file,
        interval: cfg.interval,
    };
    let join = thread::Builder::new()
        .name(format!("mimir-live-{rank}"))
        .spawn(move || publisher.run())
        .ok()?;
    Some(LiveHandle {
        shared,
        stop,
        join: Some(join),
        process_scoped,
    })
}

struct Publisher {
    shared: Arc<LiveShared>,
    stop: Arc<AtomicBool>,
    file: File,
    interval: Duration,
}

impl Publisher {
    fn run(mut self) {
        let mut next = Instant::now() + self.interval;
        loop {
            loop {
                if self.stop.load(Ordering::SeqCst) {
                    // Final snapshot so the tailer sees the end state,
                    // then the end-of-stream marker.
                    self.publish(0);
                    self.finish();
                    return;
                }
                let now = Instant::now();
                if now >= next {
                    break;
                }
                thread::park_timeout(next - now);
            }
            let lag = Instant::now().saturating_duration_since(next);
            self.publish(lag.as_millis() as u64);
            let now = Instant::now();
            next += self.interval;
            if next < now {
                // Missed intervals (a paused process, a slow disk):
                // realign rather than publishing a catch-up burst.
                next = now + self.interval;
            }
        }
    }

    /// Appends one cumulative `live` record.
    fn publish(&mut self, lag_ms: u64) {
        let t0 = Instant::now();
        let seq = self.shared.seq.fetch_add(1, Ordering::Relaxed);
        let report = self.shared.snapshot();
        let mut line = Json::obj(vec![("record", Json::Str("live".into()))]);
        if let (Json::Obj(dst), Json::Obj(src)) = (&mut line, report.to_json()) {
            dst.extend(src);
        }
        if let Json::Obj(dst) = &mut line {
            dst.push(("world".into(), Json::Num(self.shared.world as f64)));
            dst.push(("seq".into(), Json::Num(seq as f64)));
            dst.push(("t_ms".into(), Json::Num(self.shared.elapsed_ms() as f64)));
            dst.push(("phase".into(), Json::Num(self.shared.phase() as f64)));
        }
        let mut text = line.to_string();
        text.push('\n');
        let ok = self
            .file
            .write_all(text.as_bytes())
            .and_then(|()| self.file.flush())
            .is_ok();
        if ok {
            self.shared
                .record_publish(text.len() as u64, t0.elapsed(), lag_ms);
        }
    }

    fn finish(&mut self) {
        let end = Json::obj(vec![
            ("record", Json::Str("live_end".into())),
            ("rank", Json::Num(self.shared.rank as f64)),
            ("t_ms", Json::Num(self.shared.elapsed_ms() as f64)),
        ]);
        let mut text = end.to_string();
        text.push('\n');
        let _ = self.file.write_all(text.as_bytes());
        let _ = self.file.flush();
    }
}

/// Writes a flight-recorder dump for `rank`: a `crash` record followed
/// by the rank's report and retained trace events in the standard
/// JSON-lines format (so `mimir-doctor` ingests the corpse directly).
/// Uses this thread's armed accumulator for the counters when present,
/// and this thread's trace recorder (taken — the rank is dying) for the
/// events. Returns the dump path, or `None` when no config is set or
/// the write failed — the dump is best-effort and must never panic.
pub fn flight_dump(rank: usize, world: usize, cause: &str, message: &str) -> Option<PathBuf> {
    let cfg = config()?;
    let mut report = match shared() {
        Some(l) => {
            l.count_flight_dump();
            l.snapshot()
        }
        None => {
            let mut r = RankReport::new(rank);
            r.live.flight_dumps = 1;
            r
        }
    };
    report.rank = rank as u64;
    if let Some(rec) = crate::recorder::take() {
        report.events_dropped += rec.dropped();
        report.events = rec.events();
    }
    let phase = shared().map_or(PHASE_NONE, |l| l.phase());
    let crash = Json::obj(vec![
        ("record", Json::Str("crash".into())),
        ("rank", Json::Num(rank as f64)),
        ("world", Json::Num(world as f64)),
        ("cause", Json::Str(cause.into())),
        ("phase", Json::Num(phase as f64)),
        ("message", Json::Str(message.into())),
    ]);
    let mut body = crash.to_string();
    body.push('\n');
    body.push_str(&crate::jsonl::jsonl_string(&[report]));
    write_dump(&cfg.flight_dir, rank, "crash", body.as_bytes())
}

/// Atomically (tmp + rename) writes one dump file into `dir`.
fn write_dump(dir: &Path, rank: usize, kind: &str, bytes: &[u8]) -> Option<PathBuf> {
    fs::create_dir_all(dir).ok()?;
    let tmp = dir.join(format!(".rank{rank}.{kind}.jsonl.tmp"));
    let path = dir.join(format!("rank{rank}.{kind}.jsonl"));
    fs::write(&tmp, bytes).ok()?;
    fs::rename(&tmp, &path).ok()?;
    Some(path)
}

// --- SIGTERM fallback (process-per-rank worlds) -------------------------
//
// A SIGTERM'd forked rank cannot run the normal dump path (allocating,
// locking) from a signal handler; instead `arm` pre-opens the dump file
// and pre-formats the whole dump body, and the handler is two raw
// syscalls: `write` then `_exit`. The buffer is intentionally leaked —
// the handler may fire at any moment, so it must never be freed.

#[cfg(unix)]
mod sig {
    use super::*;

    pub(super) const SIGTERM: i32 = 15;
    /// Exit code a SIGTERM'd rank dies with after dumping.
    pub(super) const TERM_EXIT: i32 = 102;

    pub(super) static FD: AtomicI32 = AtomicI32::new(-1);
    pub(super) static PTR: AtomicUsize = AtomicUsize::new(0);
    pub(super) static LEN: AtomicUsize = AtomicUsize::new(0);

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
        fn write(fd: i32, buf: *const u8, len: usize) -> isize;
        fn close(fd: i32) -> i32;
        fn _exit(code: i32) -> !;
    }

    pub(super) extern "C" fn on_sigterm(_sig: i32) {
        let fd = FD.load(Ordering::SeqCst);
        let ptr = PTR.load(Ordering::SeqCst) as *const u8;
        let len = LEN.load(Ordering::SeqCst);
        if fd >= 0 && !ptr.is_null() && len > 0 {
            // Best-effort single write; nothing to do on failure.
            unsafe {
                let _ = write(fd, ptr, len);
            }
        }
        unsafe { _exit(TERM_EXIT) }
    }

    pub(super) fn install_handler() {
        use std::sync::Once;
        static INSTALL: Once = Once::new();
        INSTALL.call_once(|| unsafe {
            signal(SIGTERM, on_sigterm as *const () as usize);
        });
    }

    pub(super) fn close_fd(fd: i32) {
        unsafe {
            close(fd);
        }
    }
}

/// Pre-opens the SIGTERM dump file and pre-formats its body so the
/// handler only needs `write` + `_exit`.
#[cfg(unix)]
fn sigterm_arm(cfg: &LiveConfig, rank: usize, world: usize) {
    use std::os::unix::io::IntoRawFd;
    if fs::create_dir_all(&cfg.flight_dir).is_err() {
        return;
    }
    let path = cfg
        .flight_dir
        .join(format!("rank{rank}.sigterm.crash.jsonl"));
    let Ok(file) = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(&path)
    else {
        return;
    };
    let crash = Json::obj(vec![
        ("record", Json::Str("crash".into())),
        ("rank", Json::Num(rank as f64)),
        ("world", Json::Num(world as f64)),
        ("cause", Json::Str("sigterm".into())),
        ("phase", Json::Num(PHASE_NONE as f64)),
        (
            "message",
            Json::Str(format!("rank {rank} received SIGTERM")),
        ),
    ]);
    let mut report = RankReport::new(rank);
    report.live.flight_dumps = 1;
    let mut body = crash.to_string();
    body.push('\n');
    body.push_str(&crate::jsonl::jsonl_string(&[report]));
    let leaked: &'static [u8] = Box::leak(body.into_bytes().into_boxed_slice());
    sig::PTR.store(leaked.as_ptr() as usize, Ordering::SeqCst);
    sig::LEN.store(leaked.len(), Ordering::SeqCst);
    sig::FD.store(file.into_raw_fd(), Ordering::SeqCst);
    sig::install_handler();
}

#[cfg(not(unix))]
fn sigterm_arm(_cfg: &LiveConfig, _rank: usize, _world: usize) {}

/// Clean shutdown: the handler goes quiet (fd −1) and the pre-created
/// empty dump file is removed so a clean run leaves no corpse.
#[cfg(unix)]
fn sigterm_disarm() {
    let fd = sig::FD.swap(-1, Ordering::SeqCst);
    if fd >= 0 {
        sig::close_fd(fd);
        if let Some(cfg) = config() {
            if let Some(rank) = shared().map(|l| l.rank()) {
                let _ = fs::remove_file(
                    cfg.flight_dir
                        .join(format!("rank{rank}.sigterm.crash.jsonl")),
                );
            }
        }
    }
}

#[cfg(not(unix))]
fn sigterm_disarm() {}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mimir-live-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn snapshot_folds_pending_wait_and_advances_wall() {
        let l = LiveShared::new(2, 4);
        l.add_comm(&CommCounters {
            sends: 3,
            ..CommCounters::default()
        });
        l.add_waits(&WaitCounters {
            total_wait_ns: 1000,
            ..WaitCounters::default()
        });
        l.set_pending_wait(500);
        let s = l.snapshot();
        assert_eq!(s.rank, 2);
        assert_eq!(s.comm.sends, 3);
        assert_eq!(s.waits.total_wait_ns, 1500, "pending wait folds in");
        assert_eq!(s.waits.sync_wait_ns, 500);
        assert!(s.times.map_s >= 0.0);
        l.set_pending_wait(0);
        assert_eq!(l.snapshot().waits.total_wait_ns, 1000);
    }

    #[test]
    fn publisher_writes_parseable_live_records() {
        let dir = temp_dir("pub");
        let cfg = LiveConfig {
            dir: dir.clone(),
            interval: Duration::from_millis(5),
            flight_dir: dir.join("postmortem"),
        };
        set_force_config(Some(cfg));
        let handle = arm(1, 4, false).expect("armed");
        handle.shared().add_comm(&CommCounters {
            sends: 9,
            ..CommCounters::default()
        });
        handle.shared().set_phase(0);
        std::thread::sleep(Duration::from_millis(30));
        let counters = handle.disarm();
        set_force_config(None);
        assert!(counters.snapshots >= 1, "published at least once");
        assert!(counters.published_bytes > 0);
        let text = fs::read_to_string(dir.join("rank1.live.jsonl")).unwrap();
        let docs = Json::parse_lines(&text).unwrap();
        assert!(docs.len() >= 2, "live records plus live_end");
        let first = &docs[0];
        assert_eq!(first.get("record").unwrap().as_str(), Some("live"));
        assert_eq!(first.get("world").unwrap().as_u64(), Some(4));
        let parsed = RankReport::from_json(first).unwrap();
        assert_eq!(parsed.rank, 1);
        let last = docs.last().unwrap();
        assert_eq!(last.get("record").unwrap().as_str(), Some("live_end"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn flight_dump_writes_a_doctor_ingestible_corpse() {
        let dir = temp_dir("dump");
        set_force_config(Some(LiveConfig::new(dir.clone())));
        let path = flight_dump(3, 4, "panic", "boom at round 7").expect("dumped");
        set_force_config(None);
        assert_eq!(
            path.file_name().unwrap().to_str().unwrap(),
            "rank3.crash.jsonl"
        );
        let text = fs::read_to_string(&path).unwrap();
        let docs = Json::parse_lines(&text).unwrap();
        assert_eq!(docs[0].get("record").unwrap().as_str(), Some("crash"));
        assert_eq!(docs[0].get("cause").unwrap().as_str(), Some("panic"));
        assert_eq!(docs[0].get("rank").unwrap().as_u64(), Some(3));
        let report_line = docs
            .iter()
            .find(|d| d.get("record").and_then(Json::as_str) == Some("report"))
            .expect("dump carries a report line");
        let report = RankReport::from_json(report_line).unwrap();
        assert_eq!(report.rank, 3);
        assert_eq!(report.live.flight_dumps, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn env_config_parses_interval_and_flight_dir() {
        // Force-config precedence is what the parallel test suite
        // relies on; spot-check it too.
        set_force_config(Some(LiveConfig::new("/tmp/x")));
        assert_eq!(config().unwrap().dir, PathBuf::from("/tmp/x"));
        assert_eq!(
            config().unwrap().flight_dir,
            PathBuf::from("/tmp/x/postmortem")
        );
        set_force_config(None);
    }
}
