//! The unified per-rank metrics report.
//!
//! The stack accumulates statistics in four places — communication
//! counters in `mimir-mpi`, pool counters in `mimir-mem`, shuffle/job
//! counters in `mimir-core`, and the MR-MPI baseline's own struct. A
//! [`RankReport`] gathers all of them (plus the rank's trace events)
//! into one serializable record. Rank 0 collects every rank's report via
//! the `gather` collective at job end and [`RankReport::merge`]s them
//! into cluster-wide totals.
//!
//! `mimir-obs` sits below those crates in the dependency graph, so the
//! report holds plain-old-data mirrors of their stats structs; each
//! crate converts into its mirror at report-build time.

use crate::event::Event;
use crate::json::{Json, JsonError};

/// Point-to-point and collective communication counters
/// (mirrors `mimir-mpi`'s `CommStats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommCounters {
    /// Point-to-point sends issued.
    pub sends: u64,
    /// Point-to-point receives completed.
    pub recvs: u64,
    /// Payload bytes sent point-to-point.
    pub bytes_sent: u64,
    /// Payload bytes received point-to-point.
    pub bytes_recvd: u64,
    /// Collective operations participated in.
    pub collectives: u64,
    /// Payload bytes memcpy'd by the transport (pooled send buffers +
    /// caller-owned receive buffers).
    pub bytes_copied: u64,
    /// Heap allocations taken on the send path (pool misses + pooled
    /// buffer growths); flat after warm-up on the zero-copy path.
    pub send_allocs: u64,
    /// Bytes put on the wire including framing headers; zero on the
    /// in-process backend (no wire), per-frame overhead on sockets.
    pub wire_bytes_sent: u64,
    /// Bytes taken off the wire including framing headers.
    pub wire_bytes_recvd: u64,
    /// Frames sent (one per cross-process message on the socket backend).
    pub wire_frames_sent: u64,
    /// Frames received.
    pub wire_frames_recvd: u64,
    /// Receive-side buffer-pool misses in the socket readers.
    pub wire_recv_allocs: u64,
    /// Nanoseconds spent in transport bootstrap (socket bind / connect /
    /// accept / hello), reported once per rank by its world communicator.
    pub handshake_ns: u64,
}

impl CommCounters {
    /// Element-wise sum.
    pub fn merge(&mut self, other: &CommCounters) {
        self.sends += other.sends;
        self.recvs += other.recvs;
        self.bytes_sent += other.bytes_sent;
        self.bytes_recvd += other.bytes_recvd;
        self.collectives += other.collectives;
        self.bytes_copied += other.bytes_copied;
        self.send_allocs += other.send_allocs;
        self.wire_bytes_sent += other.wire_bytes_sent;
        self.wire_bytes_recvd += other.wire_bytes_recvd;
        self.wire_frames_sent += other.wire_frames_sent;
        self.wire_frames_recvd += other.wire_frames_recvd;
        self.wire_recv_allocs += other.wire_recv_allocs;
        self.handshake_ns += other.handshake_ns;
    }
}

/// Memory-pool counters (mirrors `mimir-mem`'s `MemStats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemCounters {
    /// Pages handed out.
    pub pages_allocated: u64,
    /// Pages returned to the free list.
    pub pages_recycled: u64,
    /// Bytes in use when the report was built.
    pub bytes_in_use: u64,
    /// High-water mark over the whole run.
    pub peak_bytes: u64,
    /// The pool's configured budget in bytes; 0 when the pool is
    /// unlimited (no budget to diagnose headroom against).
    pub budget_bytes: u64,
    /// Allocation attempts the pool rejected for lack of budget.
    pub oom_events: u64,
}

impl MemCounters {
    /// Sums the flow counters; peaks and in-use take the max (node pools
    /// are shared, so summing them would double-count). The budget takes
    /// the max too — ranks of one run share a per-node budget.
    pub fn merge(&mut self, other: &MemCounters) {
        self.pages_allocated += other.pages_allocated;
        self.pages_recycled += other.pages_recycled;
        self.bytes_in_use = self.bytes_in_use.max(other.bytes_in_use);
        self.peak_bytes = self.peak_bytes.max(other.peak_bytes);
        self.budget_bytes = self.budget_bytes.max(other.budget_bytes);
        self.oom_events += other.oom_events;
    }
}

/// Shuffle counters (mirrors `mimir-core`'s `ShuffleStats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShuffleCounters {
    /// KVs pushed into the shuffle on this rank.
    pub kvs_emitted: u64,
    /// Encoded bytes pushed into the shuffle.
    pub kv_bytes_emitted: u64,
    /// KVs drained out of the shuffle on this rank.
    pub kvs_received: u64,
    /// Exchange rounds this rank participated in.
    pub rounds: u64,
    /// KV payload bytes spilled to disk.
    pub spilled_bytes: u64,
    /// Encoded bytes landed in this rank's receive buffer.
    pub bytes_received: u64,
    /// Largest single-round receive total — must stay ≤ the receive
    /// buffer capacity (the Section III-B bound).
    pub max_round_recv_bytes: u64,
    /// Cumulative bytes this rank sent to its hottest destination.
    pub max_dest_bytes: u64,
    /// Send-side partition imbalance over the whole shuffle: max/mean of
    /// cumulative per-destination bytes, in permille (1000 = perfectly
    /// balanced; 0 = nothing sent).
    pub imbalance_permille: u64,
    /// Gini coefficient of cumulative per-destination bytes, in permille
    /// (0 = uniform, →1000 = everything to one destination).
    pub gini_permille: u64,
}

impl ShuffleCounters {
    /// Sums the traffic counters; rounds take the max (every rank steps
    /// through the same number of collective rounds), as do the
    /// per-round receive high-water mark and the skew metrics (the
    /// cluster is as skewed as its most skewed rank).
    pub fn merge(&mut self, other: &ShuffleCounters) {
        self.kvs_emitted += other.kvs_emitted;
        self.kv_bytes_emitted += other.kv_bytes_emitted;
        self.kvs_received += other.kvs_received;
        self.rounds = self.rounds.max(other.rounds);
        self.spilled_bytes += other.spilled_bytes;
        self.bytes_received += other.bytes_received;
        self.max_round_recv_bytes = self.max_round_recv_bytes.max(other.max_round_recv_bytes);
        self.max_dest_bytes = self.max_dest_bytes.max(other.max_dest_bytes);
        self.imbalance_permille = self.imbalance_permille.max(other.imbalance_permille);
        self.gini_permille = self.gini_permille.max(other.gini_permille);
    }
}

/// The wait-state taxonomy: where one rank's wall-clock went while the
/// transport was involved. Waits are *rank-nanoseconds blocked on peers*;
/// work is the transport's own memcpy/encode time. On a merged report the
/// values are cluster totals (sums), so the interesting diagnosis signal
/// is the *spread* across the per-rank reports, which is why exporters
/// keep per-rank lines.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WaitCounters {
    /// Every nanosecond blocked at any transport blocking point (recv,
    /// and the internal receives of all collectives). Supersets the
    /// attributed categories below.
    pub total_wait_ns: u64,
    /// Transport memcpy/encode nanoseconds (the time behind
    /// `comm.bytes_copied`). Flat under stragglers; grows with volume.
    pub total_work_ns: u64,
    /// Blocked in shuffle done-votes — straggler-bound wait: some rank
    /// was still mapping/draining when this one entered the round.
    pub sync_wait_ns: u64,
    /// Blocked completing shuffle partition receives — byte-bound wait:
    /// peers were still pushing payload.
    pub data_wait_ns: u64,
    /// Blocked in the phase barriers at aggregate/reduce boundaries.
    pub barrier_wait_ns: u64,
}

impl WaitCounters {
    /// Element-wise sum: merged waits are cluster rank-seconds blocked.
    pub fn merge(&mut self, other: &WaitCounters) {
        self.total_wait_ns += other.total_wait_ns;
        self.total_work_ns += other.total_work_ns;
        self.sync_wait_ns += other.sync_wait_ns;
        self.data_wait_ns += other.data_wait_ns;
        self.barrier_wait_ns += other.barrier_wait_ns;
    }
}

/// Wall-clock seconds spent in each phase on one rank.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTimes {
    /// Map (+ interleaved aggregate for Mimir).
    pub map_s: f64,
    /// MR-MPI's explicit aggregate.
    pub aggregate_s: f64,
    /// Convert (KV → KMV grouping).
    pub convert_s: f64,
    /// Reduce.
    pub reduce_s: f64,
}

impl PhaseTimes {
    /// Takes the per-phase max: merged times answer "how long did the
    /// cluster spend in this phase", and phases are barrier-aligned.
    pub fn merge(&mut self, other: &PhaseTimes) {
        self.map_s = self.map_s.max(other.map_s);
        self.aggregate_s = self.aggregate_s.max(other.aggregate_s);
        self.convert_s = self.convert_s.max(other.convert_s);
        self.reduce_s = self.reduce_s.max(other.reduce_s);
    }
}

/// Per-phase memory high-water marks in bytes on one rank's node pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhasePeaks {
    /// Peak during map (+ aggregate for Mimir).
    pub map_bytes: u64,
    /// Peak during convert.
    pub convert_bytes: u64,
    /// Peak during reduce.
    pub reduce_bytes: u64,
}

impl PhasePeaks {
    /// Element-wise max.
    pub fn merge(&mut self, other: &PhasePeaks) {
        self.map_bytes = self.map_bytes.max(other.map_bytes);
        self.convert_bytes = self.convert_bytes.max(other.convert_bytes);
        self.reduce_bytes = self.reduce_bytes.max(other.reduce_bytes);
    }

    /// The largest of the three phase peaks.
    pub fn max_bytes(&self) -> u64 {
        self.map_bytes
            .max(self.convert_bytes)
            .max(self.reduce_bytes)
    }
}

/// Grouping-engine counters (mirrors `mimir-core`'s `GroupStats`): the
/// arena-keyed group index behind convert, the combiner, and partial
/// reduction. All zero when the legacy `HashMap` engine ran.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroupCounters {
    /// Keys routed through the index (one per KV).
    pub inserts: u64,
    /// Probe steps beyond the home slot, summed over inserts.
    pub probes: u64,
    /// Longest single probe sequence.
    pub max_probe: u64,
    /// Slot-table rebuilds with live entries.
    pub rehashes: u64,
    /// Key bytes interned into the arena.
    pub interned_bytes: u64,
    /// Unique keys grouped.
    pub groups: u64,
    /// Slot-table capacity at measurement time.
    pub capacity: u64,
    /// Probe-length histogram: buckets 0, 1, 2, 3, 4–7, 8–15, 16–31,
    /// 32+.
    pub probe_hist: [u64; 8],
}

impl GroupCounters {
    /// Sums the traffic counters and the histogram; extremes
    /// (`max_probe`, `capacity`) take the max.
    pub fn merge(&mut self, other: &GroupCounters) {
        self.inserts += other.inserts;
        self.probes += other.probes;
        self.max_probe = self.max_probe.max(other.max_probe);
        self.rehashes += other.rehashes;
        self.interned_bytes += other.interned_bytes;
        self.groups += other.groups;
        self.capacity = self.capacity.max(other.capacity);
        for (a, b) in self.probe_hist.iter_mut().zip(other.probe_hist.iter()) {
            *a += *b;
        }
    }

    /// Mean probe steps per insert (0 when nothing was inserted).
    pub fn avg_probe(&self) -> f64 {
        if self.inserts == 0 {
            0.0
        } else {
            self.probes as f64 / self.inserts as f64
        }
    }
}

/// Adaptive-shuffle controller counters (mirrors `mimir-core`'s
/// `AdaptStats`): what the live tuner decided and what the hot-key
/// mitigation staged. All zero outside `ShuffleMode::Adaptive`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdaptCounters {
    /// Exchange-mode switches applied (ZeroCopy ↔ Overlapped posting).
    pub mode_switches: u64,
    /// Effective round-size grow steps applied.
    pub grow_steps: u64,
    /// Effective round-size shrink steps applied.
    pub shrink_steps: u64,
    /// Effective round-size fill target at job end, in permille of the
    /// partition capacity (1000 = full partitions).
    pub final_fill_permille: u64,
    /// 1 when the job finished with overlapped posting, 0 vote-first.
    pub final_overlap: u64,
    /// Round index of the last tuning change (the controller is
    /// converged from here on); 0 when no change was ever applied.
    pub converged_round: u64,
    /// Hot-destination trips: times a destination crossed the trip
    /// share and its traffic was diverted through the two-stage path.
    pub hot_trips: u64,
    /// KVs absorbed into the hot stage (count bumps included).
    pub hot_staged_kvs: u64,
    /// Encoded KV bytes those staged KVs would have sent directly.
    pub hot_staged_bytes: u64,
    /// Distinct KVs held by the hot stage (its interned population).
    pub hot_unique_kvs: u64,
    /// Encoded bytes that bypassed a full stage and shipped directly.
    pub hot_forward_bytes: u64,
    /// Exchange rounds spent in the salted spread phase of the flush.
    pub salted_rounds: u64,
    /// Exchange rounds spent in the owner-merge phase of the flush.
    pub merge_rounds: u64,
    /// Rounds where the jumbo floor overrode a shrunken fill target so
    /// the largest KV seen still fits the effective round.
    pub jumbo_floor_hits: u64,
}

impl AdaptCounters {
    /// Sums the decision/traffic counters; the convergence descriptors
    /// (`final_fill_permille`, `final_overlap`, `converged_round`) take
    /// the max — under identical tallies every rank lands on the same
    /// values, so max is the identity there and stays meaningful when a
    /// rank sat out.
    pub fn merge(&mut self, other: &AdaptCounters) {
        self.mode_switches += other.mode_switches;
        self.grow_steps += other.grow_steps;
        self.shrink_steps += other.shrink_steps;
        self.final_fill_permille = self.final_fill_permille.max(other.final_fill_permille);
        self.final_overlap = self.final_overlap.max(other.final_overlap);
        self.converged_round = self.converged_round.max(other.converged_round);
        self.hot_trips += other.hot_trips;
        self.hot_staged_kvs += other.hot_staged_kvs;
        self.hot_staged_bytes += other.hot_staged_bytes;
        self.hot_unique_kvs += other.hot_unique_kvs;
        self.hot_forward_bytes += other.hot_forward_bytes;
        self.salted_rounds += other.salted_rounds;
        self.merge_rounds += other.merge_rounds;
        self.jumbo_floor_hits += other.jumbo_floor_hits;
    }
}

/// Cross-job KV cache counters (mirrors `mimir-core`'s `CacheStats`).
/// All zero when no job used `input_cached`/`output_cached`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Chained inputs found resident.
    pub hits: u64,
    /// Lookups of names the cache did not hold.
    pub misses: u64,
    /// Shuffles skipped because the cached placement matched the job's.
    pub elisions: u64,
    /// Resident containers spilled under memory pressure.
    pub evictions: u64,
    /// Evicted entries transparently reloaded from spill.
    pub reloads: u64,
    /// Payload bytes resident when the report was built (charged against
    /// the pool budget).
    pub cached_bytes: u64,
}

impl CacheCounters {
    /// Element-wise sum: per-rank caches hold disjoint partitions, so
    /// summed bytes are the cluster's total cached footprint — and all of
    /// it charges the shared node budget.
    pub fn merge(&mut self, other: &CacheCounters) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.elisions += other.elisions;
        self.evictions += other.evictions;
        self.reloads += other.reloads;
        self.cached_bytes += other.cached_bytes;
    }
}

/// One named cross-job cache entry as a rank saw it at report time.
/// Merged reports combine records by name (each rank holds its own
/// partition, so bytes and elisions sum to dataset-wide totals).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CacheNameRecord {
    /// The user-chosen cache name.
    pub name: String,
    /// Resident payload bytes (0 while evicted or removed).
    pub bytes: u64,
    /// Cumulative elided shuffles against this name.
    pub elisions: u64,
}

impl CacheNameRecord {
    /// Folds another rank's record for the *same name* into this one.
    pub fn merge(&mut self, other: &CacheNameRecord) {
        self.bytes += other.bytes;
        self.elisions += other.elisions;
    }
}

/// Telemetry-plane counters: the live publisher's own bookkeeping
/// (`obs::live`). All zero when no live sink was armed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LiveCounters {
    /// Live snapshots published by this rank.
    pub snapshots: u64,
    /// Bytes of live records appended to the rank's sidecar file.
    pub published_bytes: u64,
    /// Nanoseconds the publisher spent building and writing snapshots
    /// (the plane's own overhead, on the publisher thread).
    pub publish_ns: u64,
    /// Worst observed gap between consecutive snapshots, in
    /// milliseconds over the configured interval (0 = every snapshot
    /// landed on time).
    pub max_publish_lag_ms: u64,
    /// Flight-recorder dumps this rank wrote (crash corpses).
    pub flight_dumps: u64,
}

impl LiveCounters {
    /// Sums the traffic counters; the lag high-water mark takes the max.
    pub fn merge(&mut self, other: &LiveCounters) {
        self.snapshots += other.snapshots;
        self.published_bytes += other.published_bytes;
        self.publish_ns += other.publish_ns;
        self.max_publish_lag_ms = self.max_publish_lag_ms.max(other.max_publish_lag_ms);
        self.flight_dumps += other.flight_dumps;
    }
}

/// Job-level counters (mirrors parts of `mimir-core`'s `JobStats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobCounters {
    /// Unique keys grouped on this rank.
    pub unique_keys: u64,
    /// KVs produced by the reduce callbacks on this rank.
    pub kvs_out: u64,
    /// Node-pool high-water mark at job end.
    pub node_peak_bytes: u64,
}

impl JobCounters {
    /// Sums the counters; the node peak takes the max.
    pub fn merge(&mut self, other: &JobCounters) {
        self.unique_keys += other.unique_keys;
        self.kvs_out += other.kvs_out;
        self.node_peak_bytes = self.node_peak_bytes.max(other.node_peak_bytes);
    }
}

/// One scheduled job's lifecycle record (mirrors `mimir-sched`'s
/// per-job stats): how long it queued, how long it ran, what it
/// reserved, and what it produced. A rank reports one record per job it
/// participated in; merged reports combine records by job id.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JobRecord {
    /// Scheduler-assigned job id.
    pub id: u64,
    /// Human-readable job name.
    pub name: String,
    /// Submission priority (higher runs first).
    pub priority: u64,
    /// Terminal outcome code (the scheduler's `JobOutcome` encoding:
    /// 0 done, then increasing severity).
    pub outcome: u64,
    /// Times the job was suspended and re-queued after an OOM.
    pub retries: u64,
    /// Seconds spent waiting in the admission queue.
    pub queued_s: f64,
    /// Seconds spent admitted and running.
    pub running_s: f64,
    /// Reserved memory footprint at final admission, in bytes.
    pub footprint_bytes: u64,
    /// KVs the job's reduce produced on this rank.
    pub kvs_out: u64,
    /// Bytes the job spilled to its scoped spill directory on this rank.
    pub spill_bytes: u64,
}

impl JobRecord {
    /// Folds another rank's record for the *same job* into this one:
    /// per-rank production sums, lifecycle times and extremes take the
    /// max (the lifecycle is collective, so ranks agree up to clock
    /// skew).
    pub fn merge(&mut self, other: &JobRecord) {
        self.priority = self.priority.max(other.priority);
        self.outcome = self.outcome.max(other.outcome);
        self.retries = self.retries.max(other.retries);
        self.queued_s = self.queued_s.max(other.queued_s);
        self.running_s = self.running_s.max(other.running_s);
        self.footprint_bytes = self.footprint_bytes.max(other.footprint_bytes);
        self.kvs_out += other.kvs_out;
        self.spill_bytes += other.spill_bytes;
    }
}

/// Everything one rank knows about a finished job: counters from every
/// layer plus (optionally) the rank's trace events.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankReport {
    /// The rank this report describes; after [`merge`](Self::merge),
    /// the number of ranks folded in is tracked by [`Self::ranks`].
    pub rank: u64,
    /// How many rank reports were merged into this one (1 for a fresh
    /// single-rank report).
    pub ranks: u64,
    /// Communication counters.
    pub comm: CommCounters,
    /// Memory-pool counters.
    pub mem: MemCounters,
    /// Shuffle counters.
    pub shuffle: ShuffleCounters,
    /// Wait-state attribution: where this rank's transport time went.
    pub waits: WaitCounters,
    /// Grouping-engine counters.
    pub group: GroupCounters,
    /// Adaptive-shuffle controller counters.
    pub adapt: AdaptCounters,
    /// Per-phase wall-clock times.
    pub times: PhaseTimes,
    /// Per-phase memory peaks.
    pub peaks: PhasePeaks,
    /// Job-level counters.
    pub job: JobCounters,
    /// Cross-job KV cache counters.
    pub cache: CacheCounters,
    /// Telemetry-plane counters (the live publisher's bookkeeping).
    pub live: LiveCounters,
    /// Per-name cache entries. Merged reports combine records by name.
    pub cache_names: Vec<CacheNameRecord>,
    /// Per-scheduled-job lifecycle records (empty outside the job
    /// service). Merged reports combine records by job id.
    pub jobs: Vec<JobRecord>,
    /// Trace events retained by the rank's recorder (empty when tracing
    /// was off, and dropped from merged reports).
    pub events: Vec<Event>,
    /// Events the recorder overwrote on ring overflow.
    pub events_dropped: u64,
}

impl RankReport {
    /// A fresh report for `rank` with all counters zero.
    pub fn new(rank: usize) -> Self {
        RankReport {
            rank: rank as u64,
            ranks: 1,
            ..RankReport::default()
        }
    }

    /// Folds `other` into `self`, producing cluster-wide aggregates:
    /// counters sum, peaks and barrier-aligned times take the max.
    /// Per-rank trace events do not survive merging (a merged report
    /// describes the cluster, and traces stay per-rank in the exporters).
    pub fn merge(&mut self, other: &RankReport) {
        self.ranks += other.ranks;
        self.comm.merge(&other.comm);
        self.mem.merge(&other.mem);
        self.shuffle.merge(&other.shuffle);
        self.waits.merge(&other.waits);
        self.group.merge(&other.group);
        self.adapt.merge(&other.adapt);
        self.times.merge(&other.times);
        self.peaks.merge(&other.peaks);
        self.job.merge(&other.job);
        self.cache.merge(&other.cache);
        self.live.merge(&other.live);
        for theirs in &other.cache_names {
            if let Some(mine) = self.cache_names.iter_mut().find(|c| c.name == theirs.name) {
                mine.merge(theirs);
            } else {
                self.cache_names.push(theirs.clone());
            }
        }
        self.cache_names.sort_by(|a, b| a.name.cmp(&b.name));
        for theirs in &other.jobs {
            if let Some(mine) = self.jobs.iter_mut().find(|j| j.id == theirs.id) {
                mine.merge(theirs);
            } else {
                self.jobs.push(theirs.clone());
            }
        }
        self.jobs.sort_by_key(|j| j.id);
        self.events.clear();
        self.events_dropped += other.events_dropped;
    }

    /// The windowed difference `self − base`, where `base` is an
    /// *earlier snapshot of the same rank*: cumulative counters subtract
    /// (saturating, so a restarted counter degrades to "whole window"
    /// instead of wrapping), gauges and high-water marks take the later
    /// value, and phase times subtract clamped at zero. This is the
    /// online doctor's unit of analysis — rules run over the delta of a
    /// rolling live window rather than run-lifetime totals.
    pub fn delta_since(&self, base: &RankReport) -> RankReport {
        let d = u64::saturating_sub;
        let mut out = self.clone();
        out.events.clear();
        out.events_dropped = d(self.events_dropped, base.events_dropped);
        out.comm = CommCounters {
            sends: d(self.comm.sends, base.comm.sends),
            recvs: d(self.comm.recvs, base.comm.recvs),
            bytes_sent: d(self.comm.bytes_sent, base.comm.bytes_sent),
            bytes_recvd: d(self.comm.bytes_recvd, base.comm.bytes_recvd),
            collectives: d(self.comm.collectives, base.comm.collectives),
            bytes_copied: d(self.comm.bytes_copied, base.comm.bytes_copied),
            send_allocs: d(self.comm.send_allocs, base.comm.send_allocs),
            wire_bytes_sent: d(self.comm.wire_bytes_sent, base.comm.wire_bytes_sent),
            wire_bytes_recvd: d(self.comm.wire_bytes_recvd, base.comm.wire_bytes_recvd),
            wire_frames_sent: d(self.comm.wire_frames_sent, base.comm.wire_frames_sent),
            wire_frames_recvd: d(self.comm.wire_frames_recvd, base.comm.wire_frames_recvd),
            wire_recv_allocs: d(self.comm.wire_recv_allocs, base.comm.wire_recv_allocs),
            handshake_ns: d(self.comm.handshake_ns, base.comm.handshake_ns),
        };
        out.mem = MemCounters {
            pages_allocated: d(self.mem.pages_allocated, base.mem.pages_allocated),
            pages_recycled: d(self.mem.pages_recycled, base.mem.pages_recycled),
            // Gauges and limits: the window's latest view.
            bytes_in_use: self.mem.bytes_in_use,
            peak_bytes: self.mem.peak_bytes,
            budget_bytes: self.mem.budget_bytes,
            oom_events: d(self.mem.oom_events, base.mem.oom_events),
        };
        out.shuffle = ShuffleCounters {
            kvs_emitted: d(self.shuffle.kvs_emitted, base.shuffle.kvs_emitted),
            kv_bytes_emitted: d(self.shuffle.kv_bytes_emitted, base.shuffle.kv_bytes_emitted),
            kvs_received: d(self.shuffle.kvs_received, base.shuffle.kvs_received),
            rounds: d(self.shuffle.rounds, base.shuffle.rounds),
            spilled_bytes: d(self.shuffle.spilled_bytes, base.shuffle.spilled_bytes),
            bytes_received: d(self.shuffle.bytes_received, base.shuffle.bytes_received),
            max_round_recv_bytes: self.shuffle.max_round_recv_bytes,
            max_dest_bytes: self.shuffle.max_dest_bytes,
            imbalance_permille: self.shuffle.imbalance_permille,
            gini_permille: self.shuffle.gini_permille,
        };
        out.waits = WaitCounters {
            total_wait_ns: d(self.waits.total_wait_ns, base.waits.total_wait_ns),
            total_work_ns: d(self.waits.total_work_ns, base.waits.total_work_ns),
            sync_wait_ns: d(self.waits.sync_wait_ns, base.waits.sync_wait_ns),
            data_wait_ns: d(self.waits.data_wait_ns, base.waits.data_wait_ns),
            barrier_wait_ns: d(self.waits.barrier_wait_ns, base.waits.barrier_wait_ns),
        };
        out.times = PhaseTimes {
            map_s: (self.times.map_s - base.times.map_s).max(0.0),
            aggregate_s: (self.times.aggregate_s - base.times.aggregate_s).max(0.0),
            convert_s: (self.times.convert_s - base.times.convert_s).max(0.0),
            reduce_s: (self.times.reduce_s - base.times.reduce_s).max(0.0),
        };
        out.group = GroupCounters {
            inserts: d(self.group.inserts, base.group.inserts),
            probes: d(self.group.probes, base.group.probes),
            max_probe: self.group.max_probe,
            rehashes: d(self.group.rehashes, base.group.rehashes),
            interned_bytes: d(self.group.interned_bytes, base.group.interned_bytes),
            groups: d(self.group.groups, base.group.groups),
            capacity: self.group.capacity,
            probe_hist: {
                let mut h = [0u64; 8];
                for (i, slot) in h.iter_mut().enumerate() {
                    *slot = d(self.group.probe_hist[i], base.group.probe_hist[i]);
                }
                h
            },
        };
        out.cache = CacheCounters {
            hits: d(self.cache.hits, base.cache.hits),
            misses: d(self.cache.misses, base.cache.misses),
            elisions: d(self.cache.elisions, base.cache.elisions),
            evictions: d(self.cache.evictions, base.cache.evictions),
            reloads: d(self.cache.reloads, base.cache.reloads),
            cached_bytes: self.cache.cached_bytes,
        };
        out.job = JobCounters {
            unique_keys: d(self.job.unique_keys, base.job.unique_keys),
            kvs_out: d(self.job.kvs_out, base.job.kvs_out),
            node_peak_bytes: self.job.node_peak_bytes,
        };
        out.live = LiveCounters {
            snapshots: d(self.live.snapshots, base.live.snapshots),
            published_bytes: d(self.live.published_bytes, base.live.published_bytes),
            publish_ns: d(self.live.publish_ns, base.live.publish_ns),
            max_publish_lag_ms: self.live.max_publish_lag_ms,
            flight_dumps: d(self.live.flight_dumps, base.live.flight_dumps),
        };
        // adapt, peaks, cache_names, jobs keep the latest view: they are
        // descriptors rather than flow counters, and the watch UI wants
        // the current state of each.
        out
    }

    /// Serializes to a JSON object (see [`Self::from_json`] for the
    /// inverse).
    pub fn to_json(&self) -> Json {
        let events = self
            .events
            .iter()
            .map(|e| {
                Json::Arr(vec![
                    Json::Num(e.t_ns as f64),
                    Json::Num(e.kind.code() as f64),
                    Json::Num(e.a as f64),
                    Json::Num(e.b as f64),
                ])
            })
            .collect();
        Json::obj(vec![
            ("rank", Json::Num(self.rank as f64)),
            ("ranks", Json::Num(self.ranks as f64)),
            (
                "comm",
                Json::obj(vec![
                    ("sends", Json::Num(self.comm.sends as f64)),
                    ("recvs", Json::Num(self.comm.recvs as f64)),
                    ("bytes_sent", Json::Num(self.comm.bytes_sent as f64)),
                    ("bytes_recvd", Json::Num(self.comm.bytes_recvd as f64)),
                    ("collectives", Json::Num(self.comm.collectives as f64)),
                    ("bytes_copied", Json::Num(self.comm.bytes_copied as f64)),
                    ("send_allocs", Json::Num(self.comm.send_allocs as f64)),
                    (
                        "wire_bytes_sent",
                        Json::Num(self.comm.wire_bytes_sent as f64),
                    ),
                    (
                        "wire_bytes_recvd",
                        Json::Num(self.comm.wire_bytes_recvd as f64),
                    ),
                    (
                        "wire_frames_sent",
                        Json::Num(self.comm.wire_frames_sent as f64),
                    ),
                    (
                        "wire_frames_recvd",
                        Json::Num(self.comm.wire_frames_recvd as f64),
                    ),
                    (
                        "wire_recv_allocs",
                        Json::Num(self.comm.wire_recv_allocs as f64),
                    ),
                    ("handshake_ns", Json::Num(self.comm.handshake_ns as f64)),
                ]),
            ),
            (
                "mem",
                Json::obj(vec![
                    (
                        "pages_allocated",
                        Json::Num(self.mem.pages_allocated as f64),
                    ),
                    ("pages_recycled", Json::Num(self.mem.pages_recycled as f64)),
                    ("bytes_in_use", Json::Num(self.mem.bytes_in_use as f64)),
                    ("peak_bytes", Json::Num(self.mem.peak_bytes as f64)),
                    ("budget_bytes", Json::Num(self.mem.budget_bytes as f64)),
                    ("oom_events", Json::Num(self.mem.oom_events as f64)),
                ]),
            ),
            (
                "shuffle",
                Json::obj(vec![
                    ("kvs_emitted", Json::Num(self.shuffle.kvs_emitted as f64)),
                    (
                        "kv_bytes_emitted",
                        Json::Num(self.shuffle.kv_bytes_emitted as f64),
                    ),
                    ("kvs_received", Json::Num(self.shuffle.kvs_received as f64)),
                    ("rounds", Json::Num(self.shuffle.rounds as f64)),
                    (
                        "spilled_bytes",
                        Json::Num(self.shuffle.spilled_bytes as f64),
                    ),
                    (
                        "bytes_received",
                        Json::Num(self.shuffle.bytes_received as f64),
                    ),
                    (
                        "max_round_recv_bytes",
                        Json::Num(self.shuffle.max_round_recv_bytes as f64),
                    ),
                    (
                        "max_dest_bytes",
                        Json::Num(self.shuffle.max_dest_bytes as f64),
                    ),
                    (
                        "imbalance_permille",
                        Json::Num(self.shuffle.imbalance_permille as f64),
                    ),
                    (
                        "gini_permille",
                        Json::Num(self.shuffle.gini_permille as f64),
                    ),
                ]),
            ),
            (
                "waits",
                Json::obj(vec![
                    ("total_wait_ns", Json::Num(self.waits.total_wait_ns as f64)),
                    ("total_work_ns", Json::Num(self.waits.total_work_ns as f64)),
                    ("sync_wait_ns", Json::Num(self.waits.sync_wait_ns as f64)),
                    ("data_wait_ns", Json::Num(self.waits.data_wait_ns as f64)),
                    (
                        "barrier_wait_ns",
                        Json::Num(self.waits.barrier_wait_ns as f64),
                    ),
                ]),
            ),
            (
                "group",
                Json::obj(vec![
                    ("inserts", Json::Num(self.group.inserts as f64)),
                    ("probes", Json::Num(self.group.probes as f64)),
                    ("max_probe", Json::Num(self.group.max_probe as f64)),
                    ("rehashes", Json::Num(self.group.rehashes as f64)),
                    (
                        "interned_bytes",
                        Json::Num(self.group.interned_bytes as f64),
                    ),
                    ("groups", Json::Num(self.group.groups as f64)),
                    ("capacity", Json::Num(self.group.capacity as f64)),
                    (
                        "probe_hist",
                        Json::Arr(
                            self.group
                                .probe_hist
                                .iter()
                                .map(|&n| Json::Num(n as f64))
                                .collect(),
                        ),
                    ),
                ]),
            ),
            (
                "adapt",
                Json::obj(vec![
                    ("mode_switches", Json::Num(self.adapt.mode_switches as f64)),
                    ("grow_steps", Json::Num(self.adapt.grow_steps as f64)),
                    ("shrink_steps", Json::Num(self.adapt.shrink_steps as f64)),
                    (
                        "final_fill_permille",
                        Json::Num(self.adapt.final_fill_permille as f64),
                    ),
                    ("final_overlap", Json::Num(self.adapt.final_overlap as f64)),
                    (
                        "converged_round",
                        Json::Num(self.adapt.converged_round as f64),
                    ),
                    ("hot_trips", Json::Num(self.adapt.hot_trips as f64)),
                    (
                        "hot_staged_kvs",
                        Json::Num(self.adapt.hot_staged_kvs as f64),
                    ),
                    (
                        "hot_staged_bytes",
                        Json::Num(self.adapt.hot_staged_bytes as f64),
                    ),
                    (
                        "hot_unique_kvs",
                        Json::Num(self.adapt.hot_unique_kvs as f64),
                    ),
                    (
                        "hot_forward_bytes",
                        Json::Num(self.adapt.hot_forward_bytes as f64),
                    ),
                    ("salted_rounds", Json::Num(self.adapt.salted_rounds as f64)),
                    ("merge_rounds", Json::Num(self.adapt.merge_rounds as f64)),
                    (
                        "jumbo_floor_hits",
                        Json::Num(self.adapt.jumbo_floor_hits as f64),
                    ),
                ]),
            ),
            (
                "times",
                Json::obj(vec![
                    ("map_s", Json::Num(self.times.map_s)),
                    ("aggregate_s", Json::Num(self.times.aggregate_s)),
                    ("convert_s", Json::Num(self.times.convert_s)),
                    ("reduce_s", Json::Num(self.times.reduce_s)),
                ]),
            ),
            (
                "peaks",
                Json::obj(vec![
                    ("map_bytes", Json::Num(self.peaks.map_bytes as f64)),
                    ("convert_bytes", Json::Num(self.peaks.convert_bytes as f64)),
                    ("reduce_bytes", Json::Num(self.peaks.reduce_bytes as f64)),
                ]),
            ),
            (
                "job",
                Json::obj(vec![
                    ("unique_keys", Json::Num(self.job.unique_keys as f64)),
                    ("kvs_out", Json::Num(self.job.kvs_out as f64)),
                    (
                        "node_peak_bytes",
                        Json::Num(self.job.node_peak_bytes as f64),
                    ),
                ]),
            ),
            (
                "cache",
                Json::obj(vec![
                    ("hits", Json::Num(self.cache.hits as f64)),
                    ("misses", Json::Num(self.cache.misses as f64)),
                    ("elisions", Json::Num(self.cache.elisions as f64)),
                    ("evictions", Json::Num(self.cache.evictions as f64)),
                    ("reloads", Json::Num(self.cache.reloads as f64)),
                    ("cached_bytes", Json::Num(self.cache.cached_bytes as f64)),
                ]),
            ),
            (
                "live",
                Json::obj(vec![
                    ("snapshots", Json::Num(self.live.snapshots as f64)),
                    (
                        "published_bytes",
                        Json::Num(self.live.published_bytes as f64),
                    ),
                    ("publish_ns", Json::Num(self.live.publish_ns as f64)),
                    (
                        "max_publish_lag_ms",
                        Json::Num(self.live.max_publish_lag_ms as f64),
                    ),
                    ("flight_dumps", Json::Num(self.live.flight_dumps as f64)),
                ]),
            ),
            (
                "cache_names",
                Json::Arr(
                    self.cache_names
                        .iter()
                        .map(|c| {
                            Json::obj(vec![
                                ("name", Json::Str(c.name.clone())),
                                ("bytes", Json::Num(c.bytes as f64)),
                                ("elisions", Json::Num(c.elisions as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "jobs",
                Json::Arr(
                    self.jobs
                        .iter()
                        .map(|j| {
                            Json::obj(vec![
                                ("id", Json::Num(j.id as f64)),
                                ("name", Json::Str(j.name.clone())),
                                ("priority", Json::Num(j.priority as f64)),
                                ("outcome", Json::Num(j.outcome as f64)),
                                ("retries", Json::Num(j.retries as f64)),
                                ("queued_s", Json::Num(j.queued_s)),
                                ("running_s", Json::Num(j.running_s)),
                                ("footprint_bytes", Json::Num(j.footprint_bytes as f64)),
                                ("kvs_out", Json::Num(j.kvs_out as f64)),
                                ("spill_bytes", Json::Num(j.spill_bytes as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("events", Json::Arr(events)),
            ("events_dropped", Json::Num(self.events_dropped as f64)),
        ])
    }

    /// Deserializes a report produced by [`Self::to_json`].
    ///
    /// # Errors
    /// Missing or mistyped fields.
    pub fn from_json(v: &Json) -> Result<RankReport, JsonError> {
        fn field(v: &Json, path: &[&str]) -> Result<f64, JsonError> {
            let mut cur = v;
            for key in path {
                cur = cur.get(key).ok_or_else(|| JsonError {
                    msg: format!("missing field `{}`", path.join(".")),
                    at: 0,
                })?;
            }
            cur.as_f64().ok_or_else(|| JsonError {
                msg: format!("field `{}` is not a number", path.join(".")),
                at: 0,
            })
        }
        let u = |path: &[&str]| -> Result<u64, JsonError> { field(v, path).map(|n| n as u64) };
        // Counters added after the first release parse leniently so
        // reports recorded by older builds still load.
        let u_opt = |path: &[&str]| -> u64 { field(v, path).map_or(0, |n| n as u64) };
        // The cross-job cache postdates the first release: the whole
        // section parses leniently.
        let mut cache_names = Vec::new();
        if let Some(Json::Arr(items)) = v.get("cache_names") {
            for item in items {
                cache_names.push(CacheNameRecord {
                    name: item
                        .get("name")
                        .and_then(Json::as_str)
                        .unwrap_or("")
                        .to_string(),
                    bytes: item.get("bytes").and_then(Json::as_u64).unwrap_or(0),
                    elisions: item.get("elisions").and_then(Json::as_u64).unwrap_or(0),
                });
            }
        }
        // The job service postdates the first release: absent in old
        // reports, so the whole section parses leniently.
        let mut jobs = Vec::new();
        if let Some(Json::Arr(items)) = v.get("jobs") {
            for item in items {
                let ju = |key: &str| -> u64 { item.get(key).and_then(Json::as_u64).unwrap_or(0) };
                let jf = |key: &str| -> f64 { item.get(key).and_then(Json::as_f64).unwrap_or(0.0) };
                jobs.push(JobRecord {
                    id: ju("id"),
                    name: item
                        .get("name")
                        .and_then(Json::as_str)
                        .unwrap_or("")
                        .to_string(),
                    priority: ju("priority"),
                    outcome: ju("outcome"),
                    retries: ju("retries"),
                    queued_s: jf("queued_s"),
                    running_s: jf("running_s"),
                    footprint_bytes: ju("footprint_bytes"),
                    kvs_out: ju("kvs_out"),
                    spill_bytes: ju("spill_bytes"),
                });
            }
        }
        let mut events = Vec::new();
        if let Some(Json::Arr(items)) = v.get("events") {
            for item in items {
                let cols = item.as_arr().ok_or_else(|| JsonError {
                    msg: "event is not an array".into(),
                    at: 0,
                })?;
                if cols.len() != 4 {
                    return Err(JsonError {
                        msg: "event needs 4 columns".into(),
                        at: 0,
                    });
                }
                let num = |i: usize| -> Result<u64, JsonError> {
                    cols[i].as_u64().ok_or_else(|| JsonError {
                        msg: "event column is not a number".into(),
                        at: 0,
                    })
                };
                let kind =
                    crate::event::EventKind::from_code(num(1)?).ok_or_else(|| JsonError {
                        msg: "unknown event kind".into(),
                        at: 0,
                    })?;
                events.push(Event {
                    t_ns: num(0)?,
                    kind,
                    a: num(2)?,
                    b: num(3)?,
                });
            }
        }
        Ok(RankReport {
            rank: u(&["rank"])?,
            ranks: u(&["ranks"])?,
            comm: CommCounters {
                sends: u(&["comm", "sends"])?,
                recvs: u(&["comm", "recvs"])?,
                bytes_sent: u(&["comm", "bytes_sent"])?,
                bytes_recvd: u(&["comm", "bytes_recvd"])?,
                collectives: u(&["comm", "collectives"])?,
                bytes_copied: u_opt(&["comm", "bytes_copied"]),
                send_allocs: u_opt(&["comm", "send_allocs"]),
                wire_bytes_sent: u_opt(&["comm", "wire_bytes_sent"]),
                wire_bytes_recvd: u_opt(&["comm", "wire_bytes_recvd"]),
                wire_frames_sent: u_opt(&["comm", "wire_frames_sent"]),
                wire_frames_recvd: u_opt(&["comm", "wire_frames_recvd"]),
                wire_recv_allocs: u_opt(&["comm", "wire_recv_allocs"]),
                handshake_ns: u_opt(&["comm", "handshake_ns"]),
            },
            mem: MemCounters {
                pages_allocated: u(&["mem", "pages_allocated"])?,
                pages_recycled: u(&["mem", "pages_recycled"])?,
                bytes_in_use: u(&["mem", "bytes_in_use"])?,
                peak_bytes: u(&["mem", "peak_bytes"])?,
                budget_bytes: u_opt(&["mem", "budget_bytes"]),
                oom_events: u_opt(&["mem", "oom_events"]),
            },
            shuffle: ShuffleCounters {
                kvs_emitted: u(&["shuffle", "kvs_emitted"])?,
                kv_bytes_emitted: u(&["shuffle", "kv_bytes_emitted"])?,
                kvs_received: u(&["shuffle", "kvs_received"])?,
                rounds: u(&["shuffle", "rounds"])?,
                spilled_bytes: u(&["shuffle", "spilled_bytes"])?,
                bytes_received: u_opt(&["shuffle", "bytes_received"]),
                max_round_recv_bytes: u_opt(&["shuffle", "max_round_recv_bytes"]),
                max_dest_bytes: u_opt(&["shuffle", "max_dest_bytes"]),
                imbalance_permille: u_opt(&["shuffle", "imbalance_permille"]),
                gini_permille: u_opt(&["shuffle", "gini_permille"]),
            },
            // The whole waits section postdates the first release.
            waits: WaitCounters {
                total_wait_ns: u_opt(&["waits", "total_wait_ns"]),
                total_work_ns: u_opt(&["waits", "total_work_ns"]),
                sync_wait_ns: u_opt(&["waits", "sync_wait_ns"]),
                data_wait_ns: u_opt(&["waits", "data_wait_ns"]),
                barrier_wait_ns: u_opt(&["waits", "barrier_wait_ns"]),
            },
            group: {
                // Added after the first release: the whole object may be
                // absent in old reports, so every field parses leniently.
                let mut probe_hist = [0u64; 8];
                if let Some(Json::Arr(items)) = v.get("group").and_then(|g| g.get("probe_hist")) {
                    for (slot, item) in probe_hist.iter_mut().zip(items.iter()) {
                        *slot = item.as_u64().unwrap_or(0);
                    }
                }
                GroupCounters {
                    inserts: u_opt(&["group", "inserts"]),
                    probes: u_opt(&["group", "probes"]),
                    max_probe: u_opt(&["group", "max_probe"]),
                    rehashes: u_opt(&["group", "rehashes"]),
                    interned_bytes: u_opt(&["group", "interned_bytes"]),
                    groups: u_opt(&["group", "groups"]),
                    capacity: u_opt(&["group", "capacity"]),
                    probe_hist,
                }
            },
            // The adaptive controller postdates the first release: the
            // whole section parses leniently like the group section.
            adapt: AdaptCounters {
                mode_switches: u_opt(&["adapt", "mode_switches"]),
                grow_steps: u_opt(&["adapt", "grow_steps"]),
                shrink_steps: u_opt(&["adapt", "shrink_steps"]),
                final_fill_permille: u_opt(&["adapt", "final_fill_permille"]),
                final_overlap: u_opt(&["adapt", "final_overlap"]),
                converged_round: u_opt(&["adapt", "converged_round"]),
                hot_trips: u_opt(&["adapt", "hot_trips"]),
                hot_staged_kvs: u_opt(&["adapt", "hot_staged_kvs"]),
                hot_staged_bytes: u_opt(&["adapt", "hot_staged_bytes"]),
                hot_unique_kvs: u_opt(&["adapt", "hot_unique_kvs"]),
                hot_forward_bytes: u_opt(&["adapt", "hot_forward_bytes"]),
                salted_rounds: u_opt(&["adapt", "salted_rounds"]),
                merge_rounds: u_opt(&["adapt", "merge_rounds"]),
                jumbo_floor_hits: u_opt(&["adapt", "jumbo_floor_hits"]),
            },
            times: PhaseTimes {
                map_s: field(v, &["times", "map_s"])?,
                aggregate_s: field(v, &["times", "aggregate_s"])?,
                convert_s: field(v, &["times", "convert_s"])?,
                reduce_s: field(v, &["times", "reduce_s"])?,
            },
            peaks: PhasePeaks {
                map_bytes: u(&["peaks", "map_bytes"])?,
                convert_bytes: u(&["peaks", "convert_bytes"])?,
                reduce_bytes: u(&["peaks", "reduce_bytes"])?,
            },
            job: JobCounters {
                unique_keys: u(&["job", "unique_keys"])?,
                kvs_out: u(&["job", "kvs_out"])?,
                node_peak_bytes: u(&["job", "node_peak_bytes"])?,
            },
            cache: CacheCounters {
                hits: u_opt(&["cache", "hits"]),
                misses: u_opt(&["cache", "misses"]),
                elisions: u_opt(&["cache", "elisions"]),
                evictions: u_opt(&["cache", "evictions"]),
                reloads: u_opt(&["cache", "reloads"]),
                cached_bytes: u_opt(&["cache", "cached_bytes"]),
            },
            // The telemetry plane postdates the first release: the whole
            // section parses leniently.
            live: LiveCounters {
                snapshots: u_opt(&["live", "snapshots"]),
                published_bytes: u_opt(&["live", "published_bytes"]),
                publish_ns: u_opt(&["live", "publish_ns"]),
                max_publish_lag_ms: u_opt(&["live", "max_publish_lag_ms"]),
                flight_dumps: u_opt(&["live", "flight_dumps"]),
            },
            cache_names,
            jobs,
            events,
            events_dropped: u(&["events_dropped"])?,
        })
    }

    /// Serializes to a compact single-line JSON string (the gather
    /// payload and the JSON-lines record format).
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string()
    }

    /// Parses a string produced by [`Self::to_json_string`].
    ///
    /// # Errors
    /// Malformed JSON or missing fields.
    pub fn from_json_string(s: &str) -> Result<RankReport, JsonError> {
        RankReport::from_json(&Json::parse(s)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn sample(rank: u64) -> RankReport {
        RankReport {
            rank,
            ranks: 1,
            comm: CommCounters {
                sends: 10 + rank,
                recvs: 9,
                bytes_sent: 1000,
                bytes_recvd: 900,
                collectives: 4,
                bytes_copied: 1700,
                send_allocs: 3 + rank,
                wire_bytes_sent: 1200 + rank,
                wire_bytes_recvd: 1100,
                wire_frames_sent: 12,
                wire_frames_recvd: 11,
                wire_recv_allocs: 2,
                handshake_ns: 5000 + rank,
            },
            mem: MemCounters {
                pages_allocated: 8,
                pages_recycled: 8,
                bytes_in_use: 0,
                peak_bytes: 1 << 20,
                budget_bytes: 4 << 20,
                oom_events: rank,
            },
            shuffle: ShuffleCounters {
                kvs_emitted: 100 * (rank + 1),
                kv_bytes_emitted: 800,
                kvs_received: 100,
                rounds: 2 + rank,
                spilled_bytes: 0,
                bytes_received: 850,
                max_round_recv_bytes: 400 + rank,
                max_dest_bytes: 600 + rank,
                imbalance_permille: 1000 + 100 * rank,
                gini_permille: 50 * rank,
            },
            waits: WaitCounters {
                total_wait_ns: 90_000 + rank,
                total_work_ns: 8_000,
                sync_wait_ns: 60_000 * (rank + 1),
                data_wait_ns: 20_000,
                barrier_wait_ns: 10_000,
            },
            group: GroupCounters {
                inserts: 200 * (rank + 1),
                probes: 40,
                max_probe: 3 + rank,
                rehashes: 5,
                interned_bytes: 640,
                groups: 50,
                capacity: 128,
                probe_hist: [150, 30, 10, 5, 5, 0, 0, rank],
            },
            adapt: AdaptCounters {
                mode_switches: 1 + rank,
                grow_steps: 2,
                shrink_steps: rank,
                final_fill_permille: 750 + 50 * rank,
                final_overlap: rank % 2,
                converged_round: 6 + rank,
                hot_trips: rank,
                hot_staged_kvs: 300 * rank,
                hot_staged_bytes: 4800 * rank,
                hot_unique_kvs: 3 * rank,
                hot_forward_bytes: 16 * rank,
                salted_rounds: rank,
                merge_rounds: rank,
                jumbo_floor_hits: 0,
            },
            times: PhaseTimes {
                map_s: 0.5 + rank as f64,
                aggregate_s: 0.0,
                convert_s: 0.25,
                reduce_s: 0.125,
            },
            peaks: PhasePeaks {
                map_bytes: 1 << 19,
                convert_bytes: 1 << 20,
                reduce_bytes: 1 << 18,
            },
            job: JobCounters {
                unique_keys: 50,
                kvs_out: 50,
                node_peak_bytes: 1 << 20,
            },
            cache: CacheCounters {
                hits: 6 + rank,
                misses: 1,
                elisions: 5 * (rank + 1),
                evictions: rank,
                reloads: rank,
                cached_bytes: 4096 * (rank + 1),
            },
            live: LiveCounters {
                snapshots: 12 + rank,
                published_bytes: 9000 * (rank + 1),
                publish_ns: 40_000 + rank,
                max_publish_lag_ms: 3 * rank,
                flight_dumps: rank % 2,
            },
            cache_names: vec![CacheNameRecord {
                name: "pr".into(),
                bytes: 4096 * (rank + 1),
                elisions: 5 * (rank + 1),
            }],
            jobs: vec![JobRecord {
                id: 7,
                name: "wc-small".into(),
                priority: 2,
                outcome: 0,
                retries: rank,
                queued_s: 0.01,
                running_s: 0.5 + rank as f64,
                footprint_bytes: 1 << 20,
                kvs_out: 25 * (rank + 1),
                spill_bytes: 128 * rank,
            }],
            events: vec![Event {
                t_ns: 42,
                kind: EventKind::MemSample,
                a: 1,
                b: 2,
            }],
            events_dropped: 0,
        }
    }

    #[test]
    fn json_roundtrip_preserves_everything() {
        let r = sample(3);
        let back = RankReport::from_json_string(&r.to_json_string()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn merge_sums_counters_and_maxes_peaks() {
        let mut a = sample(0);
        let b = sample(1);
        a.merge(&b);
        assert_eq!(a.ranks, 2);
        assert_eq!(a.comm.sends, 10 + 11);
        assert_eq!(a.shuffle.kvs_emitted, 100 + 200);
        assert_eq!(a.shuffle.rounds, 3, "rounds take the max, not the sum");
        assert_eq!(a.mem.peak_bytes, 1 << 20, "peaks take the max");
        assert_eq!(a.mem.oom_events, 1, "oom events sum");
        assert_eq!(
            a.waits.sync_wait_ns,
            60_000 + 120_000,
            "waits sum into cluster rank-nanoseconds"
        );
        assert_eq!(
            a.shuffle.imbalance_permille, 1100,
            "skew takes the most skewed rank"
        );
        assert_eq!(a.job.unique_keys, 100);
        assert_eq!(a.adapt.mode_switches, 1 + 2, "adapt decisions sum");
        assert_eq!(
            a.adapt.final_fill_permille, 800,
            "the converged fill target takes the max"
        );
        assert_eq!(a.adapt.hot_staged_kvs, 300, "hot staging sums");
        assert!((a.times.map_s - 1.5).abs() < 1e-12, "times take the max");
        assert_eq!(a.cache.elisions, 5 + 10, "cache counters sum");
        assert_eq!(
            a.cache.cached_bytes,
            4096 + 8192,
            "per-rank partitions sum to the cluster footprint"
        );
        assert_eq!(a.cache_names.len(), 1, "same name folds");
        assert_eq!(a.cache_names[0].bytes, 4096 + 8192);
        assert!(a.events.is_empty(), "merged reports drop per-rank events");
    }

    #[test]
    fn merge_is_associative_on_counters() {
        let (r0, r1, r2) = (sample(0), sample(1), sample(2));
        let mut left = r0.clone();
        left.merge(&r1);
        left.merge(&r2);
        let mut pair = r1.clone();
        pair.merge(&r2);
        let mut right = r0.clone();
        right.merge(&pair);
        assert_eq!(left.comm, right.comm);
        assert_eq!(left.shuffle, right.shuffle);
        assert_eq!(left.waits, right.waits);
        assert_eq!(left.adapt, right.adapt);
        assert_eq!(left.mem, right.mem);
        assert_eq!(left.peaks, right.peaks);
        assert_eq!(left.ranks, right.ranks);
    }

    #[test]
    fn merge_combines_job_records_by_id() {
        let mut a = sample(0);
        let mut b = sample(1);
        b.jobs.push(JobRecord {
            id: 9,
            name: "bfs-big".into(),
            outcome: 3,
            ..JobRecord::default()
        });
        a.merge(&b);
        assert_eq!(a.jobs.len(), 2, "same id folds, new id appends");
        let wc = a.jobs.iter().find(|j| j.id == 7).unwrap();
        assert_eq!(wc.kvs_out, 25 + 50, "per-rank production sums");
        assert_eq!(wc.retries, 1, "retries take the max");
        assert!((wc.running_s - 1.5).abs() < 1e-12, "times take the max");
        assert_eq!(a.jobs.iter().find(|j| j.id == 9).unwrap().outcome, 3);
    }

    #[test]
    fn old_reports_without_jobs_section_still_parse() {
        let mut r = sample(0);
        r.jobs.clear();
        let mut s = r.to_json_string();
        // Simulate a pre-job-service report by deleting the field.
        s = s.replace("\"jobs\":[],", "");
        let back = RankReport::from_json_string(&s).unwrap();
        assert!(back.jobs.is_empty());
        assert_eq!(back.comm, r.comm);
    }

    #[test]
    fn old_reports_without_live_section_still_parse() {
        let mut r = sample(0);
        r.live = LiveCounters::default();
        let mut s = r.to_json_string();
        // Simulate a pre-telemetry-plane report by deleting the field.
        let needle = "\"live\":{\"snapshots\":0,\"published_bytes\":0,\"publish_ns\":0,\
                      \"max_publish_lag_ms\":0,\"flight_dumps\":0},";
        assert!(s.contains("\"live\""), "fixture must carry the section");
        s = s.replace(needle, "");
        assert!(!s.contains("\"live\""), "deletion must hit");
        let back = RankReport::from_json_string(&s).unwrap();
        assert_eq!(back.live, LiveCounters::default());
        assert_eq!(back.comm, r.comm);
    }

    #[test]
    fn merge_folds_live_counters() {
        let mut a = sample(0);
        a.merge(&sample(1));
        assert_eq!(a.live.snapshots, 12 + 13, "snapshots sum");
        assert_eq!(a.live.max_publish_lag_ms, 3, "lag takes the max");
        assert_eq!(a.live.flight_dumps, 1, "dumps sum");
    }

    #[test]
    fn delta_since_subtracts_counters_and_keeps_gauges() {
        let base = sample(0);
        let mut later = sample(0);
        later.comm.sends += 7;
        later.waits.total_wait_ns += 1_000_000;
        later.mem.bytes_in_use = 555;
        later.times.map_s += 0.25;
        later.shuffle.kvs_emitted += 40;
        let d = later.delta_since(&base);
        assert_eq!(d.comm.sends, 7, "cumulative counters subtract");
        assert_eq!(d.waits.total_wait_ns, 1_000_000);
        assert_eq!(d.shuffle.kvs_emitted, 40);
        assert_eq!(d.mem.bytes_in_use, 555, "gauges take the latest view");
        assert_eq!(d.mem.budget_bytes, later.mem.budget_bytes);
        assert!((d.times.map_s - 0.25).abs() < 1e-12, "times subtract");
        assert_eq!(d.comm.recvs, 0, "unchanged counters delta to zero");
        // A restarted (smaller) counter saturates instead of wrapping.
        let mut restarted = sample(0);
        restarted.comm.sends = 1;
        assert_eq!(restarted.delta_since(&base).comm.sends, 0);
    }

    #[test]
    fn from_json_rejects_missing_fields() {
        let v = Json::parse("{\"rank\": 0}").unwrap();
        assert!(RankReport::from_json(&v).is_err());
    }
}
