//! The event model: fixed-size, `Copy`, heap-free records.
//!
//! Every event is 32 bytes: a timestamp (nanoseconds since the
//! recorder's epoch), a kind tag, and two `u64` arguments whose meaning
//! depends on the kind. Events never own heap data, so recording one is
//! a handful of stores into a preallocated ring buffer — cheap enough to
//! leave enabled around exchange rounds and page allocations.

/// A MapReduce phase, used as the argument of [`EventKind::PhaseBegin`] /
/// [`EventKind::PhaseEnd`] span events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Phase {
    /// Mimir's interleaved map+aggregate (or MR-MPI's map).
    Map = 0,
    /// MR-MPI's explicit aggregate (all-to-all of the KV dataset).
    Aggregate = 1,
    /// Grouping KVs into KMVs.
    Convert = 2,
    /// The reduce callback sweep (or partial-reduction finalization).
    Reduce = 3,
    /// MR-MPI's local compress.
    Compress = 4,
    /// MR-MPI's sort_keys.
    Sort = 5,
    /// A whole job (outermost span).
    Job = 6,
}

impl Phase {
    /// All phases, index-aligned with their discriminants.
    pub const ALL: [Phase; 7] = [
        Phase::Map,
        Phase::Aggregate,
        Phase::Convert,
        Phase::Reduce,
        Phase::Compress,
        Phase::Sort,
        Phase::Job,
    ];

    /// Stable lowercase name (used in exported traces).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Map => "map",
            Phase::Aggregate => "aggregate",
            Phase::Convert => "convert",
            Phase::Reduce => "reduce",
            Phase::Compress => "compress",
            Phase::Sort => "sort",
            Phase::Job => "job",
        }
    }

    /// Inverse of the discriminant encoding used in [`Event::a`].
    pub fn from_code(code: u64) -> Option<Phase> {
        Phase::ALL.get(code as usize).copied()
    }
}

/// A sub-step of one shuffle exchange round, used as the argument of
/// [`EventKind::StepBegin`] / [`EventKind::StepEnd`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Step {
    /// Entering the round: the done-flag allreduce.
    Sync = 0,
    /// The alltoallv moving the send-buffer partitions.
    Alltoallv = 1,
    /// Draining received KVs into the sink.
    Drain = 2,
    /// Overlapped rounds: posting the nonblocking sends (before the
    /// done-allreduce hides behind them).
    Post = 3,
    /// Overlapped rounds: completing the receives into the receive
    /// buffer.
    Recv = 4,
}

impl Step {
    /// All steps, index-aligned with their discriminants.
    pub const ALL: [Step; 5] = [
        Step::Sync,
        Step::Alltoallv,
        Step::Drain,
        Step::Post,
        Step::Recv,
    ];

    /// Stable lowercase name (used in exported traces).
    pub fn name(self) -> &'static str {
        match self {
            Step::Sync => "sync",
            Step::Alltoallv => "alltoallv",
            Step::Drain => "drain",
            Step::Post => "post",
            Step::Recv => "recv",
        }
    }

    /// Inverse of the discriminant encoding used in [`Event::a`].
    pub fn from_code(code: u64) -> Option<Step> {
        Step::ALL.get(code as usize).copied()
    }
}

/// What one [`Event`] records. The `a`/`b` columns document how the two
/// argument slots are interpreted per kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// Span open for a phase. `a` = [`Phase`] code.
    PhaseBegin = 0,
    /// Span close for a phase. `a` = [`Phase`] code.
    PhaseEnd = 1,
    /// Span open for one shuffle exchange round. `a` = round index.
    RoundBegin = 2,
    /// Span close for one exchange round. `a` = round index,
    /// `b` = 1 when the round reported all ranks done.
    RoundEnd = 3,
    /// Span open for a round sub-step. `a` = [`Step`] code.
    StepBegin = 4,
    /// Span close for a round sub-step. `a` = [`Step`] code,
    /// `b` = bytes moved (alltoallv / drain) where known.
    StepEnd = 5,
    /// Memory-pool sample at a page alloc/free. `a` = bytes in use,
    /// `b` = high-water mark.
    MemSample = 6,
    /// A spill file was opened. `a` = spill file id.
    SpillBegin = 7,
    /// A spill file was sealed. `a` = spill file id, `b` = payload bytes.
    SpillEnd = 8,
    /// The combiner table flushed into the shuffle. `a` = entries,
    /// `b` = estimated table bytes before the flush.
    CombinerFlush = 9,
    /// A group index rebuilt its slot table. `a` = new slot capacity,
    /// `b` = live groups re-placed.
    GroupRehash = 10,
    /// A job entered the scheduler queue. `a` = job id, `b` = priority.
    JobSubmit = 11,
    /// A job passed admission (its memory reservation succeeded on every
    /// node). `a` = job id, `b` = reserved footprint bytes.
    JobAdmit = 12,
    /// A job left the running set. `a` = job id, `b` = outcome code
    /// (the scheduler's `JobOutcome` encoding).
    JobEnd = 13,
    /// A running job was suspended for retry after an OOM. `a` = job id,
    /// `b` = retry count so far.
    JobSuspend = 14,
    /// Wait-state summary of one exchange round. `a` = nanoseconds this
    /// rank spent blocked in the round's done-allreduce (straggler-bound
    /// wait), `b` = nanoseconds blocked completing the round's partition
    /// receives (byte-bound wait).
    RoundWait = 15,
    /// Per-destination skew summary of one exchange round, computed over
    /// the send-partition fill levels just before they ship.
    /// `a` = imbalance ratio max/mean in permille (1000 = perfectly
    /// balanced), `b` = Gini coefficient in permille (0 = uniform).
    RoundSkew = 16,
    /// Scheduler heartbeat for one running job. `a` = job id, `b` = pool
    /// bytes in use on this rank at the tick. Rendered as a counter lane
    /// per job so tenants' memory footprints read side by side.
    JobHeartbeat = 17,
    /// A message left this rank. `a` = flow id
    /// (`(src_world_rank << 48) | seq`, see `next_flow_id`), `b` =
    /// `(dst_rank << 48) | payload_bytes`. Together with the matching
    /// [`EventKind::FlowRecv`] this is one happens-before edge of the
    /// cross-rank DAG.
    FlowSend = 18,
    /// A message was matched by a receive on this rank. `a` = flow id
    /// copied from the sender's stamp, `b` = `(src_rank << 48) |
    /// payload_bytes`.
    FlowRecv = 19,
    /// The adaptive shuffle controller applied a decision. `a` = decision
    /// code (`mimir-core`'s `adapt::decision` constants: mode switch,
    /// grow/shrink, hot trip, salted/merge flush, jumbo floor), `b` =
    /// decision operand (new fill permille, hot destination rank, frames
    /// flushed, …, per code).
    AdaptDecision = 20,
    /// A chained job consumed a cached input whose partition fingerprint
    /// matched its own, so the shuffle for that input was skipped
    /// entirely: map emits fed the local sink directly. `a` = KVs that
    /// took the elided path, `b` = payload bytes.
    ShuffleElided = 21,
    /// The cross-job KV cache spilled a resident container to disk under
    /// memory pressure. `a` = Fx hash of the entry's name, `b` = payload
    /// bytes spilled.
    CacheEvict = 22,
    /// A previously evicted cache entry was reloaded from its spill file
    /// on demand. `a` = Fx hash of the entry's name, `b` = payload bytes
    /// reloaded. An evict/reload pair of the same name hash close in time
    /// is the thrash signature `mimir-doctor` looks for.
    CacheReload = 23,
}

impl EventKind {
    /// All kinds, index-aligned with their discriminants.
    pub const ALL: [EventKind; 24] = [
        EventKind::PhaseBegin,
        EventKind::PhaseEnd,
        EventKind::RoundBegin,
        EventKind::RoundEnd,
        EventKind::StepBegin,
        EventKind::StepEnd,
        EventKind::MemSample,
        EventKind::SpillBegin,
        EventKind::SpillEnd,
        EventKind::CombinerFlush,
        EventKind::GroupRehash,
        EventKind::JobSubmit,
        EventKind::JobAdmit,
        EventKind::JobEnd,
        EventKind::JobSuspend,
        EventKind::RoundWait,
        EventKind::RoundSkew,
        EventKind::JobHeartbeat,
        EventKind::FlowSend,
        EventKind::FlowRecv,
        EventKind::AdaptDecision,
        EventKind::ShuffleElided,
        EventKind::CacheEvict,
        EventKind::CacheReload,
    ];

    /// Stable serialization name.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::PhaseBegin => "phase_begin",
            EventKind::PhaseEnd => "phase_end",
            EventKind::RoundBegin => "round_begin",
            EventKind::RoundEnd => "round_end",
            EventKind::StepBegin => "step_begin",
            EventKind::StepEnd => "step_end",
            EventKind::MemSample => "mem_sample",
            EventKind::SpillBegin => "spill_begin",
            EventKind::SpillEnd => "spill_end",
            EventKind::CombinerFlush => "combiner_flush",
            EventKind::GroupRehash => "group_rehash",
            EventKind::JobSubmit => "job_submit",
            EventKind::JobAdmit => "job_admit",
            EventKind::JobEnd => "job_end",
            EventKind::JobSuspend => "job_suspend",
            EventKind::RoundWait => "round_wait",
            EventKind::RoundSkew => "round_skew",
            EventKind::JobHeartbeat => "job_heartbeat",
            EventKind::FlowSend => "flow_send",
            EventKind::FlowRecv => "flow_recv",
            EventKind::AdaptDecision => "adapt_decision",
            EventKind::ShuffleElided => "shuffle_elided",
            EventKind::CacheEvict => "cache_evict",
            EventKind::CacheReload => "cache_reload",
        }
    }

    /// Numeric code used in compact serializations.
    pub fn code(self) -> u64 {
        self as u64
    }

    /// Inverse of [`Self::code`].
    pub fn from_code(code: u64) -> Option<EventKind> {
        EventKind::ALL.get(code as usize).copied()
    }

    /// Inverse of [`Self::name`] (used when re-ingesting `.jsonl`
    /// exports, whose event lines carry names, not codes).
    pub fn from_name(name: &str) -> Option<EventKind> {
        EventKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// Packs a rank and a byte count into one event argument: the upper 16
/// bits carry the peer rank, the lower 48 the payload size. Used by the
/// flow events' `b` argument.
pub fn pack_rank_bytes(rank: u64, bytes: u64) -> u64 {
    (rank << 48) | (bytes & 0xFFFF_FFFF_FFFF)
}

/// Inverse of [`pack_rank_bytes`]: `(rank, bytes)`.
pub fn unpack_rank_bytes(packed: u64) -> (u64, u64) {
    (packed >> 48, packed & 0xFFFF_FFFF_FFFF)
}

/// One recorded event. See [`EventKind`] for the meaning of `a` and `b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since the recorder's epoch.
    pub t_ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// First argument (kind-dependent).
    pub a: u64,
    /// Second argument (kind-dependent).
    pub b: u64,
}

impl Event {
    /// The human-readable span name an exporter should use: the phase or
    /// step name for typed spans, the kind name otherwise.
    pub fn label(&self) -> &'static str {
        match self.kind {
            EventKind::PhaseBegin | EventKind::PhaseEnd => {
                Phase::from_code(self.a).map_or("phase?", Phase::name)
            }
            EventKind::StepBegin | EventKind::StepEnd => {
                Step::from_code(self.a).map_or("step?", Step::name)
            }
            EventKind::RoundBegin | EventKind::RoundEnd => "exchange-round",
            other => other.name(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip() {
        for k in EventKind::ALL {
            assert_eq!(EventKind::from_code(k.code()), Some(k));
            assert_eq!(EventKind::from_name(k.name()), Some(k));
        }
        assert_eq!(EventKind::from_name("no_such_kind"), None);
        for p in Phase::ALL {
            assert_eq!(Phase::from_code(p as u64), Some(p));
        }
        for s in Step::ALL {
            assert_eq!(Step::from_code(s as u64), Some(s));
        }
        assert_eq!(EventKind::from_code(255), None);
        assert_eq!(Phase::from_code(255), None);
    }

    #[test]
    fn labels_follow_span_arguments() {
        let e = Event {
            t_ns: 0,
            kind: EventKind::PhaseBegin,
            a: Phase::Convert as u64,
            b: 0,
        };
        assert_eq!(e.label(), "convert");
        let e = Event {
            t_ns: 0,
            kind: EventKind::StepEnd,
            a: Step::Alltoallv as u64,
            b: 42,
        };
        assert_eq!(e.label(), "alltoallv");
        let e = Event {
            t_ns: 0,
            kind: EventKind::MemSample,
            a: 1,
            b: 2,
        };
        assert_eq!(e.label(), "mem_sample");
    }

    #[test]
    fn rank_bytes_packing_roundtrips() {
        for (rank, bytes) in [(0u64, 0u64), (3, 1), (65_535, (1 << 48) - 1)] {
            assert_eq!(
                unpack_rank_bytes(pack_rank_bytes(rank, bytes)),
                (rank, bytes)
            );
        }
        // Oversized byte counts are truncated, not smeared into the rank.
        let (rank, _) = unpack_rank_bytes(pack_rank_bytes(7, u64::MAX));
        assert_eq!(rank, 7);
    }
}
