//! The per-rank event recorder and its thread-local installation point.
//!
//! A [`Recorder`] owns one preallocated ring buffer of [`Event`]s. Each
//! rank thread installs its own recorder ([`install`]); instrumentation
//! anywhere in the stack calls the free functions ([`emit`],
//! [`span`], …), which resolve the current thread's recorder and append
//! — or do nothing at all when tracing is off. The emit path never
//! allocates: the buffer is sized up front and overflow overwrites the
//! oldest events (keeping the most recent window, which is what a
//! post-mortem wants).
//!
//! The Mimir world runs ranks as threads, so "thread-local" here *is*
//! "per-rank", exactly like a rank-private trace buffer in an MPI
//! profiler.

use std::cell::RefCell;
use std::time::Instant;

use crate::event::{Event, EventKind, Phase, Step};

/// Default ring capacity (events per rank) when none is configured.
pub const DEFAULT_CAPACITY: usize = 64 * 1024;

/// A fixed-capacity event ring for one rank.
#[derive(Debug)]
pub struct Recorder {
    rank: usize,
    epoch: Instant,
    buf: Vec<Event>,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    /// Events overwritten after the ring filled.
    dropped: u64,
}

impl Recorder {
    /// Creates a recorder for `rank` with its own epoch (timestamps are
    /// relative to "now").
    pub fn new(rank: usize, capacity: usize) -> Self {
        Self::with_epoch(rank, capacity, Instant::now())
    }

    /// Creates a recorder whose timestamps are relative to a caller-
    /// provided epoch, so the timelines of many ranks align in one trace.
    pub fn with_epoch(rank: usize, capacity: usize, epoch: Instant) -> Self {
        Self {
            rank,
            epoch,
            buf: Vec::with_capacity(capacity.max(1)),
            head: 0,
            dropped: 0,
        }
    }

    /// The rank this recorder belongs to.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The shared epoch timestamps are measured from.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Records one event. Never allocates; overwrites the oldest event
    /// when the ring is full.
    #[inline]
    pub fn record(&mut self, kind: EventKind, a: u64, b: u64) {
        let t_ns = self.epoch.elapsed().as_nanos() as u64;
        let ev = Event { t_ns, kind, a, b };
        if self.buf.len() < self.buf.capacity() {
            self.buf.push(ev);
        } else {
            // Ring is full: overwrite the oldest slot.
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.buf.capacity();
            self.dropped += 1;
        }
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained events in chronological order (oldest first).
    pub fn events(&self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Recorder>> = const { RefCell::new(None) };
}

/// Installs `recorder` as this thread's (= this rank's) recorder,
/// returning any recorder that was previously installed.
pub fn install(recorder: Recorder) -> Option<Recorder> {
    CURRENT.with(|c| c.borrow_mut().replace(recorder))
}

/// Removes and returns this thread's recorder, disabling tracing on the
/// thread.
pub fn take() -> Option<Recorder> {
    CURRENT.with(|c| c.borrow_mut().take())
}

/// Whether a recorder is installed on this thread.
pub fn active() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// Records one event on this thread's recorder; a no-op (and
/// allocation-free) when tracing is off.
#[inline]
pub fn emit(kind: EventKind, a: u64, b: u64) {
    CURRENT.with(|c| {
        if let Some(r) = c.borrow_mut().as_mut() {
            r.record(kind, a, b);
        }
    });
}

/// Whether `MIMIR_TRACE` asks for tracing (values `1`, `true`, `on`,
/// case-insensitive).
pub fn env_enabled() -> bool {
    match std::env::var("MIMIR_TRACE") {
        Ok(v) => matches!(v.to_ascii_lowercase().as_str(), "1" | "true" | "on"),
        Err(_) => false,
    }
}

/// Ring capacity (events per rank) from `MIMIR_TRACE_CAP`, falling back
/// to the legacy `MIMIR_TRACE_EVENTS` spelling, or [`DEFAULT_CAPACITY`].
///
/// Each event is 32 bytes, so the default 64 Ki events costs 2 MiB per
/// rank; size the cap so one run's `rounds × events-per-round` fits, or
/// the exporters will stamp a dropped-events warning into the output
/// (see README "Sizing the trace ring").
pub fn env_capacity() -> usize {
    std::env::var("MIMIR_TRACE_CAP")
        .or_else(|_| std::env::var("MIMIR_TRACE_EVENTS"))
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_CAPACITY)
}

/// RAII guard closing a span event pair; created by [`span`],
/// [`phase_span`], or [`step_span`].
pub struct SpanGuard {
    end_kind: EventKind,
    a: u64,
    b: u64,
}

impl SpanGuard {
    /// Overrides the `b` argument the closing event will carry (e.g.
    /// bytes moved, discovered mid-span).
    pub fn set_b(&mut self, b: u64) {
        self.b = b;
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        emit(self.end_kind, self.a, self.b);
    }
}

/// Opens a `begin`/`end` span; the end event is emitted when the guard
/// drops. Emits nothing (and allocates nothing) when tracing is off.
#[inline]
pub fn span(begin: EventKind, end: EventKind, a: u64, b: u64) -> SpanGuard {
    emit(begin, a, b);
    SpanGuard {
        end_kind: end,
        a,
        b,
    }
}

/// Span covering one MapReduce phase.
#[inline]
pub fn phase_span(phase: Phase) -> SpanGuard {
    span(EventKind::PhaseBegin, EventKind::PhaseEnd, phase as u64, 0)
}

/// Span covering one exchange-round sub-step.
#[inline]
pub fn step_span(step: Step) -> SpanGuard {
    span(EventKind::StepBegin, EventKind::StepEnd, step as u64, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_preserves_order_and_drops_oldest() {
        let mut r = Recorder::new(0, 4);
        for i in 0..6u64 {
            r.record(EventKind::MemSample, i, 0);
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 2);
        let got: Vec<u64> = r.events().iter().map(|e| e.a).collect();
        assert_eq!(got, vec![2, 3, 4, 5], "oldest two were overwritten");
        let ts: Vec<u64> = r.events().iter().map(|e| e.t_ns).collect();
        let mut sorted = ts.clone();
        sorted.sort_unstable();
        assert_eq!(ts, sorted, "chronological order");
    }

    #[test]
    fn ring_below_capacity_keeps_everything() {
        let mut r = Recorder::new(3, 16);
        for i in 0..5u64 {
            r.record(EventKind::SpillBegin, i, 0);
        }
        assert_eq!(r.len(), 5);
        assert_eq!(r.dropped(), 0);
        let got: Vec<u64> = r.events().iter().map(|e| e.a).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn emit_without_recorder_is_a_noop() {
        assert!(!active());
        emit(EventKind::MemSample, 1, 2); // must not panic
        let _g = phase_span(Phase::Map); // begin+end both no-ops
    }

    #[test]
    fn install_take_roundtrip_with_spans() {
        install(Recorder::new(7, 64));
        assert!(active());
        {
            let _p = phase_span(Phase::Map);
            emit(EventKind::MemSample, 10, 20);
            let mut s = step_span(Step::Alltoallv);
            s.set_b(4096);
        }
        let r = take().expect("recorder installed");
        assert!(!active());
        assert_eq!(r.rank(), 7);
        let evs = r.events();
        let kinds: Vec<EventKind> = evs.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::PhaseBegin,
                EventKind::MemSample,
                EventKind::StepBegin,
                EventKind::StepEnd,
                EventKind::PhaseEnd,
            ]
        );
        assert_eq!(evs[3].b, 4096, "set_b reaches the closing event");
    }

    #[test]
    fn shared_epoch_aligns_timestamps() {
        let epoch = Instant::now();
        let mut a = Recorder::with_epoch(0, 8, epoch);
        let mut b = Recorder::with_epoch(1, 8, epoch);
        a.record(EventKind::MemSample, 0, 0);
        b.record(EventKind::MemSample, 0, 0);
        let (ta, tb) = (a.events()[0].t_ns, b.events()[0].t_ns);
        // Both were recorded within a heartbeat of each other on the
        // same clock.
        assert!(ta.abs_diff(tb) < 1_000_000_000);
    }
}
