//! The per-rank event recorder and its thread-local installation point.
//!
//! A [`Recorder`] owns one preallocated ring buffer of [`Event`]s. Each
//! rank thread installs its own recorder ([`install`]); instrumentation
//! anywhere in the stack calls the free functions ([`emit`],
//! [`span`], …), which resolve the current thread's recorder and append
//! — or do nothing at all when tracing is off. The emit path never
//! allocates: the buffer is sized up front and overflow overwrites the
//! oldest events (keeping the most recent window, which is what a
//! post-mortem wants).
//!
//! The Mimir world runs ranks as threads, so "thread-local" here *is*
//! "per-rank", exactly like a rank-private trace buffer in an MPI
//! profiler.

use std::cell::RefCell;
use std::time::Instant;

use crate::event::{pack_rank_bytes, Event, EventKind, Phase, Step};

/// Default ring capacity (events per rank) when none is configured.
pub const DEFAULT_CAPACITY: usize = 64 * 1024;

/// Bits of a flow id holding the per-rank sequence number; the rank
/// lives in the bits above. See [`Recorder::next_flow_id`].
pub const FLOW_SEQ_BITS: u32 = 48;

/// A fixed-capacity event ring for one rank.
#[derive(Debug)]
pub struct Recorder {
    rank: usize,
    epoch: Instant,
    buf: Vec<Event>,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    /// Events overwritten after the ring filled.
    dropped: u64,
    /// Next flow sequence number (starts at 1; 0 is the "untraced"
    /// sentinel, so flow id 0 is never allocated).
    flow_seq: u64,
    /// Whether sends stamp flow ids (the full-flow tier); off leaves
    /// span/counter tracing alone (the skeleton tier).
    flow_enabled: bool,
}

impl Recorder {
    /// Creates a recorder for `rank` with its own epoch (timestamps are
    /// relative to "now").
    pub fn new(rank: usize, capacity: usize) -> Self {
        Self::with_epoch(rank, capacity, Instant::now())
    }

    /// Creates a recorder whose timestamps are relative to a caller-
    /// provided epoch, so the timelines of many ranks align in one trace.
    pub fn with_epoch(rank: usize, capacity: usize, epoch: Instant) -> Self {
        Self {
            rank,
            epoch,
            buf: Vec::with_capacity(capacity.max(1)),
            head: 0,
            dropped: 0,
            flow_seq: 1,
            flow_enabled: env_flow_enabled(),
        }
    }

    /// The rank this recorder belongs to.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Whether sends through this recorder stamp flow ids.
    pub fn flow_enabled(&self) -> bool {
        self.flow_enabled
    }

    /// Turns flow stamping on or off (overriding `MIMIR_TRACE_FLOW`).
    pub fn set_flow_enabled(&mut self, on: bool) {
        self.flow_enabled = on;
    }

    /// Allocates the next flow id: `(rank << 48) | seq`, unique per rank
    /// thread across every communicator (ranks are world ranks, and one
    /// counter serves all comms, so dup/split clones can never collide).
    /// Returns the untraced sentinel 0 when flow stamping is off. Never
    /// allocates: one counter bump.
    #[inline]
    pub fn next_flow_id(&mut self) -> u64 {
        if !self.flow_enabled {
            return 0;
        }
        let id =
            ((self.rank as u64) << FLOW_SEQ_BITS) | (self.flow_seq & ((1 << FLOW_SEQ_BITS) - 1));
        self.flow_seq += 1;
        id
    }

    /// The shared epoch timestamps are measured from.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Records one event. Never allocates; overwrites the oldest event
    /// when the ring is full.
    #[inline]
    pub fn record(&mut self, kind: EventKind, a: u64, b: u64) {
        let t_ns = self.epoch.elapsed().as_nanos() as u64;
        let ev = Event { t_ns, kind, a, b };
        if self.buf.len() < self.buf.capacity() {
            self.buf.push(ev);
        } else {
            // Ring is full: overwrite the oldest slot.
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.buf.capacity();
            self.dropped += 1;
        }
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained events in chronological order (oldest first).
    pub fn events(&self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Recorder>> = const { RefCell::new(None) };
}

/// Installs `recorder` as this thread's (= this rank's) recorder,
/// returning any recorder that was previously installed.
pub fn install(recorder: Recorder) -> Option<Recorder> {
    CURRENT.with(|c| c.borrow_mut().replace(recorder))
}

/// Removes and returns this thread's recorder, disabling tracing on the
/// thread.
pub fn take() -> Option<Recorder> {
    CURRENT.with(|c| c.borrow_mut().take())
}

/// Whether a recorder is installed on this thread.
pub fn active() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// Records one event on this thread's recorder; a no-op (and
/// allocation-free) when tracing is off.
#[inline]
pub fn emit(kind: EventKind, a: u64, b: u64) {
    CURRENT.with(|c| {
        if let Some(r) = c.borrow_mut().as_mut() {
            r.record(kind, a, b);
        }
    });
}

/// Allocates a flow id from this thread's recorder, or returns the
/// untraced sentinel 0 when tracing (or flow stamping) is off. See
/// [`Recorder::next_flow_id`].
#[inline]
pub fn next_flow_id() -> u64 {
    CURRENT.with(|c| c.borrow_mut().as_mut().map_or(0, Recorder::next_flow_id))
}

/// Records the send half of a flow edge: `flow` departs for `dst`
/// carrying `bytes`. A no-op for the untraced sentinel 0, so call sites
/// need no tracing-enabled check of their own.
#[inline]
pub fn flow_send(flow: u64, dst: u64, bytes: u64) {
    if flow != 0 {
        emit(EventKind::FlowSend, flow, pack_rank_bytes(dst, bytes));
    }
}

/// Records the receive half of a flow edge: the message stamped `flow`
/// was matched here. The source rank is recovered from the flow id's
/// high bits, so the caller only supplies the payload size.
#[inline]
pub fn flow_recv(flow: u64, bytes: u64) {
    if flow != 0 {
        emit(
            EventKind::FlowRecv,
            flow,
            pack_rank_bytes(flow >> FLOW_SEQ_BITS, bytes),
        );
    }
}

/// Whether `MIMIR_TRACE` asks for tracing (values `1`, `true`, `on`,
/// case-insensitive).
pub fn env_enabled() -> bool {
    match std::env::var("MIMIR_TRACE") {
        Ok(v) => matches!(v.to_ascii_lowercase().as_str(), "1" | "true" | "on"),
        Err(_) => false,
    }
}

/// Ring capacity (events per rank) from `MIMIR_TRACE_CAP`, falling back
/// to the legacy `MIMIR_TRACE_EVENTS` spelling, or [`DEFAULT_CAPACITY`].
///
/// Each event is 32 bytes, so the default 64 Ki events costs 2 MiB per
/// rank; size the cap so one run's `rounds × events-per-round` fits, or
/// the exporters will stamp a dropped-events warning into the output
/// (see README "Sizing the trace ring").
pub fn env_capacity() -> usize {
    for var in ["MIMIR_TRACE_CAP", "MIMIR_TRACE_EVENTS"] {
        if let Ok(raw) = std::env::var(var) {
            let (cap, warning) = parse_capacity(var, &raw);
            if let Some(w) = warning {
                // Every rank thread resolves the capacity, but one bad
                // value only deserves one warning per process.
                use std::sync::Once;
                static WARN: Once = Once::new();
                WARN.call_once(|| eprintln!("{w}"));
            }
            return cap;
        }
    }
    DEFAULT_CAPACITY
}

/// Parses one capacity variable's value. On anything but a positive
/// integer, returns [`DEFAULT_CAPACITY`] plus a one-line warning naming
/// the variable, the rejected value, and the default used — a silent
/// fallback here would hand the user a mysteriously truncated trace.
fn parse_capacity(var: &str, raw: &str) -> (usize, Option<String>) {
    match raw.trim().parse::<usize>() {
        Ok(n) if n > 0 => (n, None),
        _ => (
            DEFAULT_CAPACITY,
            Some(format!(
                "mimir-obs: ignoring {var}={raw:?} (not a positive event \
                 count); using the default of {DEFAULT_CAPACITY} events"
            )),
        ),
    }
}

/// Whether flow (message-level causal) events are stamped: on by
/// default whenever tracing is, unless `MIMIR_TRACE_FLOW` is `0`,
/// `false`, or `off` (case-insensitive) — the "skeleton" tier that
/// keeps spans and counters but skips per-message events.
pub fn env_flow_enabled() -> bool {
    match std::env::var("MIMIR_TRACE_FLOW") {
        Ok(v) => !matches!(v.to_ascii_lowercase().as_str(), "0" | "false" | "off"),
        Err(_) => true,
    }
}

/// RAII guard closing a span event pair; created by [`span`],
/// [`phase_span`], or [`step_span`].
pub struct SpanGuard {
    end_kind: EventKind,
    a: u64,
    b: u64,
}

impl SpanGuard {
    /// Overrides the `b` argument the closing event will carry (e.g.
    /// bytes moved, discovered mid-span).
    pub fn set_b(&mut self, b: u64) {
        self.b = b;
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        emit(self.end_kind, self.a, self.b);
    }
}

/// Opens a `begin`/`end` span; the end event is emitted when the guard
/// drops. Emits nothing (and allocates nothing) when tracing is off.
#[inline]
pub fn span(begin: EventKind, end: EventKind, a: u64, b: u64) -> SpanGuard {
    emit(begin, a, b);
    SpanGuard {
        end_kind: end,
        a,
        b,
    }
}

/// Span covering one MapReduce phase. Also marks the phase on the live
/// telemetry plane (when armed), so `mimir-doctor --watch` and crash
/// dumps know where each rank currently is — even with tracing off.
#[inline]
pub fn phase_span(phase: Phase) -> SpanGuard {
    crate::live::note_phase(phase as u64);
    span(EventKind::PhaseBegin, EventKind::PhaseEnd, phase as u64, 0)
}

/// Span covering one exchange-round sub-step.
#[inline]
pub fn step_span(step: Step) -> SpanGuard {
    span(EventKind::StepBegin, EventKind::StepEnd, step as u64, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_preserves_order_and_drops_oldest() {
        let mut r = Recorder::new(0, 4);
        for i in 0..6u64 {
            r.record(EventKind::MemSample, i, 0);
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 2);
        let got: Vec<u64> = r.events().iter().map(|e| e.a).collect();
        assert_eq!(got, vec![2, 3, 4, 5], "oldest two were overwritten");
        let ts: Vec<u64> = r.events().iter().map(|e| e.t_ns).collect();
        let mut sorted = ts.clone();
        sorted.sort_unstable();
        assert_eq!(ts, sorted, "chronological order");
    }

    #[test]
    fn ring_below_capacity_keeps_everything() {
        let mut r = Recorder::new(3, 16);
        for i in 0..5u64 {
            r.record(EventKind::SpillBegin, i, 0);
        }
        assert_eq!(r.len(), 5);
        assert_eq!(r.dropped(), 0);
        let got: Vec<u64> = r.events().iter().map(|e| e.a).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn emit_without_recorder_is_a_noop() {
        assert!(!active());
        emit(EventKind::MemSample, 1, 2); // must not panic
        let _g = phase_span(Phase::Map); // begin+end both no-ops
    }

    #[test]
    fn install_take_roundtrip_with_spans() {
        install(Recorder::new(7, 64));
        assert!(active());
        {
            let _p = phase_span(Phase::Map);
            emit(EventKind::MemSample, 10, 20);
            let mut s = step_span(Step::Alltoallv);
            s.set_b(4096);
        }
        let r = take().expect("recorder installed");
        assert!(!active());
        assert_eq!(r.rank(), 7);
        let evs = r.events();
        let kinds: Vec<EventKind> = evs.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::PhaseBegin,
                EventKind::MemSample,
                EventKind::StepBegin,
                EventKind::StepEnd,
                EventKind::PhaseEnd,
            ]
        );
        assert_eq!(evs[3].b, 4096, "set_b reaches the closing event");
    }

    #[test]
    fn flow_ids_encode_rank_and_count_up() {
        let mut r = Recorder::new(3, 8);
        r.set_flow_enabled(true);
        let a = r.next_flow_id();
        let b = r.next_flow_id();
        assert_eq!(a >> FLOW_SEQ_BITS, 3, "rank in the high bits");
        assert_eq!(a & ((1 << FLOW_SEQ_BITS) - 1), 1, "sequence starts at 1");
        assert_eq!(b, a + 1);
        r.set_flow_enabled(false);
        assert_eq!(r.next_flow_id(), 0, "disabled flow yields the sentinel");
    }

    #[test]
    fn flow_id_zero_is_never_allocated() {
        // Rank 0's first id must not collide with the untraced sentinel.
        let mut r = Recorder::new(0, 8);
        r.set_flow_enabled(true);
        assert_ne!(r.next_flow_id(), 0);
    }

    #[test]
    fn flow_emit_helpers_skip_the_sentinel() {
        install(Recorder::new(2, 16));
        flow_send(0, 1, 64); // sentinel: nothing recorded
        flow_recv(0, 64);
        let flow = (5u64 << FLOW_SEQ_BITS) | 9;
        flow_send(flow, 1, 64);
        flow_recv(flow, 64);
        let r = take().unwrap();
        let evs = r.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].kind, EventKind::FlowSend);
        assert_eq!(evs[0].a, flow);
        assert_eq!(evs[0].b >> 48, 1, "destination rank packed in b");
        assert_eq!(evs[1].kind, EventKind::FlowRecv);
        assert_eq!(evs[1].b >> 48, 5, "source rank recovered from the id");
        assert_eq!(evs[1].b & 0xFFFF_FFFF_FFFF, 64);
    }

    #[test]
    fn next_flow_id_without_recorder_is_the_sentinel() {
        assert!(!active());
        assert_eq!(next_flow_id(), 0);
    }

    #[test]
    fn bad_capacity_values_warn_and_fall_back() {
        let (cap, warning) = parse_capacity("MIMIR_TRACE_CAP", "lots");
        assert_eq!(cap, DEFAULT_CAPACITY);
        let w = warning.expect("unparsable value warns");
        assert!(w.contains("MIMIR_TRACE_CAP"), "names the variable: {w}");
        assert!(w.contains("\"lots\""), "names the bad value: {w}");
        assert!(
            w.contains(&DEFAULT_CAPACITY.to_string()),
            "names the default used: {w}"
        );
        let (cap, warning) = parse_capacity("MIMIR_TRACE_EVENTS", "0");
        assert_eq!(cap, DEFAULT_CAPACITY, "zero capacity is rejected too");
        assert!(warning.is_some());
        let (cap, warning) = parse_capacity("MIMIR_TRACE_CAP", " 4096 ");
        assert_eq!(cap, 4096, "surrounding whitespace is tolerated");
        assert!(warning.is_none());
    }

    #[test]
    fn shared_epoch_aligns_timestamps() {
        let epoch = Instant::now();
        let mut a = Recorder::with_epoch(0, 8, epoch);
        let mut b = Recorder::with_epoch(1, 8, epoch);
        a.record(EventKind::MemSample, 0, 0);
        b.record(EventKind::MemSample, 0, 0);
        let (ta, tb) = (a.events()[0].t_ns, b.events()[0].t_ns);
        // Both were recorded within a heartbeat of each other on the
        // same clock.
        assert!(ta.abs_diff(tb) < 1_000_000_000);
    }
}
