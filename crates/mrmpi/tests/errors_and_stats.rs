//! Error taxonomy and statistics surface of the MR-MPI baseline.

use std::time::Duration;

use mimir_io::{IoModel, SpillStore};
use mimir_mem::MemPool;
use mimir_mpi::run_world;
use mrmpi::{MapReduce, MrError, MrMpiConfig, MrStats};

fn store() -> SpillStore {
    SpillStore::new_temp("mr-errs", IoModel::free()).unwrap()
}

#[test]
fn phase_order_is_enforced() {
    run_world(1, |comm| {
        let pool = MemPool::unlimited("node", 4096);
        let mut mr = MapReduce::new(comm, pool, store(), MrMpiConfig::default());
        // No dataset yet: every phase refuses.
        assert!(matches!(mr.aggregate(), Err(MrError::Phase(_))));
        assert!(matches!(mr.convert(), Err(MrError::Phase(_))));
        assert!(matches!(
            mr.reduce(|_k, _v, _e| Ok(())),
            Err(MrError::Phase(_))
        ));
        assert!(matches!(mr.sort_keys(), Err(MrError::Phase(_))));
        assert!(matches!(mr.scan(|_k, _v| Ok(())), Err(MrError::Phase(_))));
        // Reduce before convert is also a phase error.
        mr.map(|em| em.emit(b"k", b"v")).unwrap();
        assert!(matches!(
            mr.reduce(|_k, _v, _e| Ok(())),
            Err(MrError::Phase(_))
        ));
    });
}

#[test]
fn error_messages_name_the_problem() {
    let e = MrError::PageOverflow {
        what: "KV data",
        page_size: 65536,
    };
    assert!(e.to_string().contains("65536"));
    assert!(e.to_string().contains("out-of-core disabled"));

    let e = MrError::EntryTooLarge {
        size: 100_000,
        page_size: 65536,
    };
    assert!(e.to_string().contains("100000"));
}

#[test]
fn stats_accumulate_across_phases() {
    let stats: Vec<MrStats> = run_world(2, |comm| {
        let pool = MemPool::unlimited("node", 4096);
        let mut mr = MapReduce::new(comm, pool, store(), MrMpiConfig::with_page_size(8192));
        mr.map(|em| {
            for i in 0..200u64 {
                em.emit(format!("k{}", i % 9).as_bytes(), &i.to_le_bytes())?;
            }
            Ok(())
        })
        .unwrap();
        mr.collate().unwrap();
        mr.reduce(|k, vals, em| {
            let n = vals.count() as u64;
            em.emit(k, &n.to_le_bytes())
        })
        .unwrap();
        mr.stats()
    });
    for s in &stats {
        assert!(s.kvs_mapped >= 200, "{s:?}");
        assert!(s.exchange_rounds >= 1);
        assert!(s.node_peak_bytes >= 7 * 8192, "page sets on the books");
        assert!(s.total_time() > Duration::ZERO);
        assert!(!s.spilled);
    }
    let unique: u64 = stats.iter().map(|s| s.unique_keys).sum();
    assert_eq!(unique, 9);
}

#[test]
fn kmv_value_count_between_convert_and_reduce() {
    run_world(1, |comm| {
        let pool = MemPool::unlimited("node", 4096);
        let mut mr = MapReduce::new(comm, pool, store(), MrMpiConfig::default());
        mr.map(|em| {
            for i in 0..30u64 {
                em.emit(&(i % 3).to_le_bytes(), &i.to_le_bytes())?;
            }
            Ok(())
        })
        .unwrap();
        assert_eq!(mr.kmv_value_count(), 0, "no KMV before convert");
        mr.collate().unwrap();
        assert_eq!(mr.kmv_value_count(), 30);
        assert_eq!(mr.kv_count(), 0, "KV dataset consumed by convert");
        mr.reduce(|k, vals, em| {
            let n = vals.count() as u64;
            em.emit(k, &n.to_le_bytes())
        })
        .unwrap();
        assert_eq!(mr.kmv_value_count(), 0, "KMV consumed by reduce");
        assert_eq!(mr.kv_count(), 3);
    });
}
