//! End-to-end tests of the MR-MPI phase machinery across ranks.

use std::collections::HashMap;

use mimir_io::{IoModel, SpillStore};
use mimir_mem::MemPool;
use mimir_mpi::run_world;
use mrmpi::{MapReduce, MrMpiConfig, OocMode};

fn store() -> SpillStore {
    SpillStore::new_temp("mrmpi-test", IoModel::free()).unwrap()
}

fn sum_u64(_k: &[u8], a: &[u8], b: &[u8], out: &mut Vec<u8>) {
    let s = u64::from_le_bytes(a.try_into().unwrap()) + u64::from_le_bytes(b.try_into().unwrap());
    out.extend_from_slice(&s.to_le_bytes());
}

/// A tiny WordCount over a fixed corpus, checking exact totals.
fn wordcount(n_ranks: usize, cfg: MrMpiConfig, compress: bool) -> HashMap<String, u64> {
    let results = run_world(n_ranks, move |comm| {
        let pool = MemPool::unlimited("node", 4096);
        let mut mr = MapReduce::new(comm, pool, store(), cfg);
        let rank = {
            let words = ["apple", "pear", "plum", "apple", "fig"];
            mr.map(|em| {
                for _ in 0..100 {
                    for w in words {
                        em.emit(w.as_bytes(), &1u64.to_le_bytes())?;
                    }
                }
                Ok(())
            })
            .unwrap();
            0
        };
        let _ = rank;
        if compress {
            mr.compress(sum_u64).unwrap();
        }
        mr.aggregate().unwrap();
        mr.convert().unwrap();
        mr.reduce(|k, vals, em| {
            let total: u64 = vals
                .map(|v| u64::from_le_bytes(v.try_into().unwrap()))
                .sum();
            em.emit(k, &total.to_le_bytes())
        })
        .unwrap();

        let mut local = HashMap::new();
        mr.scan(|k, v| {
            local.insert(
                String::from_utf8(k.to_vec()).unwrap(),
                u64::from_le_bytes(v.try_into().unwrap()),
            );
            Ok(())
        })
        .unwrap();
        local
    });
    let mut merged = HashMap::new();
    for local in results {
        for (k, v) in local {
            assert!(merged.insert(k, v).is_none(), "key reduced on two ranks");
        }
    }
    merged
}

#[test]
fn wordcount_across_ranks() {
    for n in [1, 2, 5] {
        let counts = wordcount(n, MrMpiConfig::with_page_size(4096), false);
        assert_eq!(counts.len(), 4, "n={n}");
        assert_eq!(counts["apple"], 200 * n as u64);
        assert_eq!(counts["fig"], 100 * n as u64);
    }
}

#[test]
fn compress_shrinks_shuffled_data_without_changing_results() {
    let plain = wordcount(3, MrMpiConfig::with_page_size(4096), false);
    let cps = wordcount(3, MrMpiConfig::with_page_size(4096), true);
    assert_eq!(plain, cps);
}

#[test]
fn tiny_pages_spill_but_stay_correct() {
    // 512-byte pages with 500 KVs per rank force spills in every phase.
    let counts = wordcount(2, MrMpiConfig::with_page_size(512), false);
    assert_eq!(counts["apple"], 400);
    assert_eq!(counts["plum"], 200);
}

#[test]
fn error_mode_reports_page_overflow() {
    run_world(1, |comm| {
        let pool = MemPool::unlimited("node", 4096);
        let cfg = MrMpiConfig {
            page_size: 256,
            ooc: OocMode::Error,
        };
        let mut mr = MapReduce::new(comm, pool, store(), cfg);
        let res = mr.map(|em| {
            for i in 0..100u64 {
                em.emit(&i.to_le_bytes(), &[7u8; 16])?;
            }
            Ok(())
        });
        assert!(matches!(res, Err(mrmpi::MrError::PageOverflow { .. })));
    });
}

#[test]
fn page_set_allocation_fails_on_small_node() {
    run_world(1, |comm| {
        // Aggregate needs 7 pages of 4 KiB = 28 KiB; the node has 16 KiB.
        let pool = MemPool::new("node", 1024, 16 * 1024).unwrap();
        let mut mr = MapReduce::new(comm, pool, store(), MrMpiConfig::with_page_size(4096));
        mr.map(|em| em.emit(b"k", b"v")).unwrap();
        let err = mr.aggregate().unwrap_err();
        assert!(err.is_oom(), "{err}");
    });
}

#[test]
fn peak_memory_is_flat_in_dataset_size() {
    // The paper's core criticism: MR-MPI's footprint is its page sets,
    // independent of how much data flows (until it spills).
    let peak_of = |kvs: u64| {
        run_world(1, move |comm| {
            let pool = MemPool::unlimited("node", 4096);
            let mut mr = MapReduce::new(
                comm,
                pool.clone(),
                store(),
                MrMpiConfig::with_page_size(32 * 1024),
            );
            mr.map(|em| {
                for i in 0..kvs {
                    em.emit(&(i % 50).to_le_bytes(), &i.to_le_bytes())?;
                }
                Ok(())
            })
            .unwrap();
            mr.aggregate().unwrap();
            mr.convert().unwrap();
            mr.reduce(|k, vals, em| {
                let n = vals.count() as u64;
                em.emit(k, &n.to_le_bytes())
            })
            .unwrap();
            pool.peak()
        })[0]
    };
    let small = peak_of(100);
    let large = peak_of(1000);
    assert_eq!(small, large, "static pages: {small} vs {large}");
}

#[test]
fn iterative_map_from_kv() {
    run_world(2, |comm| {
        let pool = MemPool::unlimited("node", 4096);
        let mut mr = MapReduce::new(comm, pool, store(), MrMpiConfig::with_page_size(4096));
        mr.map(|em| {
            for i in 0..10u64 {
                em.emit(&i.to_le_bytes(), &1u64.to_le_bytes())?;
            }
            Ok(())
        })
        .unwrap();
        // Double values across three iterations.
        for _ in 0..3 {
            mr.map_from_kv(|k, v, em| {
                let x = u64::from_le_bytes(v.try_into().unwrap()) * 2;
                em.emit(k, &x.to_le_bytes())
            })
            .unwrap();
        }
        let mut total = 0u64;
        mr.scan(|_, v| {
            total += u64::from_le_bytes(v.try_into().unwrap());
            Ok(())
        })
        .unwrap();
        assert_eq!(total, 10 * 8);
    });
}

#[test]
fn skewed_keys_partition_to_single_rank() {
    // All KVs share one key: after aggregate, exactly one rank owns them.
    let owners = run_world(4, |comm| {
        let pool = MemPool::unlimited("node", 4096);
        let mut mr = MapReduce::new(comm, pool, store(), MrMpiConfig::with_page_size(8192));
        mr.map(|em| {
            for i in 0..50u64 {
                em.emit(b"hotkey", &i.to_le_bytes())?;
            }
            Ok(())
        })
        .unwrap();
        mr.aggregate().unwrap();
        mr.kv_count()
    });
    let non_zero: Vec<_> = owners.iter().filter(|&&c| c > 0).collect();
    assert_eq!(non_zero.len(), 1);
    assert_eq!(*non_zero[0], 200);
}

#[test]
fn sort_keys_orders_the_dataset() {
    run_world(2, |comm| {
        let pool = MemPool::unlimited("node", 4096);
        let mut mr = MapReduce::new(comm, pool, store(), MrMpiConfig::with_page_size(4096));
        mr.map(|em| {
            // Reverse-ordered keys with duplicates.
            for i in (0..200u32).rev() {
                em.emit(format!("k{:03}", i % 50).as_bytes(), &i.to_le_bytes())?;
            }
            Ok(())
        })
        .unwrap();
        mr.sort_keys().unwrap();
        let mut keys = Vec::new();
        mr.scan(|k, _| {
            keys.push(k.to_vec());
            Ok(())
        })
        .unwrap();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        assert_eq!(keys.len(), 200);
    });
}

#[test]
fn sort_keys_spilled_dataset() {
    run_world(1, |comm| {
        let pool = MemPool::unlimited("node", 4096);
        let mut mr = MapReduce::new(comm, pool, store(), MrMpiConfig::with_page_size(256));
        mr.map(|em| {
            for i in (0..500u32).rev() {
                em.emit(&i.to_le_bytes(), b"payload").unwrap();
            }
            Ok(())
        })
        .unwrap();
        assert!(mr.stats().spilled);
        mr.sort_keys().unwrap();
        let mut prev: Option<Vec<u8>> = None;
        let mut n = 0;
        mr.scan(|k, _| {
            if let Some(p) = &prev {
                assert!(p.as_slice() <= k);
            }
            prev = Some(k.to_vec());
            n += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(n, 500);
    });
}

#[test]
fn collate_equals_aggregate_plus_convert() {
    let counts = run_world(3, |comm| {
        let pool = MemPool::unlimited("node", 4096);
        let mut mr = MapReduce::new(comm, pool, store(), MrMpiConfig::with_page_size(8192));
        mr.map(|em| {
            for i in 0..60u64 {
                em.emit(format!("w{}", i % 6).as_bytes(), &1u64.to_le_bytes())?;
            }
            Ok(())
        })
        .unwrap();
        mr.collate().unwrap();
        mr.reduce(|k, vals, em| {
            let n = vals.count() as u64;
            em.emit(k, &n.to_le_bytes())
        })
        .unwrap();
        let mut local = std::collections::HashMap::new();
        mr.scan(|k, v| {
            local.insert(k.to_vec(), u64::from_le_bytes(v.try_into().unwrap()));
            Ok(())
        })
        .unwrap();
        local
    });
    let merged: std::collections::HashMap<Vec<u8>, u64> = counts.into_iter().flatten().collect();
    assert_eq!(merged.len(), 6);
    assert!(merged.values().all(|&v| v == 30));
}

#[test]
fn always_mode_full_pipeline() {
    // OocMode::Always writes everything to the I/O subsystem at every
    // phase; results must be identical to in-memory mode, and the I/O
    // model must see substantial traffic.
    let io = IoModel::new(mimir_io::IoModelConfig {
        read_bw: 1e9,
        write_bw: 1e9,
        op_latency: std::time::Duration::ZERO,
    })
    .unwrap();
    let io2 = io.clone();
    let counts = run_world(2, move |comm| {
        let pool = MemPool::unlimited("node", 4096);
        let store = SpillStore::new_temp("always", io2.clone()).unwrap();
        let cfg = MrMpiConfig {
            page_size: 8 * 1024,
            ooc: OocMode::Always,
        };
        let mut mr = MapReduce::new(comm, pool, store, cfg);
        mr.map(|em| {
            for i in 0..500u64 {
                em.emit(format!("w{}", i % 7).as_bytes(), &1u64.to_le_bytes())?;
            }
            Ok(())
        })
        .unwrap();
        assert!(mr.spilled(), "Always mode spills by definition");
        mr.collate().unwrap();
        mr.reduce(|k, vals, em| {
            let n: u64 = vals
                .map(|v| u64::from_le_bytes(v.try_into().unwrap()))
                .sum();
            em.emit(k, &n.to_le_bytes())
        })
        .unwrap();
        let mut local = HashMap::new();
        mr.scan(|k, v| {
            local.insert(k.to_vec(), u64::from_le_bytes(v.try_into().unwrap()));
            Ok(())
        })
        .unwrap();
        local
    });
    let merged: HashMap<Vec<u8>, u64> = counts.into_iter().flatten().collect();
    assert_eq!(merged.len(), 7);
    assert_eq!(merged.values().sum::<u64>(), 1000);
    assert!(io.stats().bytes_written > 10_000, "{:?}", io.stats());
}
