//! Randomized tests for MR-MPI's grouping pipeline: for arbitrary KV
//! multisets and page sizes (in-memory through heavily-spilled), the
//! convert phase must produce exactly the reference grouping. Driven by
//! a seeded PRNG so failures replay deterministically.

use std::collections::HashMap;

use mimir_datagen::rank_rng;
use mimir_io::{IoModel, SpillStore};
use mimir_mem::MemPool;
use mimir_mpi::run_world;
use mrmpi::{MapReduce, MrMpiConfig, OocMode};

fn reference(kvs: &[(Vec<u8>, Vec<u8>)]) -> HashMap<Vec<u8>, Vec<Vec<u8>>> {
    let mut out: HashMap<Vec<u8>, Vec<Vec<u8>>> = HashMap::new();
    for (k, v) in kvs {
        out.entry(k.clone()).or_default().push(v.clone());
    }
    // Value order within a group is not specified by the merge; compare
    // sorted.
    for vals in out.values_mut() {
        vals.sort();
    }
    out
}

fn gen_kvs(seed: u64, case: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
    let mut rng = rank_rng(seed, case);
    (0..rng.gen_range(0..150))
        .map(|_| {
            let k: Vec<u8> = (0..rng.gen_range(0..10))
                .map(|_| rng.gen_range(0..256) as u8)
                .collect();
            let v: Vec<u8> = (0..rng.gen_range(0..12))
                .map(|_| rng.gen_range(0..256) as u8)
                .collect();
            (k, v)
        })
        .collect()
}

#[test]
fn convert_groups_exactly() {
    for case in 0..24usize {
        let kvs = gen_kvs(0x5027_3106, case);
        let page_size = [128usize, 512, 64 * 1024][case % 3];
        let expected = reference(&kvs);
        let kvs2 = kvs.clone();
        let got = run_world(1, move |comm| {
            let pool = MemPool::unlimited("prop", 4096);
            let store = SpillStore::new_temp("sm-prop", IoModel::free()).unwrap();
            let cfg = MrMpiConfig {
                page_size,
                ooc: OocMode::WhenNeeded,
            };
            let mut mr = MapReduce::new(comm, pool, store, cfg);
            mr.map(|em| {
                for (k, v) in &kvs2 {
                    em.emit(k, v)?;
                }
                Ok(())
            })
            .unwrap();
            mr.convert().unwrap();
            let mut groups: HashMap<Vec<u8>, Vec<Vec<u8>>> = HashMap::new();
            mr.reduce(|k, vals, em| {
                let mut list: Vec<Vec<u8>> = vals.map(<[u8]>::to_vec).collect();
                list.sort();
                groups.insert(k.to_vec(), list);
                em.emit(k, b"")
            })
            .unwrap();
            groups
        });
        assert_eq!(&got[0], &expected, "case {case}, page_size={page_size}");
    }
}

#[test]
fn compress_equals_reduce_for_commutative_ops() {
    for case in 0..24usize {
        let mut rng = rank_rng(0xC025_0355, case);
        let keys: Vec<u8> = (0..rng.gen_range(0..200))
            .map(|_| rng.gen_range(0..8) as u8)
            .collect();
        let page_size = [256usize, 32 * 1024][case % 2];
        // Sum of 1s per key via compress must equal the group sizes.
        let mut expected: HashMap<u8, u64> = HashMap::new();
        for &k in &keys {
            *expected.entry(k).or_default() += 1;
        }
        let keys2 = keys.clone();
        let got = run_world(1, move |comm| {
            let pool = MemPool::unlimited("prop", 4096);
            let store = SpillStore::new_temp("cps-prop", IoModel::free()).unwrap();
            let cfg = MrMpiConfig {
                page_size,
                ooc: OocMode::WhenNeeded,
            };
            let mut mr = MapReduce::new(comm, pool, store, cfg);
            mr.map(|em| {
                for &k in &keys2 {
                    em.emit(&[k], &1u64.to_le_bytes())?;
                }
                Ok(())
            })
            .unwrap();
            mr.compress(|_k, a, b, out| {
                let s = u64::from_le_bytes(a.try_into().unwrap())
                    + u64::from_le_bytes(b.try_into().unwrap());
                out.extend_from_slice(&s.to_le_bytes());
            })
            .unwrap();
            let mut counts: HashMap<u8, u64> = HashMap::new();
            mr.scan(|k, v| {
                counts.insert(k[0], u64::from_le_bytes(v.try_into().unwrap()));
                Ok(())
            })
            .unwrap();
            counts
        });
        assert_eq!(&got[0], &expected, "case {case}");
    }
}

#[test]
fn aggregate_delivers_every_kv_exactly_once() {
    for case in 0..24usize {
        let mut rng = rank_rng(0xA660_0001, case);
        let kvs = gen_kvs(0xA660_0002, case);
        let n_ranks = 1 + rng.gen_range(0..4);
        let total = kvs.len();
        let kvs2 = kvs.clone();
        let counts = run_world(n_ranks, move |comm| {
            let rank = comm.rank();
            let pool = MemPool::unlimited("prop", 4096);
            let store = SpillStore::new_temp("agg-prop", IoModel::free()).unwrap();
            let mut mr = MapReduce::new(comm, pool, store, MrMpiConfig::with_page_size(32 * 1024));
            mr.map(|em| {
                for (i, (k, v)) in kvs2.iter().enumerate() {
                    if i % n_ranks == rank {
                        em.emit(k, v)?;
                    }
                }
                Ok(())
            })
            .unwrap();
            mr.aggregate().unwrap();
            mr.kv_count()
        });
        assert_eq!(counts.iter().sum::<u64>() as usize, total, "case {case}");
    }
}
