//! MR-MPI's KV encoding: always the un-hinted `[klen u32][vlen u32][key]
//! [val]` layout (MR-MPI has no KV-hint mechanism — that is one of
//! Mimir's additions).

/// Encoded size of one KV.
#[inline]
pub(crate) fn kv_len(key: &[u8], val: &[u8]) -> usize {
    8 + key.len() + val.len()
}

/// Writes one KV at `out[off..]`, returning the new offset.
#[inline]
pub(crate) fn write_kv(key: &[u8], val: &[u8], out: &mut [u8], off: usize) -> usize {
    out[off..off + 4].copy_from_slice(&(key.len() as u32).to_le_bytes());
    out[off + 4..off + 8].copy_from_slice(&(val.len() as u32).to_le_bytes());
    out[off + 8..off + 8 + key.len()].copy_from_slice(key);
    let voff = off + 8 + key.len();
    out[voff..voff + val.len()].copy_from_slice(val);
    voff + val.len()
}

/// Reads the KV at `buf[off..]`, returning `(key, val, next_offset)`.
#[inline]
pub(crate) fn read_kv(buf: &[u8], off: usize) -> (&[u8], &[u8], usize) {
    let klen = u32::from_le_bytes(buf[off..off + 4].try_into().expect("klen")) as usize;
    let vlen = u32::from_le_bytes(buf[off + 4..off + 8].try_into().expect("vlen")) as usize;
    let kstart = off + 8;
    let vstart = kstart + klen;
    (
        &buf[kstart..vstart],
        &buf[vstart..vstart + vlen],
        vstart + vlen,
    )
}

/// Iterates all KVs in an encoded buffer.
#[cfg(test)]
pub(crate) fn for_each_kv(buf: &[u8], mut f: impl FnMut(&[u8], &[u8])) {
    let mut off = 0;
    while off < buf.len() {
        let (k, v, next) = read_kv(buf, off);
        f(k, v);
        off = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut buf = vec![0u8; 256];
        let mut off = 0;
        off = write_kv(b"alpha", b"1", &mut buf, off);
        off = write_kv(b"", b"", &mut buf, off);
        off = write_kv(b"k", b"value-bytes", &mut buf, off);
        let mut got = Vec::new();
        for_each_kv(&buf[..off], |k, v| got.push((k.to_vec(), v.to_vec())));
        assert_eq!(
            got,
            vec![
                (b"alpha".to_vec(), b"1".to_vec()),
                (Vec::new(), Vec::new()),
                (b"k".to_vec(), b"value-bytes".to_vec()),
            ]
        );
        assert_eq!(off, (8 + 6) + 8 + (8 + 12));
    }
}
