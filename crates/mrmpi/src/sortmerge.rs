//! Sort-based external grouping, backing MR-MPI's `convert` and
//! `compress` phases.
//!
//! In-memory datasets (one page) sort and group directly. Spilled datasets
//! use the classic external-grouping pipeline — sorted runs, bounded
//! fan-in k-way merges, streaming group emission — so results stay correct
//! at any scale while memory stays bounded and the I/O bill grows with the
//! data, exactly the regime behind the paper's Figure 1 cliff.

use mimir_io::{SpillFile, SpillReader, SpillStore};
use mimir_mem::MemPool;

use crate::codec::read_kv;
use crate::kmvset::pack_value;
use crate::kvset::KvSet;
use crate::Result;

/// Callback receiving `(key, value)` during a merge.
type KvVisitor<'a> = dyn FnMut(&[u8], &[u8]) -> Result<()> + 'a;

/// Maximum runs merged at once; beyond this, intermediate merge passes
/// combine runs first.
const MAX_FAN_IN: usize = 32;
/// Target sub-chunk size for run files: small enough that a merge holds
/// only `MAX_FAN_IN × RUN_CHUNK` bytes of windows.
const RUN_CHUNK: usize = 8 * 1024;

/// Groups a sealed KV dataset by key, invoking `emit(key, packed_vals,
/// n_vals)` once per unique key in ascending key order.
pub(crate) fn group_kvs(
    kv: &KvSet,
    store: &SpillStore,
    pool: &MemPool,
    mut emit: impl FnMut(&[u8], &[u8], u32) -> Result<()>,
) -> Result<()> {
    // Build one sorted run per page of KV data. A spilled dataset spills
    // every run as it is produced — only one page of sorted data may be
    // resident at a time, the same one-page discipline as the dataset
    // itself.
    let multi = kv.spilled();
    let mut runs: Vec<Run> = Vec::new();
    let mut scratch_res = pool.try_reserve(0)?;
    let mut max_chunk = 0usize;
    kv.for_each_page(&mut |page| {
        max_chunk = max_chunk.max(page.len());
        scratch_res.resize(max_chunk)?;
        let mut run = Run::Mem(sort_chunk(page));
        if multi {
            run.spill(store)?;
        }
        runs.push(run);
        Ok(())
    })?;
    drop(scratch_res);

    if runs.is_empty() {
        return Ok(());
    }

    // Bounded fan-in intermediate merges.
    while runs.len() > MAX_FAN_IN {
        let mut next: Vec<Run> = Vec::new();
        for batch in runs.chunks_mut(MAX_FAN_IN) {
            let mut readers = batch
                .iter_mut()
                .map(Run::reader)
                .collect::<Result<Vec<_>>>()?;
            let mut writer = RunWriter::new(store)?;
            merge_streams(&mut readers, &mut |k, v| writer.push_kv(k, v))?;
            next.push(Run::File(writer.finish()?));
        }
        runs = next;
    }

    // Final merge with streaming group emission.
    let mut readers = runs
        .iter_mut()
        .map(Run::reader)
        .collect::<Result<Vec<_>>>()?;
    let mut group_res = pool.try_reserve(0)?;
    let mut cur_key: Vec<u8> = Vec::new();
    let mut cur_vals: Vec<u8> = Vec::new();
    let mut cur_n: u32 = 0;
    let mut have_group = false;
    merge_streams(&mut readers, &mut |k, v| {
        if !have_group || k != cur_key.as_slice() {
            if have_group {
                emit(&cur_key, &cur_vals, cur_n)?;
            }
            cur_key.clear();
            cur_key.extend_from_slice(k);
            cur_vals.clear();
            cur_n = 0;
            have_group = true;
        }
        pack_value(&mut cur_vals, v);
        cur_n += 1;
        if cur_vals.capacity() > group_res.bytes() {
            group_res.resize(cur_vals.capacity())?;
        }
        Ok(())
    })?;
    if have_group {
        emit(&cur_key, &cur_vals, cur_n)?;
    }
    Ok(())
}

/// Sorts the KVs of one encoded page by key, returning the re-encoded
/// sorted buffer.
fn sort_chunk(page: &[u8]) -> Vec<u8> {
    let mut offsets: Vec<(usize, usize)> = Vec::new();
    let mut off = 0;
    while off < page.len() {
        let (_, _, next) = read_kv(page, off);
        offsets.push((off, next));
        off = next;
    }
    offsets.sort_by(|&(a, _), &(b, _)| {
        let (ka, _, _) = read_kv(page, a);
        let (kb, _, _) = read_kv(page, b);
        ka.cmp(kb)
    });
    let mut out = Vec::with_capacity(page.len());
    for (start, end) in offsets {
        out.extend_from_slice(&page[start..end]);
    }
    out
}

/// One sorted run, resident or spilled.
enum Run {
    Mem(Vec<u8>),
    File(SpillFile),
}

impl Run {
    fn spill(&mut self, store: &SpillStore) -> Result<()> {
        if let Run::Mem(data) = self {
            let mut w = RunWriter::new(store)?;
            let mut off = 0;
            while off < data.len() {
                let (k, v, next) = read_kv(data, off);
                w.push_kv(k, v)?;
                off = next;
            }
            *self = Run::File(w.finish()?);
        }
        Ok(())
    }

    fn reader(&mut self) -> Result<RunReader> {
        match self {
            Run::Mem(data) => Ok(RunReader {
                source: None,
                buf: std::mem::take(data),
                off: 0,
            }),
            Run::File(f) => {
                let mut r = RunReader {
                    source: Some(f.read_chunks()?),
                    buf: Vec::new(),
                    off: 0,
                };
                r.refill()?;
                Ok(r)
            }
        }
    }
}

/// Streaming reader over one sorted run.
struct RunReader {
    source: Option<SpillReader>,
    buf: Vec<u8>,
    off: usize,
}

impl RunReader {
    /// Ensures `off` points at a KV, pulling the next chunk when the
    /// window is exhausted. Returns false at end of run.
    fn refill(&mut self) -> Result<bool> {
        while self.off >= self.buf.len() {
            match &mut self.source {
                Some(reader) => match reader.next_chunk()? {
                    Some(chunk) => {
                        self.buf = chunk;
                        self.off = 0;
                    }
                    None => return Ok(false),
                },
                None => return Ok(false),
            }
        }
        Ok(true)
    }

    fn exhausted(&self) -> bool {
        self.off >= self.buf.len()
    }

    fn current(&self) -> (&[u8], &[u8], usize) {
        read_kv(&self.buf, self.off)
    }
}

/// Merges sorted runs, invoking `f` with every KV in ascending key order.
/// Linear scan per step — fan-in is bounded by `MAX_FAN_IN`.
fn merge_streams(readers: &mut [RunReader], f: &mut KvVisitor<'_>) -> Result<()> {
    for r in readers.iter_mut() {
        r.refill()?;
    }
    loop {
        let mut min_idx: Option<usize> = None;
        for (i, r) in readers.iter().enumerate() {
            if r.exhausted() {
                continue;
            }
            let (k, _, _) = r.current();
            min_idx = match min_idx {
                None => Some(i),
                Some(m) => {
                    let (km, _, _) = readers[m].current();
                    if k < km {
                        Some(i)
                    } else {
                        Some(m)
                    }
                }
            };
        }
        let Some(i) = min_idx else { break };
        let (k, v, next) = readers[i].current();
        f(k, v)?;
        readers[i].off = next;
        readers[i].refill()?;
    }
    Ok(())
}

/// Writes a sorted run as KV sub-chunks of roughly [`RUN_CHUNK`] bytes.
struct RunWriter {
    file: SpillFile,
    buf: Vec<u8>,
}

impl RunWriter {
    fn new(store: &SpillStore) -> Result<Self> {
        Ok(Self {
            file: store.create("run")?,
            buf: Vec::with_capacity(RUN_CHUNK + 256),
        })
    }

    fn push_kv(&mut self, k: &[u8], v: &[u8]) -> Result<()> {
        self.buf.extend_from_slice(&(k.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(&(v.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(k);
        self.buf.extend_from_slice(v);
        if self.buf.len() >= RUN_CHUNK {
            self.file.write_chunk(&self.buf)?;
            self.buf.clear();
        }
        Ok(())
    }

    fn finish(mut self) -> Result<SpillFile> {
        if !self.buf.is_empty() {
            self.file.write_chunk(&self.buf)?;
        }
        self.file.finish()?;
        Ok(self.file)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OocMode;
    use mimir_io::IoModel;
    use std::collections::HashMap;

    fn grouped(kv: &KvSet, store: &SpillStore, pool: &MemPool) -> HashMap<Vec<u8>, Vec<Vec<u8>>> {
        let mut out: HashMap<Vec<u8>, Vec<Vec<u8>>> = HashMap::new();
        let mut order: Vec<Vec<u8>> = Vec::new();
        group_kvs(kv, store, pool, |k, vals, n| {
            order.push(k.to_vec());
            let mut list = Vec::new();
            let mut off = 0;
            for _ in 0..n {
                let len = u32::from_le_bytes(vals[off..off + 4].try_into().unwrap()) as usize;
                list.push(vals[off + 4..off + 4 + len].to_vec());
                off += 4 + len;
            }
            out.insert(k.to_vec(), list);
            Ok(())
        })
        .unwrap();
        let mut sorted = order.clone();
        sorted.sort();
        assert_eq!(order, sorted, "groups must arrive in key order");
        out
    }

    #[test]
    fn in_memory_grouping() {
        let pool = MemPool::unlimited("t", 4096);
        let store = SpillStore::new_temp("sm", IoModel::free()).unwrap();
        let mut kv = KvSet::new(&pool, 4096, OocMode::WhenNeeded).unwrap();
        for i in 0..100u32 {
            kv.add(&store, format!("k{}", i % 7).as_bytes(), &i.to_le_bytes())
                .unwrap();
        }
        kv.seal(&store).unwrap();
        let g = grouped(&kv, &store, &pool);
        assert_eq!(g.len(), 7);
        assert_eq!(g[&b"k0".to_vec()].len(), 15); // 0,7,…,98
        assert_eq!(g[&b"k1".to_vec()].len(), 15);
        assert_eq!(g[&b"k6".to_vec()].len(), 14);
    }

    #[test]
    fn spilled_grouping_matches_in_memory() {
        let pool = MemPool::unlimited("t", 4096);
        let store = SpillStore::new_temp("sm", IoModel::free()).unwrap();
        // Tiny page forces dozens of spilled runs.
        let mut small = KvSet::new(&pool, 256, OocMode::WhenNeeded).unwrap();
        let mut big = KvSet::new(&pool, 1 << 20, OocMode::WhenNeeded).unwrap();
        for i in 0..3000u32 {
            let k = format!("key{:03}", i % 97);
            small.add(&store, k.as_bytes(), &i.to_le_bytes()).unwrap();
            big.add(&store, k.as_bytes(), &i.to_le_bytes()).unwrap();
        }
        small.seal(&store).unwrap();
        big.seal(&store).unwrap();
        assert!(small.spilled());
        assert!(!big.spilled());

        let mut a = grouped(&small, &store, &pool);
        let b = grouped(&big, &store, &pool);
        // Value multisets must match (order within a group may differ
        // between merge orders).
        for (k, vals) in a.iter_mut() {
            vals.sort();
            assert_eq!(
                *vals,
                {
                    let mut bv = b[k].clone();
                    bv.sort();
                    bv
                },
                "key {:?}",
                String::from_utf8_lossy(k)
            );
        }
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn many_runs_trigger_multipass_merge() {
        let pool = MemPool::unlimited("t", 4096);
        let store = SpillStore::new_temp("sm", IoModel::free()).unwrap();
        let mut kv = KvSet::new(&pool, 64, OocMode::WhenNeeded).unwrap();
        // 64-byte pages and ~20-byte KVs → ~700 pages ≫ MAX_FAN_IN runs.
        let n = 2000u32;
        for i in 0..n {
            kv.add(
                &store,
                format!("k{:04}", i % 50).as_bytes(),
                &i.to_le_bytes(),
            )
            .unwrap();
        }
        kv.seal(&store).unwrap();
        assert!(kv.spilled_pages() as usize > MAX_FAN_IN);
        let g = grouped(&kv, &store, &pool);
        assert_eq!(g.len(), 50);
        assert_eq!(g.values().map(Vec::len).sum::<usize>(), n as usize);
    }

    #[test]
    fn empty_dataset_emits_nothing() {
        let pool = MemPool::unlimited("t", 4096);
        let store = SpillStore::new_temp("sm", IoModel::free()).unwrap();
        let mut kv = KvSet::new(&pool, 256, OocMode::WhenNeeded).unwrap();
        kv.seal(&store).unwrap();
        let g = grouped(&kv, &store, &pool);
        assert!(g.is_empty());
    }
}
