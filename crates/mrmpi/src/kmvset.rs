use mimir_io::{SpillFile, SpillStore};
use mimir_mem::MemPool;

use crate::buf::MrPage;
use crate::{MrError, OocMode, Result};

/// Entry layout: `[klen u32][nvals u32][vtotal u32][key][vals…]` where
/// each value is `[vlen u32][bytes]`.
const ENTRY_HEADER: usize = 12;

/// An MR-MPI KMV dataset: grouped `<key, [values]>` entries with one
/// resident page and page spillover, mirroring [`crate::kvset::KvSet`].
///
/// An entry larger than a page (a hot key's value list) is written to the
/// spill as its own oversized chunk when out-of-core writes are enabled —
/// in-memory-only mode rejects it, per the paper's description of
/// MR-MPI's third setting.
pub(crate) struct KmvSet {
    page: MrPage,
    used: usize,
    spill: Option<SpillFile>,
    sealed: bool,
    ooc: OocMode,
    n_groups: u64,
    n_values: u64,
    bytes: u64,
    spilled_pages: u64,
}

impl KmvSet {
    pub fn new(pool: &MemPool, page_size: usize, ooc: OocMode) -> Result<Self> {
        Ok(Self {
            page: MrPage::new(pool, page_size)?,
            used: 0,
            spill: None,
            sealed: false,
            ooc,
            n_groups: 0,
            n_values: 0,
            bytes: 0,
            spilled_pages: 0,
        })
    }

    /// Appends one group. `vals` must already be packed as
    /// `[vlen u32][bytes]` per value.
    pub fn add_group(
        &mut self,
        store: &SpillStore,
        key: &[u8],
        vals: &[u8],
        nvals: u32,
    ) -> Result<()> {
        debug_assert!(!self.sealed, "add after seal");
        let entry_len = ENTRY_HEADER + key.len() + vals.len();
        self.n_groups += 1;
        self.n_values += u64::from(nvals);
        self.bytes += entry_len as u64;

        if entry_len > self.page.size() {
            // Jumbo group: straight to the I/O subsystem as its own chunk.
            if self.ooc == OocMode::Error {
                return Err(MrError::EntryTooLarge {
                    size: entry_len,
                    page_size: self.page.size(),
                });
            }
            self.flush_page(store)?;
            let mut entry = Vec::with_capacity(entry_len);
            Self::encode_header(&mut entry, key, vals, nvals);
            entry.extend_from_slice(key);
            entry.extend_from_slice(vals);
            self.ensure_spill(store)?;
            self.spill
                .as_mut()
                .expect("spill ensured")
                .write_chunk(&entry)?;
            self.spilled_pages += 1;
            return Ok(());
        }

        if self.used + entry_len > self.page.size() {
            if self.ooc == OocMode::Error {
                return Err(MrError::PageOverflow {
                    what: "KMV data",
                    page_size: self.page.size(),
                });
            }
            self.flush_page(store)?;
            self.spilled_pages += 1;
        }
        let out = self.page.as_mut_slice();
        let mut off = self.used;
        out[off..off + 4].copy_from_slice(&(key.len() as u32).to_le_bytes());
        out[off + 4..off + 8].copy_from_slice(&nvals.to_le_bytes());
        out[off + 8..off + 12].copy_from_slice(&(vals.len() as u32).to_le_bytes());
        off += 12;
        out[off..off + key.len()].copy_from_slice(key);
        off += key.len();
        out[off..off + vals.len()].copy_from_slice(vals);
        self.used = off + vals.len();
        Ok(())
    }

    fn encode_header(out: &mut Vec<u8>, key: &[u8], vals: &[u8], nvals: u32) {
        out.extend_from_slice(&(key.len() as u32).to_le_bytes());
        out.extend_from_slice(&nvals.to_le_bytes());
        out.extend_from_slice(&(vals.len() as u32).to_le_bytes());
    }

    pub fn seal(&mut self, store: &SpillStore) -> Result<()> {
        if self.sealed {
            return Ok(());
        }
        if self.ooc == OocMode::Always && self.used > 0 {
            self.flush_page(store)?;
            self.spilled_pages += 1;
        }
        if let Some(f) = &mut self.spill {
            f.finish()?;
        }
        self.sealed = true;
        Ok(())
    }

    /// Visits every group with its key and a value iterator.
    pub fn for_each_group(
        &self,
        mut f: impl FnMut(&[u8], MrValueIter<'_>) -> Result<()>,
    ) -> Result<()> {
        debug_assert!(self.sealed, "scan before seal");
        let mut visit = |chunk: &[u8]| -> Result<()> {
            let mut off = 0;
            while off < chunk.len() {
                let klen =
                    u32::from_le_bytes(chunk[off..off + 4].try_into().expect("klen")) as usize;
                let nvals = u32::from_le_bytes(chunk[off + 4..off + 8].try_into().expect("nvals"));
                let vtotal =
                    u32::from_le_bytes(chunk[off + 8..off + 12].try_into().expect("vtotal"))
                        as usize;
                let kstart = off + ENTRY_HEADER;
                let vstart = kstart + klen;
                f(
                    &chunk[kstart..vstart],
                    MrValueIter {
                        buf: &chunk[vstart..vstart + vtotal],
                        remaining: nvals,
                        off: 0,
                    },
                )?;
                off = vstart + vtotal;
            }
            Ok(())
        };
        if let Some(file) = &self.spill {
            let mut reader = file.read_chunks()?;
            while let Some(chunk) = reader.next_chunk()? {
                visit(&chunk)?;
            }
        }
        if self.used > 0 {
            visit(&self.page.as_slice()[..self.used])?;
        }
        Ok(())
    }

    pub fn n_groups(&self) -> u64 {
        self.n_groups
    }

    pub fn n_values(&self) -> u64 {
        self.n_values
    }

    pub fn spilled(&self) -> bool {
        self.spilled_pages > 0
    }

    fn ensure_spill(&mut self, store: &SpillStore) -> Result<()> {
        if self.spill.is_none() {
            self.spill = Some(store.create("kmv")?);
        }
        Ok(())
    }

    fn flush_page(&mut self, store: &SpillStore) -> Result<()> {
        if self.used == 0 {
            return Ok(());
        }
        self.ensure_spill(store)?;
        self.spill
            .as_mut()
            .expect("spill ensured")
            .write_chunk(&self.page.as_slice()[..self.used])?;
        self.used = 0;
        Ok(())
    }
}

/// Iterator over the packed `[vlen u32][bytes]` values of one group.
pub struct MrValueIter<'a> {
    buf: &'a [u8],
    remaining: u32,
    off: usize,
}

impl<'a> Iterator for MrValueIter<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let len =
            u32::from_le_bytes(self.buf[self.off..self.off + 4].try_into().expect("vlen")) as usize;
        let start = self.off + 4;
        self.off = start + len;
        Some(&self.buf[start..self.off])
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

impl ExactSizeIterator for MrValueIter<'_> {}

/// Packs one value onto a `[vlen u32][bytes]` buffer.
pub(crate) fn pack_value(out: &mut Vec<u8>, val: &[u8]) {
    out.extend_from_slice(&(val.len() as u32).to_le_bytes());
    out.extend_from_slice(val);
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimir_io::IoModel;

    fn fixture() -> (MemPool, SpillStore) {
        (
            MemPool::unlimited("t", 4096),
            SpillStore::new_temp("kmvset", IoModel::free()).unwrap(),
        )
    }

    fn packed(vals: &[&[u8]]) -> Vec<u8> {
        let mut out = Vec::new();
        for v in vals {
            pack_value(&mut out, v);
        }
        out
    }

    #[test]
    fn groups_roundtrip_in_memory() {
        let (pool, store) = fixture();
        let mut kmv = KmvSet::new(&pool, 1024, OocMode::WhenNeeded).unwrap();
        kmv.add_group(&store, b"a", &packed(&[b"1", b"22"]), 2)
            .unwrap();
        kmv.add_group(&store, b"bb", &packed(&[b"333"]), 1).unwrap();
        kmv.seal(&store).unwrap();
        let mut got = Vec::new();
        kmv.for_each_group(|k, vals| {
            got.push((k.to_vec(), vals.map(<[u8]>::to_vec).collect::<Vec<_>>()));
            Ok(())
        })
        .unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, b"a");
        assert_eq!(got[0].1, vec![b"1".to_vec(), b"22".to_vec()]);
        assert_eq!(got[1].1, vec![b"333".to_vec()]);
    }

    #[test]
    fn jumbo_group_spills_as_own_chunk() {
        let (pool, store) = fixture();
        let mut kmv = KmvSet::new(&pool, 128, OocMode::WhenNeeded).unwrap();
        let many: Vec<&[u8]> = (0..50).map(|_| &b"12345678"[..]).collect();
        kmv.add_group(&store, b"hot", &packed(&many), 50).unwrap();
        kmv.add_group(&store, b"cold", &packed(&[b"x"]), 1).unwrap();
        kmv.seal(&store).unwrap();
        assert!(kmv.spilled());
        let mut names = Vec::new();
        kmv.for_each_group(|k, vals| {
            names.push((k.to_vec(), vals.count()));
            Ok(())
        })
        .unwrap();
        assert_eq!(names, vec![(b"hot".to_vec(), 50), (b"cold".to_vec(), 1)]);
    }

    #[test]
    fn error_mode_rejects_jumbo() {
        let (pool, store) = fixture();
        let mut kmv = KmvSet::new(&pool, 64, OocMode::Error).unwrap();
        let many: Vec<&[u8]> = (0..50).map(|_| &b"12345678"[..]).collect();
        let err = kmv
            .add_group(&store, b"hot", &packed(&many), 50)
            .unwrap_err();
        assert!(matches!(err, MrError::EntryTooLarge { .. }));
    }
}
