use mimir_io::{SpillFile, SpillStore};
use mimir_mem::MemPool;

use crate::buf::MrPage;
use crate::codec::{kv_len, write_kv};
use crate::{MrError, OocMode, Result};

/// An MR-MPI KV dataset: **one page in memory**, everything beyond it on
/// the I/O subsystem as page-sized spill chunks. This is the structure
/// whose economics the paper's Figure 1 exposes — the in-memory page is
/// the entire fast path.
pub(crate) struct KvSet {
    page: MrPage,
    used: usize,
    spill: Option<SpillFile>,
    sealed: bool,
    ooc: OocMode,
    n_kvs: u64,
    bytes: u64,
    spilled_pages: u64,
}

impl KvSet {
    pub fn new(pool: &MemPool, page_size: usize, ooc: OocMode) -> Result<Self> {
        Ok(Self {
            page: MrPage::new(pool, page_size)?,
            used: 0,
            spill: None,
            sealed: false,
            ooc,
            n_kvs: 0,
            bytes: 0,
            spilled_pages: 0,
        })
    }

    /// Appends one KV, spilling the current page first if it is full.
    pub fn add(&mut self, store: &SpillStore, key: &[u8], val: &[u8]) -> Result<()> {
        debug_assert!(!self.sealed, "add after seal");
        let len = kv_len(key, val);
        if len > self.page.size() {
            return Err(MrError::EntryTooLarge {
                size: len,
                page_size: self.page.size(),
            });
        }
        if self.used + len > self.page.size() {
            self.spill_page(store, "kv")?;
        }
        self.used = write_kv(key, val, self.page.as_mut_slice(), self.used);
        self.n_kvs += 1;
        self.bytes += len as u64;
        Ok(())
    }

    /// Closes the write side. In [`OocMode::Always`] the final partial
    /// page is spilled too.
    pub fn seal(&mut self, store: &SpillStore) -> Result<()> {
        if self.sealed {
            return Ok(());
        }
        if self.ooc == OocMode::Always && self.used > 0 {
            self.spill_page(store, "kv")?;
        }
        if let Some(f) = &mut self.spill {
            f.finish()?;
        }
        self.sealed = true;
        Ok(())
    }

    /// Visits every page of KV data in write order: spilled chunks first
    /// (read back through the cost model), then the resident page.
    pub fn for_each_page(&self, f: &mut dyn FnMut(&[u8]) -> Result<()>) -> Result<()> {
        debug_assert!(self.sealed, "scan before seal");
        if let Some(file) = &self.spill {
            let mut reader = file.read_chunks()?;
            while let Some(chunk) = reader.next_chunk()? {
                f(&chunk)?;
            }
        }
        if self.used > 0 {
            f(&self.page.as_slice()[..self.used])?;
        }
        Ok(())
    }

    /// Visits every KV.
    pub fn for_each_kv(&self, mut f: impl FnMut(&[u8], &[u8]) -> Result<()>) -> Result<()> {
        self.for_each_page(&mut |page| {
            let mut off = 0;
            while off < page.len() {
                let (k, v, next) = crate::codec::read_kv(page, off);
                f(k, v)?;
                off = next;
            }
            Ok(())
        })
    }

    pub fn n_kvs(&self) -> u64 {
        self.n_kvs
    }

    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Whether any data left memory.
    pub fn spilled(&self) -> bool {
        self.spilled_pages > 0
    }

    pub fn spilled_pages(&self) -> u64 {
        self.spilled_pages
    }

    fn spill_page(&mut self, store: &SpillStore, label: &'static str) -> Result<()> {
        if self.ooc == OocMode::Error {
            return Err(MrError::PageOverflow {
                what: "KV data",
                page_size: self.page.size(),
            });
        }
        if self.spill.is_none() {
            self.spill = Some(store.create(label)?);
        }
        let file = self.spill.as_mut().expect("spill file just ensured");
        file.write_chunk(&self.page.as_slice()[..self.used])?;
        self.used = 0;
        self.spilled_pages += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimir_io::IoModel;

    fn fixture() -> (MemPool, SpillStore) {
        (
            MemPool::unlimited("t", 4096),
            SpillStore::new_temp("kvset", IoModel::free()).unwrap(),
        )
    }

    #[test]
    fn in_memory_roundtrip() {
        let (pool, store) = fixture();
        let mut kv = KvSet::new(&pool, 1024, OocMode::WhenNeeded).unwrap();
        for i in 0..10u32 {
            kv.add(&store, format!("k{i}").as_bytes(), &i.to_le_bytes())
                .unwrap();
        }
        kv.seal(&store).unwrap();
        assert!(!kv.spilled());
        let mut got = Vec::new();
        kv.for_each_kv(|k, v| {
            got.push((k.to_vec(), v.to_vec()));
            Ok(())
        })
        .unwrap();
        assert_eq!(got.len(), 10);
        assert_eq!(got[3].0, b"k3");
    }

    #[test]
    fn overflow_spills_and_reads_back_in_order() {
        let (pool, store) = fixture();
        let mut kv = KvSet::new(&pool, 128, OocMode::WhenNeeded).unwrap();
        let n = 200u32;
        for i in 0..n {
            kv.add(&store, &i.to_le_bytes(), b"0123456789").unwrap();
        }
        kv.seal(&store).unwrap();
        assert!(kv.spilled());
        assert!(kv.spilled_pages() > 10);
        let mut seen = 0u32;
        kv.for_each_kv(|k, _| {
            assert_eq!(u32::from_le_bytes(k.try_into().unwrap()), seen);
            seen += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(seen, n);
    }

    #[test]
    fn error_mode_rejects_overflow() {
        let (pool, store) = fixture();
        let mut kv = KvSet::new(&pool, 64, OocMode::Error).unwrap();
        let mut res = Ok(());
        for i in 0..100u32 {
            res = kv.add(&store, &i.to_le_bytes(), &[0u8; 20]);
            if res.is_err() {
                break;
            }
        }
        assert!(matches!(res, Err(MrError::PageOverflow { .. })));
    }

    #[test]
    fn always_mode_spills_everything() {
        let (pool, store) = fixture();
        let mut kv = KvSet::new(&pool, 1024, OocMode::Always).unwrap();
        for i in 0..5u32 {
            kv.add(&store, &i.to_le_bytes(), b"v").unwrap();
        }
        kv.seal(&store).unwrap();
        assert!(kv.spilled(), "Always mode spills even fitting data");
        let mut n = 0;
        kv.for_each_kv(|_, _| {
            n += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(n, 5);
    }

    #[test]
    fn page_charge_hits_pool_budget() {
        let pool = MemPool::new("t", 64, 1000).unwrap();
        assert!(KvSet::new(&pool, 2000, OocMode::WhenNeeded).is_err());
    }
}
