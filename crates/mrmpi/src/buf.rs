use mimir_mem::{MemPool, Reservation};

use crate::Result;

/// An MR-MPI "page": a fixed-size buffer charged to the node pool.
///
/// MR-MPI pages are sized by user configuration (64 KB–512 KB scaled),
/// independent of the pool's own page granularity, so they are tracked as
/// byte reservations rather than pool pages.
pub(crate) struct MrPage {
    _res: Reservation,
    data: Vec<u8>,
}

impl MrPage {
    /// Allocates a zeroed page of `size` bytes; fails if the node budget
    /// cannot afford it (MR-MPI's hard OOM).
    pub fn new(pool: &MemPool, size: usize) -> Result<Self> {
        let res = pool.try_reserve(size)?;
        Ok(Self {
            _res: res,
            data: vec![0u8; size],
        })
    }

    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        &mut self.data
    }

    #[inline]
    pub fn size(&self) -> usize {
        self.data.len()
    }
}
