use std::time::Duration;

/// Per-rank metrics across an MR-MPI job's phases.
#[derive(Debug, Clone, Copy, Default)]
pub struct MrStats {
    /// Wall time in `map` / `map_from_kv`.
    pub map_time: Duration,
    /// Wall time in `aggregate`.
    pub aggregate_time: Duration,
    /// Wall time in `convert`.
    pub convert_time: Duration,
    /// Wall time in `reduce`.
    pub reduce_time: Duration,
    /// Wall time in `compress`.
    pub compress_time: Duration,
    /// KVs emitted by map callbacks.
    pub kvs_mapped: u64,
    /// Exchange rounds in aggregate.
    pub exchange_rounds: u64,
    /// Whether any dataset spilled to the I/O subsystem.
    pub spilled: bool,
    /// Pages written to the I/O subsystem.
    pub spill_pages: u64,
    /// Unique keys after the last convert.
    pub unique_keys: u64,
    /// Node-pool peak at job end.
    pub node_peak_bytes: usize,
}

impl MrStats {
    /// Total wall time across phases.
    pub fn total_time(&self) -> Duration {
        self.map_time
            + self.aggregate_time
            + self.convert_time
            + self.reduce_time
            + self.compress_time
    }
}
