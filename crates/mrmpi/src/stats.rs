use std::time::Duration;

/// Per-rank metrics across an MR-MPI job's phases.
#[derive(Debug, Clone, Copy, Default)]
pub struct MrStats {
    /// Wall time in `map` / `map_from_kv`.
    pub map_time: Duration,
    /// Wall time in `aggregate`.
    pub aggregate_time: Duration,
    /// Wall time in `convert`.
    pub convert_time: Duration,
    /// Wall time in `reduce`.
    pub reduce_time: Duration,
    /// Wall time in `compress`.
    pub compress_time: Duration,
    /// KVs emitted by map callbacks.
    pub kvs_mapped: u64,
    /// Exchange rounds in aggregate.
    pub exchange_rounds: u64,
    /// Whether any dataset spilled to the I/O subsystem.
    pub spilled: bool,
    /// Pages written to the I/O subsystem.
    pub spill_pages: u64,
    /// Unique keys after the last convert.
    pub unique_keys: u64,
    /// Node-pool peak at job end.
    pub node_peak_bytes: usize,
}

impl MrStats {
    /// Total wall time across phases.
    pub fn total_time(&self) -> Duration {
        self.map_time
            + self.aggregate_time
            + self.convert_time
            + self.reduce_time
            + self.compress_time
    }

    /// Folds another rank's stats into this one for cluster totals.
    /// Phase times take the max (phases end at barriers), traffic and
    /// spill counters sum, exchange rounds take the max (they are
    /// collective), and pool peaks take the max (ranks share the node
    /// pool).
    pub fn merge(&mut self, other: &MrStats) {
        self.map_time = self.map_time.max(other.map_time);
        self.aggregate_time = self.aggregate_time.max(other.aggregate_time);
        self.convert_time = self.convert_time.max(other.convert_time);
        self.reduce_time = self.reduce_time.max(other.reduce_time);
        self.compress_time = self.compress_time.max(other.compress_time);
        self.kvs_mapped += other.kvs_mapped;
        self.exchange_rounds = self.exchange_rounds.max(other.exchange_rounds);
        self.spilled |= other.spilled;
        self.spill_pages += other.spill_pages;
        self.unique_keys += other.unique_keys;
        self.node_peak_bytes = self.node_peak_bytes.max(other.node_peak_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_semantics() {
        let mut a = MrStats {
            map_time: Duration::from_millis(4),
            kvs_mapped: 10,
            exchange_rounds: 3,
            spill_pages: 2,
            unique_keys: 5,
            node_peak_bytes: 100,
            ..MrStats::default()
        };
        let b = MrStats {
            map_time: Duration::from_millis(6),
            kvs_mapped: 20,
            exchange_rounds: 3,
            spilled: true,
            spill_pages: 1,
            unique_keys: 4,
            node_peak_bytes: 300,
            ..MrStats::default()
        };
        a.merge(&b);
        assert_eq!(a.map_time, Duration::from_millis(6));
        assert_eq!(a.kvs_mapped, 30);
        assert_eq!(a.exchange_rounds, 3, "rounds are collective");
        assert!(a.spilled);
        assert_eq!(a.spill_pages, 3);
        assert_eq!(a.unique_keys, 9);
        assert_eq!(a.node_peak_bytes, 300);
    }
}
