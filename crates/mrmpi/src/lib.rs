//! # mrmpi — the MR-MPI baseline (Plimpton & Devine)
//!
//! A faithful reimplementation of the MapReduce-MPI library's execution
//! model, built as the comparison baseline the paper measures Mimir
//! against. The design reproduces the properties the paper criticizes:
//!
//! * **Static fixed-size pages.** Every phase allocates its full page set
//!   up front — 1 page for `map`, 7 for `aggregate`, 4 for `convert`, 3
//!   for `reduce` — sized by [`MrMpiConfig::page_size`] regardless of how
//!   much data actually flows. Peak memory is therefore flat in the
//!   dataset size (the flat MR-MPI lines of paper Figures 8/9) and jobs
//!   fail outright when a node cannot afford a phase's page set.
//! * **One page in memory per dataset.** A KV or KMV dataset keeps one
//!   page resident; when it fills, the page spills to the I/O subsystem
//!   (the shared parallel file system — charged to the `mimir-io` cost
//!   model). Datasets that exceed one page per process leave the
//!   in-memory regime and performance collapses by orders of magnitude —
//!   paper Figure 1.
//! * **Copy-heavy aggregate.** The map writes to its own output page;
//!   aggregate re-scans it through temp partition buffers into a send
//!   buffer, receives into a double-size receive buffer ("to prevent
//!   buffer overflow due to partitioning skew"), and copies received KVs
//!   into the next phase's input page — the seven-page flow of paper
//!   Figure 3 that Mimir's shared buffers eliminate.
//! * **Explicit phases with global barriers.** The user calls
//!   `map`/`aggregate`/`convert`/`reduce` in sequence; each ends with a
//!   synchronization.
//!
//! Out-of-core grouping (`convert` on spilled data) uses sorted runs and
//! a streaming k-way merge, so results remain correct at any scale while
//! the I/O bill grows the way the paper's cliff demands.

mod api;
mod buf;
mod codec;
mod config;
mod error;
mod kmvset;
mod kvset;
mod sortmerge;
mod stats;

pub use api::{MapReduce, MrEmitter};
pub use config::{MrMpiConfig, OocMode};
pub use error::MrError;
pub use kmvset::MrValueIter;
pub use stats::MrStats;

/// Result alias for MR-MPI operations.
pub type Result<T> = std::result::Result<T, MrError>;
