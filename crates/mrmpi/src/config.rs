/// MR-MPI's three out-of-core settings (paper Section II-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OocMode {
    /// "Always write intermediate data to disk."
    Always,
    /// "Write intermediate data to disk only when the data is larger than
    /// a single page" — the default.
    #[default]
    WhenNeeded,
    /// "Report an error and terminate execution if the intermediate data
    /// is larger than a single page size."
    Error,
}

/// MR-MPI configuration.
#[derive(Debug, Clone, Copy)]
pub struct MrMpiConfig {
    /// The fixed page size. "By default, the size of a page is 64 MB,
    /// although it is configurable by the user. Generally, a user needs
    /// to set a larger page size in order to use the system memory more
    /// effectively." Scaled defaults put this at 64 KiB.
    pub page_size: usize,
    /// Out-of-core behaviour when data exceeds a page.
    pub ooc: OocMode,
}

impl Default for MrMpiConfig {
    fn default() -> Self {
        Self {
            page_size: 64 * 1024,
            ooc: OocMode::default(),
        }
    }
}

impl MrMpiConfig {
    /// Config with a given page size and the default spill behaviour.
    pub fn with_page_size(page_size: usize) -> Self {
        Self {
            page_size,
            ..Self::default()
        }
    }
}
