use std::fmt;

use mimir_io::IoError;
use mimir_mem::MemError;

/// Errors surfaced by MR-MPI phases.
#[derive(Debug)]
pub enum MrError {
    /// A phase could not allocate its static page set — the node budget
    /// cannot hold `pages × page_size` (the paper's "MR-MPI runs out of
    /// memory" cases).
    Mem(MemError),
    /// The I/O subsystem failed (spill write/read, input read).
    Io(IoError),
    /// Intermediate data exceeded a single page while out-of-core writes
    /// are disabled ([`crate::OocMode::Error`] — MR-MPI's third setting:
    /// "report an error and terminate execution").
    PageOverflow {
        /// Which dataset overflowed.
        what: &'static str,
        /// The page size it had to fit in.
        page_size: usize,
    },
    /// A single KV or KMV entry cannot fit in a page at all.
    EntryTooLarge {
        /// Encoded entry size.
        size: usize,
        /// Page capacity.
        page_size: usize,
    },
    /// Phase called out of order (e.g. `reduce` before `convert`).
    Phase(String),
}

impl fmt::Display for MrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MrError::Mem(e) => write!(f, "memory: {e}"),
            MrError::Io(e) => write!(f, "io: {e}"),
            MrError::PageOverflow { what, page_size } => {
                write!(
                    f,
                    "{what} exceeded one {page_size} B page with out-of-core disabled"
                )
            }
            MrError::EntryTooLarge { size, page_size } => {
                write!(f, "entry of {size} B cannot fit a {page_size} B page")
            }
            MrError::Phase(msg) => write!(f, "phase error: {msg}"),
        }
    }
}

impl std::error::Error for MrError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MrError::Mem(e) => Some(e),
            MrError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MemError> for MrError {
    fn from(e: MemError) -> Self {
        MrError::Mem(e)
    }
}

impl From<IoError> for MrError {
    fn from(e: IoError) -> Self {
        MrError::Io(e)
    }
}

impl MrError {
    /// True for hard memory exhaustion (page set unaffordable).
    pub fn is_oom(&self) -> bool {
        matches!(self, MrError::Mem(MemError::OutOfMemory { .. }))
    }
}
