//! The MR-MPI user-facing object: explicit `map` → `aggregate` →
//! `convert` → `reduce` phases over a current KV/KMV dataset, as in the
//! original library (paper Section II-B, Figure 2).

use std::time::Instant;

use mimir_io::SpillStore;
use mimir_mem::MemPool;
use mimir_mpi::{Comm, ReduceOp};
use mimir_obs::{EventKind, Phase, Step};

use crate::buf::MrPage;
use crate::codec::{kv_len, read_kv, write_kv};
use crate::kmvset::{KmvSet, MrValueIter};
use crate::kvset::KvSet;
use crate::sortmerge::group_kvs;
use crate::{MrError, MrMpiConfig, MrStats, Result};

/// FNV-1a hash used for MR-MPI's default key partitioning.
#[inline]
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_0000_01B3);
    }
    h
}

#[inline]
fn partition(key: &[u8], p: usize) -> usize {
    (fnv1a(key) % p as u64) as usize
}

/// Emitter handed to map and reduce callbacks.
pub struct MrEmitter<'a> {
    kv: &'a mut KvSet,
    store: &'a SpillStore,
    count: &'a mut u64,
}

impl MrEmitter<'_> {
    /// Emits one KV into the current output dataset.
    ///
    /// # Errors
    /// Page overflow (out-of-core disabled), oversized KVs, or I/O
    /// failures while spilling.
    pub fn emit(&mut self, key: &[u8], val: &[u8]) -> Result<()> {
        *self.count += 1;
        self.kv.add(self.store, key, val)
    }
}

/// The MR-MPI MapReduce object.
pub struct MapReduce<'w> {
    comm: &'w mut Comm,
    pool: MemPool,
    store: SpillStore,
    cfg: MrMpiConfig,
    kv: Option<KvSet>,
    kmv: Option<KmvSet>,
    stats: MrStats,
}

impl<'w> MapReduce<'w> {
    /// Binds an MR-MPI instance to this rank's communicator, node pool,
    /// and spill store.
    pub fn new(comm: &'w mut Comm, pool: MemPool, store: SpillStore, cfg: MrMpiConfig) -> Self {
        Self {
            comm,
            pool,
            store,
            cfg,
            kv: None,
            kmv: None,
            stats: MrStats::default(),
        }
    }

    /// The map phase: runs the user callback, which emits KVs into a new
    /// dataset (one fresh page). Ends with a global barrier.
    ///
    /// # Errors
    /// Page-set allocation failure, page overflow under
    /// [`crate::OocMode::Error`], or callback errors.
    pub fn map(&mut self, f: impl FnOnce(&mut MrEmitter<'_>) -> Result<()>) -> Result<()> {
        let t0 = Instant::now();
        let _span = mimir_obs::phase_span(Phase::Map);
        self.kmv = None;
        let mut kv = KvSet::new(&self.pool, self.cfg.page_size, self.cfg.ooc)?;
        {
            let mut em = MrEmitter {
                kv: &mut kv,
                store: &self.store,
                count: &mut self.stats.kvs_mapped,
            };
            f(&mut em)?;
        }
        kv.seal(&self.store)?;
        self.note_spill(&kv);
        self.kv = Some(kv);
        self.comm.barrier();
        self.stats.map_time += t0.elapsed();
        Ok(())
    }

    /// Map over the current KV dataset (multi-stage / iterative jobs),
    /// replacing it with the callback's output.
    ///
    /// # Errors
    /// As [`Self::map`], plus a phase error if no KV dataset exists.
    pub fn map_from_kv(
        &mut self,
        mut f: impl FnMut(&[u8], &[u8], &mut MrEmitter<'_>) -> Result<()>,
    ) -> Result<()> {
        let t0 = Instant::now();
        let _span = mimir_obs::phase_span(Phase::Map);
        let input = self
            .kv
            .take()
            .ok_or_else(|| MrError::Phase("map_from_kv without a KV dataset".into()))?;
        self.kmv = None;
        let mut out = KvSet::new(&self.pool, self.cfg.page_size, self.cfg.ooc)?;
        input.for_each_kv(|k, v| {
            let mut em = MrEmitter {
                kv: &mut out,
                store: &self.store,
                count: &mut self.stats.kvs_mapped,
            };
            f(k, v, &mut em)
        })?;
        out.seal(&self.store)?;
        self.note_spill(&out);
        self.kv = Some(out);
        self.comm.barrier();
        self.stats.map_time += t0.elapsed();
        Ok(())
    }

    /// The aggregate phase: all-to-all movement of the current KV dataset
    /// so every KV lands on the rank its key hashes to.
    ///
    /// Allocates the paper's seven pages up front: the input dataset's
    /// page (already held), two temp partition-scratch pages, the send
    /// buffer, a double-size receive buffer, and the output dataset's
    /// page — then re-scans the input through the temps into the send
    /// buffer (the copies Mimir eliminates).
    ///
    /// # Errors
    /// Page-set allocation failure (the classic MR-MPI OOM), overflow
    /// under [`crate::OocMode::Error`], or I/O failures.
    pub fn aggregate(&mut self) -> Result<()> {
        let t0 = Instant::now();
        let _span = mimir_obs::phase_span(Phase::Aggregate);
        let input = self
            .kv
            .take()
            .ok_or_else(|| MrError::Phase("aggregate without a KV dataset".into()))?;
        let page = self.cfg.page_size;
        let p = self.comm.size();

        // The seven-page set (input page is page #1).
        let mut temp_dest = MrPage::new(&self.pool, page)?; // temp #2
        let mut temp_sizes = MrPage::new(&self.pool, page)?; // temp #3
        let mut send = MrPage::new(&self.pool, page)?; // #4
        let mut recv = MrPage::new(&self.pool, 2 * page)?; // #5 and #6
        let mut out = KvSet::new(&self.pool, page, self.cfg.ooc)?; // #7

        let part_cap = page / p;
        if part_cap < 16 {
            return Err(MrError::Phase(format!(
                "page of {page} B leaves {part_cap} B send partitions across {p} ranks"
            )));
        }
        let mut part_len = vec![0usize; p];

        // Exchange round: collective, identical call sequence on every
        // rank (allreduce of done-flags, then alltoallv) — the same
        // deadlock-free protocol Mimir uses, here with MR-MPI's extra
        // buffer hops. Received data lands in the receive buffer and is
        // then copied into the output dataset's page.
        let mut rounds = 0u64;
        let mut exchange = |comm: &mut Comm,
                            send: &MrPage,
                            recv: &mut MrPage,
                            part_len: &mut [usize],
                            out: &mut KvSet,
                            store: &SpillStore,
                            done: bool|
         -> Result<bool> {
            let mut round = mimir_obs::span(EventKind::RoundBegin, EventKind::RoundEnd, rounds, 0);
            let all_done = {
                let _sync = mimir_obs::step_span(Step::Sync);
                comm.allreduce_u64(ReduceOp::LAnd, u64::from(done)) == 1
            };
            let parts: Vec<Vec<u8>> = (0..p)
                .map(|d| send.as_slice()[d * part_cap..d * part_cap + part_len[d]].to_vec())
                .collect();
            let received = {
                let mut step = mimir_obs::step_span(Step::Alltoallv);
                step.set_b(part_len.iter().map(|&l| l as u64).sum());
                comm.alltoallv(parts)
            };
            part_len.iter_mut().for_each(|l| *l = 0);
            // Stage through the receive buffer, draining to the output
            // dataset whenever it fills.
            let _drain = mimir_obs::step_span(Step::Drain);
            let mut used = 0usize;
            for block in received {
                if used + block.len() > recv.size() {
                    drain_recv(&recv.as_slice()[..used], out, store)?;
                    used = 0;
                }
                recv.as_mut_slice()[used..used + block.len()].copy_from_slice(&block);
                used += block.len();
            }
            drain_recv(&recv.as_slice()[..used], out, store)?;
            rounds += 1;
            round.set_b(u64::from(all_done));
            Ok(all_done)
        };

        // Scan the input page by page.
        let comm = &mut *self.comm;
        let store = &self.store;
        input.for_each_page(&mut |chunk| {
            // First pass (MR-MPI's partitioning scan): destination rank of
            // every KV into one temp buffer, per-destination totals into
            // the other.
            let sizes_mem = temp_sizes.as_mut_slice();
            sizes_mem[..p * 4].fill(0);
            let mut off = 0;
            let mut kv_idx = 0usize;
            while off < chunk.len() {
                let (k, _v, next) = read_kv(chunk, off);
                let dest = partition(k, p) as u32;
                let slot = (kv_idx * 4) % temp_dest.size();
                temp_dest.as_mut_slice()[slot..slot + 4].copy_from_slice(&dest.to_le_bytes());
                let s = u32::from_le_bytes(
                    sizes_mem[dest as usize * 4..dest as usize * 4 + 4]
                        .try_into()
                        .expect("u32 slot"),
                ) + (next - off) as u32;
                sizes_mem[dest as usize * 4..dest as usize * 4 + 4]
                    .copy_from_slice(&s.to_le_bytes());
                kv_idx += 1;
                off = next;
            }
            // Second pass: copy KVs into the send partitions, exchanging
            // whenever one fills.
            let mut off = 0;
            while off < chunk.len() {
                let (k, v, next) = read_kv(chunk, off);
                let len = next - off;
                if len > part_cap {
                    return Err(MrError::EntryTooLarge {
                        size: len,
                        page_size: part_cap,
                    });
                }
                let dest = partition(k, p);
                if part_len[dest] + len > part_cap {
                    exchange(
                        comm,
                        &send,
                        &mut recv,
                        &mut part_len,
                        &mut out,
                        store,
                        false,
                    )?;
                }
                let doff = dest * part_cap + part_len[dest];
                write_kv(k, v, &mut send.as_mut_slice()[doff..doff + len], 0);
                part_len[dest] += len;
                off = next;
            }
            Ok(())
        })?;
        while !exchange(comm, &send, &mut recv, &mut part_len, &mut out, store, true)? {}

        out.seal(&self.store)?;
        self.note_spill(&out);
        self.stats.exchange_rounds += rounds;
        self.kv = Some(out);
        self.comm.barrier();
        self.stats.aggregate_time += t0.elapsed();
        Ok(())
    }

    /// The convert phase: groups the current KV dataset into KMVs.
    /// Allocates the paper's four pages: the input page (held), two
    /// scratch pages for the grouping structures, and the KMV output
    /// page.
    ///
    /// # Errors
    /// Page-set allocation failure, overflow in in-memory-only mode, I/O
    /// failures.
    pub fn convert(&mut self) -> Result<()> {
        let t0 = Instant::now();
        let _span = mimir_obs::phase_span(Phase::Convert);
        let input = self
            .kv
            .take()
            .ok_or_else(|| MrError::Phase("convert without a KV dataset".into()))?;
        let page = self.cfg.page_size;
        let _scratch_a = MrPage::new(&self.pool, page)?;
        let _scratch_b = MrPage::new(&self.pool, page)?;
        let mut kmv = KmvSet::new(&self.pool, page, self.cfg.ooc)?;
        group_kvs(&input, &self.store, &self.pool, |k, vals, n| {
            kmv.add_group(&self.store, k, vals, n)
        })?;
        kmv.seal(&self.store)?;
        self.stats.unique_keys = kmv.n_groups();
        self.stats.spilled |= kmv.spilled();
        drop(input);
        self.kmv = Some(kmv);
        self.comm.barrier();
        self.stats.convert_time += t0.elapsed();
        Ok(())
    }

    /// `aggregate` followed by `convert` — MR-MPI's `collate()`
    /// convenience, the most common phase pair.
    ///
    /// # Errors
    /// As the two phases.
    pub fn collate(&mut self) -> Result<()> {
        self.aggregate()?;
        self.convert()
    }

    /// The reduce phase: runs the user callback over every KMV group,
    /// emitting a new KV dataset. Allocates three pages: the KMV input
    /// page (held), one scratch, and the output page.
    ///
    /// # Errors
    /// Phase error without a preceding convert; page/memory/I/O failures.
    pub fn reduce(
        &mut self,
        mut f: impl FnMut(&[u8], MrValueIter<'_>, &mut MrEmitter<'_>) -> Result<()>,
    ) -> Result<()> {
        let t0 = Instant::now();
        let _span = mimir_obs::phase_span(Phase::Reduce);
        let kmv = self
            .kmv
            .take()
            .ok_or_else(|| MrError::Phase("reduce without a KMV dataset".into()))?;
        let _scratch = MrPage::new(&self.pool, self.cfg.page_size)?;
        let mut out = KvSet::new(&self.pool, self.cfg.page_size, self.cfg.ooc)?;
        kmv.for_each_group(|k, vals| {
            let mut em = MrEmitter {
                kv: &mut out,
                store: &self.store,
                count: &mut self.stats.kvs_mapped,
            };
            f(k, vals, &mut em)
        })?;
        out.seal(&self.store)?;
        self.note_spill(&out);
        drop(kmv);
        self.kv = Some(out);
        self.comm.barrier();
        self.stats.reduce_time += t0.elapsed();
        Ok(())
    }

    /// MR-MPI's KV compression: a *local* group-and-combine that shrinks
    /// the KV dataset before aggregate. As the paper observes, this
    /// reduces shuffled data but not MR-MPI's page footprint — the page
    /// sets stay the same size.
    ///
    /// # Errors
    /// Page/memory/I/O failures.
    pub fn compress(
        &mut self,
        mut combine: impl FnMut(&[u8], &[u8], &[u8], &mut Vec<u8>),
    ) -> Result<()> {
        let t0 = Instant::now();
        let _span = mimir_obs::phase_span(Phase::Compress);
        let input = self
            .kv
            .take()
            .ok_or_else(|| MrError::Phase("compress without a KV dataset".into()))?;
        let page = self.cfg.page_size;
        let _scratch_a = MrPage::new(&self.pool, page)?;
        let _scratch_b = MrPage::new(&self.pool, page)?;
        let mut out = KvSet::new(&self.pool, page, self.cfg.ooc)?;
        let mut acc: Vec<u8> = Vec::new();
        let mut scratch: Vec<u8> = Vec::new();
        group_kvs(&input, &self.store, &self.pool, |k, vals, n| {
            acc.clear();
            let mut off = 0;
            for i in 0..n {
                let len = u32::from_le_bytes(vals[off..off + 4].try_into().expect("vlen")) as usize;
                let v = &vals[off + 4..off + 4 + len];
                if i == 0 {
                    acc.extend_from_slice(v);
                } else {
                    scratch.clear();
                    combine(k, &acc, v, &mut scratch);
                    std::mem::swap(&mut acc, &mut scratch);
                }
                off += 4 + len;
            }
            out.add(&self.store, k, &acc)
        })?;
        out.seal(&self.store)?;
        self.note_spill(&out);
        drop(input);
        self.kv = Some(out);
        self.comm.barrier();
        self.stats.compress_time += t0.elapsed();
        Ok(())
    }

    /// Sorts the current KV dataset by key (MR-MPI's `sort_keys`),
    /// using the same external sorted-run machinery as `convert` — ties
    /// between equal keys preserve no particular value order, as in the
    /// original. Allocates two scratch pages plus the output page.
    ///
    /// # Errors
    /// Page/memory/I/O failures.
    pub fn sort_keys(&mut self) -> Result<()> {
        let t0 = Instant::now();
        let _span = mimir_obs::phase_span(Phase::Sort);
        let input = self
            .kv
            .take()
            .ok_or_else(|| MrError::Phase("sort_keys without a KV dataset".into()))?;
        let page = self.cfg.page_size;
        let _scratch_a = MrPage::new(&self.pool, page)?;
        let _scratch_b = MrPage::new(&self.pool, page)?;
        let mut out = KvSet::new(&self.pool, page, self.cfg.ooc)?;
        group_kvs(&input, &self.store, &self.pool, |k, vals, n| {
            // Re-emit each value under its (now globally ordered) key.
            let mut off = 0;
            for _ in 0..n {
                let len = u32::from_le_bytes(vals[off..off + 4].try_into().expect("vlen")) as usize;
                out.add(&self.store, k, &vals[off + 4..off + 4 + len])?;
                off += 4 + len;
            }
            Ok(())
        })?;
        out.seal(&self.store)?;
        self.note_spill(&out);
        drop(input);
        self.kv = Some(out);
        self.comm.barrier();
        self.stats.map_time += t0.elapsed();
        Ok(())
    }

    /// Visits every KV of the current dataset (reading results out).
    ///
    /// # Errors
    /// Phase error if there is no KV dataset; I/O failures on spilled
    /// data.
    pub fn scan(&self, mut f: impl FnMut(&[u8], &[u8]) -> Result<()>) -> Result<()> {
        let kv = self
            .kv
            .as_ref()
            .ok_or_else(|| MrError::Phase("scan without a KV dataset".into()))?;
        kv.for_each_kv(&mut f)
    }

    /// Values grouped in the current KMV dataset (between convert and
    /// reduce).
    pub fn kmv_value_count(&self) -> u64 {
        self.kmv.as_ref().map_or(0, KmvSet::n_values)
    }

    /// KVs in the current dataset.
    pub fn kv_count(&self) -> u64 {
        self.kv.as_ref().map_or(0, KvSet::n_kvs)
    }

    /// Encoded bytes in the current dataset.
    pub fn kv_bytes(&self) -> u64 {
        self.kv.as_ref().map_or(0, KvSet::bytes)
    }

    /// Whether any phase spilled to the I/O subsystem.
    pub fn spilled(&self) -> bool {
        self.stats.spilled
    }

    /// Job statistics so far (peak memory is refreshed on read).
    pub fn stats(&self) -> MrStats {
        let mut s = self.stats;
        s.node_peak_bytes = self.pool.peak();
        s
    }

    /// Size of one KV as stored by MR-MPI (for workload arithmetic).
    pub fn encoded_kv_len(key: &[u8], val: &[u8]) -> usize {
        kv_len(key, val)
    }

    fn note_spill(&mut self, kv: &KvSet) {
        self.stats.spilled |= kv.spilled();
        self.stats.spill_pages += kv.spilled_pages();
    }
}

/// Copies received KVs out of the receive buffer into the output dataset.
fn drain_recv(buf: &[u8], out: &mut KvSet, store: &SpillStore) -> Result<()> {
    let mut off = 0;
    while off < buf.len() {
        let (k, v, next) = read_kv(buf, off);
        out.add(store, k, v)?;
        off = next;
    }
    Ok(())
}
