//! Running Mimir as a service: a multi-tenant job mix on one world.
//!
//! Instead of building one `MimirContext` and running one job, each
//! rank starts a `JobService` and submits a mixed workload — several
//! small WordCounts and one larger BFS — with different priorities and
//! memory footprints. The service runs them *concurrently*: every
//! admitted job gets a private duplicated communicator, a memory
//! reservation on every node, and a lane in the chrome trace.
//!
//! Run with: `cargo run --release -p mimir --example job_service`

use mimir::apps::bfs::{bfs_mimir, BfsOptions};
use mimir::apps::wordcount::{wordcount_mimir, WcOptions};
use mimir::prelude::*;

fn main() {
    const RANKS: usize = 4;
    const BUDGET: usize = 16 << 20;

    let nodes = NodeMap::new(RANKS, RANKS, 64 * 1024, BUDGET).expect("node map");

    let per_rank = run_world(RANKS, |comm| {
        let rank = comm.rank();
        let pool = nodes.pool_for_rank(rank);

        // The scheduler: at most 3 jobs in flight, an 8-deep submission
        // queue (submit blocks beyond that), and OOM suspend-and-retry.
        let sched = SchedConfig {
            queue_cap: 8,
            max_running: 3,
            max_retries: 3,
        };
        let mut svc = JobService::new(comm, pool, IoModel::free(), sched);

        // Tenant 1: four small WordCounts, low priority.
        let wc_ids: Vec<u64> = (0..4)
            .map(|j| {
                svc.submit(
                    JobSpec::new(format!("wc{j}"), 512 * 1024, move |ctx| {
                        let text =
                            UniformWords::new(j + 1).generate(ctx.rank(), ctx.size(), 64 * 1024);
                        let (counts, _m) = wordcount_mimir(ctx, &text, &WcOptions::all())?;
                        Ok(JobYield {
                            kvs_out: counts.len() as u64,
                            data: (counts.len() as u64).to_le_bytes().to_vec(),
                            spill_bytes: 0,
                        })
                    })
                    .priority(1),
                )
            })
            .collect();

        // Tenant 2: one larger BFS, high priority — it jumps the queue.
        let bfs_id = svc.submit(
            JobSpec::new("bfs", 2 << 20, |ctx| {
                let graph = Graph500::new(10, 42);
                let edges = graph.edges(ctx.rank(), ctx.size());
                let (result, _m) = bfs_mimir(ctx, &edges, 1, &BfsOptions::all())?;
                Ok(JobYield::from_data(
                    result.visited_global.to_le_bytes().to_vec(),
                ))
            })
            .priority(5),
        );

        // Drive the collective scheduler until everything retires.
        svc.run_until_idle();

        let visited = u64::from_le_bytes(
            svc.take_output(bfs_id)
                .expect("bfs output")
                .data
                .try_into()
                .unwrap(),
        );
        let wc_words: Vec<u64> = wc_ids
            .iter()
            .map(|&id| {
                u64::from_le_bytes(
                    svc.take_output(id)
                        .expect("wc output")
                        .data
                        .try_into()
                        .unwrap(),
                )
            })
            .collect();
        (visited, wc_words, svc.job_records())
    });

    let (visited, wc_words, records) = &per_rank[0];
    println!("BFS visited {visited} vertices (all jobs ran concurrently)");
    println!("WordCount distinct words per job (rank 0 share): {wc_words:?}");
    println!();
    println!("per-job lifecycle (rank 0):");
    println!("  id  name  prio  outcome  retries  queued(s)  running(s)  footprint");
    for r in records {
        println!(
            "  {:>2}  {:<4}  {:>4}  {:>7}  {:>7}  {:>9.4}  {:>10.4}  {:>9}",
            r.id,
            r.name,
            r.priority,
            format!("{:?}", JobOutcome::from_code(r.outcome).expect("outcome")),
            r.retries,
            r.queued_s,
            r.running_s,
            r.footprint_bytes,
        );
    }
    println!();
    println!(
        "peak node memory: {} KiB of {} KiB budget",
        nodes.max_node_peak() / 1024,
        16 << 10
    );
}
