//! PageRank over a Graph500 Kronecker graph — a fourth domain workload
//! beyond the paper's three benchmarks, showing three API features
//! together:
//!
//! * iterative jobs chained through the **cross-job KV cache**: the rank
//!   vector lives in the cache between iterations (`output_cached` /
//!   `input_cached`), never round-tripping through serialization or
//!   spill,
//! * **shuffle elision**: the damping update preserves keys under the
//!   same partitioner, so its shuffle is elided outright — the map feeds
//!   grouping straight from the locally-resident partition, and
//! * a **custom partitioner** (paper Section III-A: "Users can provide
//!   alternative hash functions that suit their needs") — vertex ids are
//!   dense after scrambling, so a block partitioner gives each rank a
//!   contiguous range and keeps placement stable across the chain.
//!
//! Each iteration is two chained jobs: a *scatter* that re-keys rank
//! shares along edges (a real shuffle — `shuffle_elision(false)`), and a
//! key-preserving *update* whose shuffle is elided.
//!
//! Usage:
//! ```text
//! cargo run --release -p mimir --example pagerank -- \
//!     [--scale 12] [--ranks 4] [--iters 10]
//! ```

use std::collections::HashMap;

use mimir::prelude::*;
use mimir_core::{typed, Partitioner};

const DAMPING: f64 = 0.85;

fn main() {
    let mut scale = 12u32;
    let mut ranks = 4usize;
    let mut iters = 10usize;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => scale = it.next().expect("value").parse().expect("number"),
            "--ranks" => ranks = it.next().expect("value").parse().expect("number"),
            "--iters" => iters = it.next().expect("value").parse().expect("number"),
            other => panic!("unknown argument {other}"),
        }
    }
    let graph = Graph500::new(scale, 7);
    let n = graph.n_vertices();
    println!(
        "PageRank: {} vertices, {} edges, {iters} iterations",
        n,
        graph.n_edges()
    );

    let nodes = NodeMap::new(ranks, ranks, 64 * 1024, 512 << 20).expect("node map");
    let nodes2 = nodes.clone();
    let t0 = std::time::Instant::now();
    let top = run_world(ranks, move |comm| {
        let p = comm.size();
        let rank = comm.rank();
        let edges = graph.edges(rank, p);
        let pool = nodes2.pool_for_rank(rank);
        let mut ctx = MimirContext::new(comm, pool, IoModel::free(), MimirConfig::default())
            .expect("context");
        let meta = KvMeta::fixed(8, 8);
        let part = Partitioner::u64_block(n);
        let sum_f64 = |_k: &[u8], a: &[u8], b: &[u8], out: &mut Vec<u8>| {
            let s = f64::from_le_bytes(a.try_into().unwrap())
                + f64::from_le_bytes(b.try_into().unwrap());
            out.extend_from_slice(&s.to_le_bytes());
        };

        // Stage 1: partition the directed adjacency by source vertex.
        let out = ctx
            .job()
            .kv_meta(meta)
            .partitioner(part.clone())
            .map_shuffle(&mut |em| {
                for &(u, v) in &edges {
                    em.emit(&typed::enc_u64(u), &typed::enc_u64(v))?;
                    em.emit(&typed::enc_u64(v), &typed::enc_u64(u))?;
                }
                Ok(())
            })
            .expect("partition stage");
        let mut adj: HashMap<u64, Vec<u64>> = HashMap::new();
        out.output
            .drain(|k, v| {
                adj.entry(typed::dec_u64(k))
                    .or_default()
                    .push(typed::dec_u64(v));
                Ok(())
            })
            .expect("build adjacency");

        // Seed the cached rank vector: my contiguous vertex range
        // (courtesy of the block partitioner) at the uniform 1/n.
        let per = n.div_ceil(p as u64).max(1);
        let my_range = (rank as u64 * per).min(n)..(((rank as u64) + 1) * per).min(n);
        ctx.job()
            .kv_meta(meta)
            .partitioner(part.clone())
            .output_cached("pr")
            .map_shuffle(&mut |em| {
                for v in my_range.clone() {
                    em.emit(&typed::enc_u64(v), &(1.0 / n as f64).to_le_bytes())?;
                }
                Ok(())
            })
            .expect("seed rank vector");

        // Power iterations: two chained jobs each. Scatter re-keys
        // (vertex → neighbor), so it runs a real shuffle; the damping
        // update preserves keys, so its shuffle is elided.
        for _ in 0..iters {
            ctx.job()
                .kv_meta(meta)
                .out_meta(meta)
                .partitioner(part.clone())
                .input_cached("pr")
                .output_cached("pr.sums")
                .shuffle_elision(false)
                .chain_partial_reduce(
                    &mut |k, v, em| {
                        let vertex = typed::dec_u64(k);
                        // Self-contribution of zero keeps every vertex in
                        // the sums, edges or not (and stays rank-local).
                        em.emit(k, &0.0f64.to_le_bytes())?;
                        if let Some(neighbors) = adj.get(&vertex) {
                            let r = f64::from_le_bytes(v.try_into().unwrap());
                            let share = r / neighbors.len() as f64;
                            for &dst in neighbors {
                                em.emit(&typed::enc_u64(dst), &share.to_le_bytes())?;
                            }
                        }
                        Ok(())
                    },
                    Box::new(sum_f64),
                )
                .expect("scatter stage");

            ctx.job()
                .kv_meta(meta)
                .partitioner(part.clone())
                .input_cached("pr.sums")
                .output_cached("pr")
                .chain_shuffle(&mut |k, v, em| {
                    let inc = f64::from_le_bytes(v.try_into().unwrap());
                    let r = (1.0 - DAMPING) / n as f64 + DAMPING * inc;
                    em.emit(k, &r.to_le_bytes())
                })
                .expect("damping update (elided)");
        }

        // Each rank reports its top vertex straight from the cached
        // partition, then releases the chain's memory.
        let best = ctx
            .with_cached("pr", |kvc| {
                let mut best = (0u64, f64::MIN);
                for (k, v) in kvc.iter() {
                    let r = f64::from_le_bytes(v.try_into().unwrap());
                    if r > best.1 {
                        best = (typed::dec_u64(k), r);
                    }
                }
                Ok(best)
            })
            .expect("read cached rank vector");
        let elisions = ctx.cache_stats().elisions;
        ctx.cache_clear();
        (best.0, best.1, elisions)
    });

    let mut tops = top;
    tops.sort_by(|a, b| b.1.total_cmp(&a.1));
    let elided: u64 = tops.iter().map(|&(_, _, e)| e).sum();
    println!(
        "top-ranked vertices after {:?} ({elided} shuffles elided):",
        t0.elapsed()
    );
    for (v, r, _) in tops.iter().take(5) {
        println!("  vertex {v:<10} rank {r:.6}");
    }
    println!("peak node memory: {} KiB", nodes.max_node_peak() / 1024);
}
