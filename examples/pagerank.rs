//! PageRank over a Graph500 Kronecker graph — a fourth domain workload
//! beyond the paper's three benchmarks, showing two API features
//! together:
//!
//! * iterative multi-stage jobs feeding one stage's output into the
//!   next map (the paper's second input source), and
//! * a **custom partitioner** (paper Section III-A: "Users can provide
//!   alternative hash functions that suit their needs") — vertex ids are
//!   dense after scrambling, so a block partitioner gives each rank a
//!   contiguous range and the rank-local rank vector is a plain lookup.
//!
//! Usage:
//! ```text
//! cargo run --release -p mimir --example pagerank -- \
//!     [--scale 12] [--ranks 4] [--iters 10]
//! ```

use std::collections::HashMap;

use mimir::prelude::*;
use mimir_core::{typed, Partitioner};

const DAMPING: f64 = 0.85;

fn main() {
    let mut scale = 12u32;
    let mut ranks = 4usize;
    let mut iters = 10usize;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => scale = it.next().expect("value").parse().expect("number"),
            "--ranks" => ranks = it.next().expect("value").parse().expect("number"),
            "--iters" => iters = it.next().expect("value").parse().expect("number"),
            other => panic!("unknown argument {other}"),
        }
    }
    let graph = Graph500::new(scale, 7);
    let n = graph.n_vertices();
    println!(
        "PageRank: {} vertices, {} edges, {iters} iterations",
        n,
        graph.n_edges()
    );

    let nodes = NodeMap::new(ranks, ranks, 64 * 1024, 512 << 20).expect("node map");
    let nodes2 = nodes.clone();
    let t0 = std::time::Instant::now();
    let top = run_world(ranks, move |comm| {
        let p = comm.size();
        let rank = comm.rank();
        let edges = graph.edges(rank, p);
        let pool = nodes2.pool_for_rank(rank);
        let mut ctx = MimirContext::new(comm, pool, IoModel::free(), MimirConfig::default())
            .expect("context");
        let meta = KvMeta::fixed(8, 8);
        let part = Partitioner::u64_block(n);
        let owner = |v: u64| ((v / n.div_ceil(p as u64).max(1)) as usize).min(p - 1);

        // Stage 1: partition the directed adjacency by source vertex.
        let out = ctx
            .job()
            .kv_meta(meta)
            .partitioner(part.clone())
            .map_shuffle(&mut |em| {
                for &(u, v) in &edges {
                    em.emit(&typed::enc_u64(u), &typed::enc_u64(v))?;
                    em.emit(&typed::enc_u64(v), &typed::enc_u64(u))?;
                }
                Ok(())
            })
            .expect("partition stage");
        let mut adj: HashMap<u64, Vec<u64>> = HashMap::new();
        out.output
            .drain(|k, v| {
                adj.entry(typed::dec_u64(k))
                    .or_default()
                    .push(typed::dec_u64(v));
                Ok(())
            })
            .expect("build adjacency");

        // My contiguous vertex range (courtesy of the block partitioner).
        let per = n.div_ceil(p as u64).max(1);
        let my_range = (rank as u64 * per).min(n)..(((rank as u64) + 1) * per).min(n);
        let mut pr: HashMap<u64, f64> = my_range.clone().map(|v| (v, 1.0 / n as f64)).collect();

        // Power iterations: scatter rank/degree along edges, gather sums.
        for _ in 0..iters {
            let sums = ctx
                .job()
                .kv_meta(meta)
                .out_meta(meta)
                .partitioner(part.clone())
                .map_partial_reduce(
                    &mut |em| {
                        for (&v, neighbors) in &adj {
                            let share = pr[&v] / neighbors.len() as f64;
                            for &dst in neighbors {
                                em.emit(&typed::enc_u64(dst), &share.to_le_bytes())?;
                            }
                        }
                        Ok(())
                    },
                    Box::new(|_k, a, b, out| {
                        let s = f64::from_le_bytes(a.try_into().unwrap())
                            + f64::from_le_bytes(b.try_into().unwrap());
                        out.extend_from_slice(&s.to_le_bytes());
                    }),
                )
                .expect("pagerank iteration");

            let mut incoming: HashMap<u64, f64> = HashMap::new();
            sums.output
                .drain(|k, v| {
                    incoming.insert(typed::dec_u64(k), f64::from_le_bytes(v.try_into().unwrap()));
                    Ok(())
                })
                .expect("drain sums");
            for (v, r) in pr.iter_mut() {
                let inc = incoming.get(v).copied().unwrap_or(0.0);
                *r = (1.0 - DAMPING) / n as f64 + DAMPING * inc;
            }
            let _ = owner; // owner() kept for clarity of the block layout
        }

        // Each rank reports its top vertex.
        pr.into_iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap_or((0, 0.0))
    });

    let mut tops = top;
    tops.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("top-ranked vertices after {:?}:", t0.elapsed());
    for (v, r) in tops.iter().take(5) {
        println!("  vertex {v:<10} rank {r:.6}");
    }
    println!("peak node memory: {} KiB", nodes.max_node_peak() / 1024);
}
