//! Octree clustering of 3-D point data — the paper's OC benchmark, used
//! for classifying ligand geometries from protein-ligand docking
//! simulations (Estrada et al.). The MapReduce job iteratively refines an
//! octree, keeping octants that hold at least 1 % of all points.
//!
//! Usage:
//! ```text
//! cargo run --release -p mimir --example octree_clustering -- \
//!     [--points 200000] [--ranks 8] [--density 0.01] [--all-opts]
//! ```

use mimir::apps::octree::{octree_mimir, OcOptions};
use mimir::prelude::*;

fn main() {
    let mut n_points = 200_000usize;
    let mut ranks = 8usize;
    let mut opts = OcOptions::default();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--points" => n_points = it.next().expect("value").parse().expect("number"),
            "--ranks" => ranks = it.next().expect("value").parse().expect("number"),
            "--density" => opts.density = it.next().expect("value").parse().expect("number"),
            "--all-opts" => {
                opts.hint = true;
                opts.partial_reduce = true;
                opts.compress = true;
            }
            other => panic!("unknown argument {other}"),
        }
    }

    let nodes = NodeMap::new(ranks, ranks, 64 * 1024, 128 << 20).expect("node map");
    let gen = PointGen::new(2024);

    let nodes2 = nodes.clone();
    let per_rank = run_world(ranks, move |comm| {
        let rank = comm.rank();
        let points = gen.generate(rank, comm.size(), n_points);
        let pool = nodes2.pool_for_rank(rank);
        let mut ctx = MimirContext::new(comm, pool, IoModel::free(), MimirConfig::default())
            .expect("context");
        octree_mimir(&mut ctx, &points, &opts).expect("octree job")
    });

    let mut dense: Vec<(Vec<u8>, u64)> = Vec::new();
    let mut level = 0;
    for (res, _) in &per_rank {
        dense.extend(res.local_dense.iter().cloned());
        level = level.max(res.final_level);
    }
    dense.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));

    println!(
        "clustered {} points at density {:.2}% -> {} dense octants at level {level}",
        n_points,
        opts.density * 100.0,
        dense.len()
    );
    for (path, count) in dense.iter().take(8) {
        let path_str: Vec<String> = path.iter().map(u8::to_string).collect();
        println!(
            "  octant /{:<15} {:>8} points ({:.1}%)",
            path_str.join("/"),
            count,
            *count as f64 / n_points as f64 * 100.0
        );
    }
    let iters = per_rank[0].1.iterations;
    println!(
        "{} MapReduce iterations, peak node memory {} KiB",
        iters,
        nodes.max_node_peak() / 1024
    );
}
