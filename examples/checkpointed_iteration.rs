//! Checkpoint/restart demo: an iterative MapReduce job that survives a
//! crash. The first incarnation is killed partway through by an injected
//! fault; the second resumes from the newest coordinated checkpoint and
//! finishes, producing the same result a fault-free run would.
//!
//! This demonstrates the `core::recovery` extension (the fault tolerance
//! the paper cites from its companion FT-MRMPI work).
//!
//! Run with: `cargo run --release -p mimir --example checkpointed_iteration`

use std::collections::HashMap;

use mimir::prelude::*;
use mimir_core::{run_iterative_with_recovery, typed, CheckpointStore};

const RANKS: usize = 4;
const ITERS: u32 = 10;
const CKPT_EVERY: u32 = 2;

fn run_once(ckpt_dir: std::path::PathBuf, fault_at: Option<u32>) -> std::thread::Result<u64> {
    std::panic::catch_unwind(move || {
        let totals = run_world(RANKS, move |comm| {
            let rank = comm.rank();
            let pool = MemPool::unlimited("node", 64 * 1024);
            let io = IoModel::free();
            let ckpt = CheckpointStore::open(&ckpt_dir, rank, io.clone()).expect("ckpt store");
            let mut ctx =
                MimirContext::new(comm, pool, io, MimirConfig::default()).expect("context");

            let (state, executed) = run_iterative_with_recovery(
                &mut ctx,
                &ckpt,
                CKPT_EVERY,
                HashMap::<u64, u64>::new,
                |s| {
                    let mut pairs: Vec<_> = s.iter().map(|(&k, &v)| (k, v)).collect();
                    pairs.sort_unstable();
                    pairs
                        .into_iter()
                        .flat_map(|(k, v)| typed::enc_u64_pair(k, v))
                        .collect()
                },
                |b| b.chunks_exact(16).map(typed::dec_u64_pair).collect(),
                move |ctx, state, iter| {
                    if fault_at == Some(iter) && ctx.rank() == 2 {
                        println!("  !! injected fault on rank 2 at iteration {iter}");
                        panic!("injected fault");
                    }
                    let res = ctx
                        .job()
                        .kv_meta(KvMeta::fixed(8, 8))
                        .out_meta(KvMeta::fixed(8, 8))
                        .map_partial_reduce(
                            &mut |em| {
                                for i in 0..1000u64 {
                                    em.emit(
                                        &typed::enc_u64(i % 97),
                                        &typed::enc_u64(u64::from(iter) + 1),
                                    )?;
                                }
                                Ok(())
                            },
                            Box::new(|_k, a, b, o| {
                                o.extend_from_slice(&typed::enc_u64(
                                    typed::dec_u64(a) + typed::dec_u64(b),
                                ));
                            }),
                        )
                        .expect("iteration job");
                    res.output.drain(|k, v| {
                        *state.entry(typed::dec_u64(k)).or_insert(0) += typed::dec_u64(v);
                        Ok(())
                    })?;
                    Ok(iter + 1 >= ITERS)
                },
            )
            .expect("recovery driver");
            if rank == 0 {
                println!("  rank 0 executed {executed} iterations this incarnation");
            }
            state.values().sum::<u64>()
        });
        totals.iter().sum()
    })
}

fn main() {
    let dir = std::env::temp_dir().join(format!("mimir-ckpt-demo-{}", std::process::id()));

    println!("incarnation 1: fault injected at iteration 7 (checkpoints every {CKPT_EVERY})");
    let crashed = run_once(dir.clone(), Some(7));
    assert!(crashed.is_err(), "the fault should abort the world");
    println!("  world aborted, checkpoints survive on the PFS\n");

    println!("incarnation 2: restart against the same checkpoint directory");
    let total = run_once(dir.clone(), None).expect("recovery succeeds");

    // Reference: what a never-crashed run computes.
    let fresh_dir =
        std::env::temp_dir().join(format!("mimir-ckpt-demo-ref-{}", std::process::id()));
    let reference = run_once(fresh_dir.clone(), None).expect("reference run");

    println!("\nrecovered total  = {total}");
    println!("reference total  = {reference}");
    assert_eq!(total, reference, "recovery must be exact");
    println!("recovery is bit-exact ✓");

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&fresh_dir).ok();
}
