//! Multi-stage pipeline — the paper's third input source: "KVs from
//! previous MapReduce operations for multistage jobs or iterative
//! MapReduce jobs, and sources other than MapReduce jobs (e.g., in situ
//! analytics workflows)".
//!
//! A simulation loop produces per-step particle energies *in situ* (no
//! file round trip). Stage 1 bins them into a histogram per step; stage 2
//! consumes stage 1's output KVs directly to find, per energy bin, the
//! step where the bin peaked — without the data ever touching storage.
//!
//! Run with: `cargo run --release -p mimir --example in_situ_pipeline`

use mimir::prelude::*;
use mimir_core::typed;

const RANKS: usize = 4;
const STEPS: u64 = 8;
const PARTICLES_PER_RANK: usize = 50_000;

fn sum_u64(_k: &[u8], a: &[u8], b: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(&typed::enc_u64(typed::dec_u64(a) + typed::dec_u64(b)));
}

fn main() {
    let nodes = NodeMap::new(RANKS, RANKS, 64 * 1024, 64 << 20).expect("node map");
    let nodes2 = nodes.clone();

    let per_rank = run_world(RANKS, move |comm| {
        let rank = comm.rank();
        let pool = nodes2.pool_for_rank(rank);
        let mut ctx = MimirContext::new(comm, pool, IoModel::free(), MimirConfig::default())
            .expect("context");
        let meta = KvMeta::fixed(16, 8); // key: (step, bin) — val: u64

        // --- Stage 1: in-situ histogram of simulated energies. --------
        // Key = (step, energy bin); value = particle count. The "source
        // other than a MapReduce job" is the simulation loop itself.
        let stage1 = ctx
            .job()
            .kv_meta(meta)
            .out_meta(meta)
            .map_partial_reduce(
                &mut |em| {
                    let mut state = 0x9E37_79B9u64.wrapping_mul(rank as u64 + 1);
                    for step in 0..STEPS {
                        for _ in 0..PARTICLES_PER_RANK {
                            // A cheap LCG stands in for the physics.
                            state = state
                                .wrapping_mul(6_364_136_223_846_793_005)
                                .wrapping_add(1_442_695_040_888_963_407);
                            // Energies drift upward with the step so the
                            // per-bin peak step is non-trivial.
                            let energy = (state >> 33) % (40 + step * 3);
                            let bin = energy / 10;
                            em.emit(&typed::enc_u64_pair(step, bin), &typed::enc_u64(1))?;
                        }
                    }
                    Ok(())
                },
                Box::new(sum_u64),
            )
            .expect("stage 1");

        // --- Stage 2: input = stage 1's output KVs, no storage hop. ----
        // Re-key from (step, bin) to bin; value = (count, step) packed;
        // reduce keeps the step with the maximal count.
        let out_meta = KvMeta::fixed(8, 16);
        let mut stage1_kvs = stage1.output;
        let stage2 = ctx
            .job()
            .kv_meta(out_meta)
            .out_meta(out_meta)
            .map_reduce(
                &mut |em| {
                    // `drain` frees stage 1's container pages as the next
                    // stage consumes them.
                    stage1_kvs.drain_all(|k, v| {
                        let (step, bin) = typed::dec_u64_pair(k);
                        let count = typed::dec_u64(v);
                        em.emit(&typed::enc_u64(bin), &typed::enc_u64_pair(count, step))
                    })
                },
                &mut |k, vals, em| {
                    let best = vals
                        .map(typed::dec_u64_pair)
                        .max()
                        .expect("non-empty group");
                    em.emit(k, &typed::enc_u64_pair(best.0, best.1))
                },
            )
            .expect("stage 2");

        let mut results: Vec<(u64, u64, u64)> = Vec::new();
        stage2
            .output
            .drain(|k, v| {
                let bin = typed::dec_u64(k);
                let (count, step) = typed::dec_u64_pair(v);
                results.push((bin, step, count));
                Ok(())
            })
            .expect("drain stage 2");
        results
    });

    let mut rows: Vec<(u64, u64, u64)> = per_rank.into_iter().flatten().collect();
    rows.sort();
    println!("energy-bin peaks across {STEPS} simulation steps:");
    println!("  bin   peak step   particles");
    for (bin, step, count) in rows {
        println!("  {bin:<6}{step:<12}{count}");
    }
    println!("peak node memory: {} KiB", nodes.max_node_peak() / 1024);
}
