//! Quickstart: WordCount on Mimir in ~50 lines.
//!
//! Run with: `cargo run --release -p mimir --example quickstart`

use mimir::prelude::*;

fn main() {
    const RANKS: usize = 4;

    // One simulated compute node: 4 ranks sharing 16 MiB, 64 KiB pages.
    let nodes = NodeMap::new(RANKS, RANKS, 64 * 1024, 16 << 20).expect("node map");

    // Every rank generates its share of a small uniform corpus.
    let corpus = UniformWords::new(1);

    let per_rank = run_world(RANKS, |comm| {
        let rank = comm.rank();
        let text = corpus.generate(rank, RANKS, 256 * 1024);
        let pool = nodes.pool_for_rank(rank);
        let mut ctx = MimirContext::new(comm, pool, IoModel::free(), MimirConfig::default())
            .expect("context");

        // WordCount with the paper's hint (C-string key, u64 value) and
        // partial reduction.
        let meta = KvMeta::cstr_key_u64_val();
        let out = ctx
            .job()
            .kv_meta(meta)
            .out_meta(meta)
            .map_partial_reduce(
                &mut |em| {
                    for line in mimir::io::LineReader::new(&text) {
                        for word in mimir::io::words(line) {
                            em.emit(word, &1u64.to_le_bytes())?;
                        }
                    }
                    Ok(())
                },
                Box::new(|_k, a, b, out| {
                    let sum = u64::from_le_bytes(a.try_into().unwrap())
                        + u64::from_le_bytes(b.try_into().unwrap());
                    out.extend_from_slice(&sum.to_le_bytes());
                }),
            )
            .expect("wordcount job");

        // Collect this rank's reduced counts.
        let mut counts: Vec<(String, u64)> = Vec::new();
        out.output
            .drain(|k, v| {
                counts.push((
                    String::from_utf8_lossy(k).into_owned(),
                    u64::from_le_bytes(v.try_into().unwrap()),
                ));
                Ok(())
            })
            .expect("drain output");
        (counts, out.stats)
    });

    let mut all: Vec<(String, u64)> = per_rank.iter().flat_map(|(c, _)| c.clone()).collect();
    all.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    println!("distinct words: {}", all.len());
    println!("top 10:");
    for (word, count) in all.iter().take(10) {
        println!("  {word:<12} {count}");
    }
    println!("peak node memory: {} KiB", nodes.max_node_peak() / 1024);
    println!("exchange rounds (rank 0): {}", per_rank[0].1.shuffle.rounds);
}
