//! File-based WordCount with selectable optimizations — the paper's WC
//! benchmark end to end: a corpus is materialized on the (simulated)
//! parallel file system, each rank reads its record-aligned split, and
//! the configured framework counts words.
//!
//! Usage:
//! ```text
//! cargo run --release -p mimir --example wordcount_corpus -- \
//!     [--size-kb 2048] [--ranks 8] [--dataset uniform|wikipedia] \
//!     [--framework mimir|mrmpi] [--hint] [--pr] [--cps]
//! ```

use std::path::PathBuf;

use mimir::apps::validate::merge_counts;
use mimir::apps::wordcount::{wordcount_mimir, wordcount_mrmpi, WcOptions};
use mimir::prelude::*;

struct Args {
    size_kb: usize,
    ranks: usize,
    dataset: String,
    framework: String,
    opts: WcOptions,
}

fn parse_args() -> Args {
    let mut args = Args {
        size_kb: 2048,
        ranks: 8,
        dataset: "wikipedia".into(),
        framework: "mimir".into(),
        opts: WcOptions::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--size-kb" => args.size_kb = it.next().expect("value").parse().expect("number"),
            "--ranks" => args.ranks = it.next().expect("value").parse().expect("number"),
            "--dataset" => args.dataset = it.next().expect("value"),
            "--framework" => args.framework = it.next().expect("value"),
            "--hint" => args.opts.hint = true,
            "--pr" => args.opts.partial_reduce = true,
            "--cps" => args.opts.compress = true,
            other => panic!("unknown argument {other}"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let total_bytes = args.size_kb * 1024;
    let ranks = args.ranks;

    // Materialize the corpus on "the parallel file system".
    let dir = std::env::temp_dir().join(format!("mimir-wc-example-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("corpus dir");
    let path: PathBuf = dir.join("corpus.txt");
    let written = match args.dataset.as_str() {
        "uniform" => {
            let g = UniformWords::new(11);
            mimir::datagen::write_corpus(&path, ranks, |r, n| g.generate(r, n, total_bytes))
        }
        "wikipedia" => {
            let g = WikipediaWords::new(11);
            mimir::datagen::write_corpus(&path, ranks, |r, n| g.generate(r, n, total_bytes))
        }
        other => panic!("unknown dataset {other}"),
    }
    .expect("write corpus");
    println!(
        "corpus: {} ({} KiB, {})",
        path.display(),
        written / 1024,
        args.dataset
    );

    // A Comet-mini-ish node: all ranks on one node, 128 MiB budget.
    let nodes = NodeMap::new(ranks, ranks, 64 * 1024, 128 << 20).expect("node map");
    let io = IoModel::new(IoModelConfig::lustre_scaled()).expect("io model");

    let framework = args.framework.clone();
    let opts = args.opts;
    let path2 = path.clone();
    let io2 = io.clone();
    let nodes2 = nodes.clone();
    let per_rank = run_world(ranks, move |comm| {
        let rank = comm.rank();
        let pool = nodes2.pool_for_rank(rank);
        match framework.as_str() {
            "mimir" => {
                let mut ctx = MimirContext::new(comm, pool, io2.clone(), MimirConfig::default())
                    .expect("context");
                let text = ctx.read_text_split(&path2).expect("input split");
                let (counts, metrics) = wordcount_mimir(&mut ctx, &text, &opts).expect("wordcount");
                (counts, metrics)
            }
            "mrmpi" => {
                let text = mimir::io::splitter::read_split(&path2, rank, ranks, b'\n', &io2)
                    .expect("input split");
                let store = SpillStore::new_temp("wc-example", io2.clone()).expect("spill");
                let (counts, metrics) = wordcount_mrmpi(
                    comm,
                    pool,
                    store,
                    MrMpiConfig::with_page_size(64 * 1024),
                    &text,
                    opts.compress,
                )
                .expect("wordcount");
                (counts, metrics)
            }
            other => panic!("unknown framework {other}"),
        }
    });

    let metrics: Vec<_> = per_rank.iter().map(|(_, m)| *m).collect();
    let counts = merge_counts(per_rank.into_iter().map(|(c, _)| c).collect());
    let mut top: Vec<_> = counts.iter().collect();
    top.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));

    println!("distinct words: {}", counts.len());
    println!("top 5:");
    for (w, c) in top.iter().take(5) {
        println!("  {:<16} {c}", String::from_utf8_lossy(w));
    }
    let wall = metrics.iter().map(|m| m.wall).max().unwrap_or_default();
    let kv_bytes: u64 = metrics.iter().map(|m| m.kv_bytes).sum();
    println!(
        "[{}{}{}{}] wall {:?} + modeled I/O {:?}, KV bytes {} KiB, peak node mem {} KiB{}",
        args.framework,
        if args.opts.hint { ";hint" } else { "" },
        if args.opts.partial_reduce { ";pr" } else { "" },
        if args.opts.compress { ";cps" } else { "" },
        wall,
        io.modeled_time(),
        kv_bytes / 1024,
        nodes.max_node_peak() / 1024,
        if metrics.iter().any(|m| m.spilled) {
            " [SPILLED]"
        } else {
            ""
        }
    );

    std::fs::remove_dir_all(&dir).ok();
}
