//! The same 4-rank WordCount on either transport backend — ranks as
//! threads over the in-process channel matrix, or as real forked
//! processes exchanging frames over Unix-domain sockets — selected by
//! `MIMIR_TRANSPORT` with zero changes to the program itself.
//!
//! ```text
//! cargo run --release -p mimir --example transport_wordcount
//! MIMIR_TRANSPORT=uds cargo run --release -p mimir --example transport_wordcount
//! ```
//!
//! Both invocations must print the identical per-rank output digests:
//! the partitioner sees the same world either way, so every word lands
//! on the same rank with the same count.

use mimir::prelude::*;
use mimir_mpi::{run_world_on, CommStats, TransportKind};

const RANKS: usize = 4;

fn main() {
    let kind = TransportKind::from_env();
    let corpus = UniformWords::new(7);

    // (rank digest of sorted word:count records, comm stats).
    let per_rank: Vec<(u64, CommStats)> = run_world_on(kind, RANKS, move |comm| {
        let rank = comm.rank();
        let text = corpus.generate(rank, RANKS, 128 * 1024);
        // Each rank owns its pool: under UDS ranks are separate
        // processes, so there is no shared NodeMap to allocate from.
        let pool = MemPool::new(format!("node{rank}"), 64 * 1024, 32 << 20).expect("pool");
        let mut counts = {
            let mut ctx = MimirContext::new(comm, pool, IoModel::free(), MimirConfig::default())
                .expect("ctx");
            let (counts, _metrics) =
                mimir::apps::wordcount::wordcount_mimir(&mut ctx, &text, &Default::default())
                    .expect("wordcount");
            counts
        };
        counts.sort();
        // Order-independent digest of this rank's reduced output.
        let mut digest = 0xcbf2_9ce4_8422_2325u64;
        for (word, n) in &counts {
            for &b in word.iter().chain(&n.to_le_bytes()) {
                digest = (digest ^ b as u64).wrapping_mul(0x1000_0000_01b3);
            }
        }
        (digest, comm.stats())
    });

    println!("transport: {}", kind.name());
    let mut total = CommStats::default();
    for (rank, (digest, stats)) in per_rank.iter().enumerate() {
        println!("rank {rank}: digest {digest:016x}");
        total = total.merge(stats);
    }
    println!(
        "comm: {} msgs, {} B payload; wire: {} frames, {} B, handshake {:.2} ms",
        total.msgs_sent,
        total.bytes_sent,
        total.wire_frames_sent,
        total.wire_bytes_sent,
        per_rank
            .iter()
            .map(|(_, s)| s.handshake_ns)
            .max()
            .unwrap_or(0) as f64
            / 1e6,
    );
}
