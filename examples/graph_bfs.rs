//! Graph500-style BFS — the paper's iterative map-only benchmark. A
//! Kronecker (R-MAT) graph is generated in parallel, partitioned across
//! ranks through the framework, and traversed level by level.
//!
//! Usage:
//! ```text
//! cargo run --release -p mimir --example graph_bfs -- \
//!     [--scale 14] [--ranks 8] [--hint] [--cps]
//! ```

use mimir::apps::bfs::{bfs_mimir, pick_root, BfsOptions};
use mimir::prelude::*;

fn main() {
    let mut scale = 14u32;
    let mut ranks = 8usize;
    let mut opts = BfsOptions::default();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => scale = it.next().expect("value").parse().expect("number"),
            "--ranks" => ranks = it.next().expect("value").parse().expect("number"),
            "--hint" => opts.hint = true,
            "--cps" => opts.compress = true,
            other => panic!("unknown argument {other}"),
        }
    }

    let graph = Graph500::new(scale, 1);
    println!(
        "graph: scale {scale} -> {} vertices, {} edges (avg degree {})",
        graph.n_vertices(),
        graph.n_edges(),
        2 * graph.edge_factor
    );

    let nodes = NodeMap::new(ranks, ranks, 64 * 1024, 256 << 20).expect("node map");
    let nodes2 = nodes.clone();
    let t0 = std::time::Instant::now();
    let per_rank = run_world(ranks, move |comm| {
        let edges = graph.edges(comm.rank(), comm.size());
        let root = pick_root(comm, &edges);
        let pool = nodes2.pool_for_rank(comm.rank());
        let mut ctx = MimirContext::new(comm, pool, IoModel::free(), MimirConfig::default())
            .expect("context");
        let (res, metrics) = bfs_mimir(&mut ctx, &edges, root, &opts).expect("bfs");
        (root, res, metrics)
    });
    let wall = t0.elapsed();

    let (root, res, _) = &per_rank[0];
    let teps = graph.n_edges() as f64 * 2.0 / wall.as_secs_f64();
    println!(
        "BFS from root {root}: visited {} / {} vertices, depth {}",
        res.visited_global,
        graph.n_vertices(),
        res.depth
    );
    println!(
        "harness wall {wall:?} (~{:.1} M traversed edges/s), peak node memory {} KiB",
        teps / 1e6,
        nodes.max_node_peak() / 1024
    );
}
