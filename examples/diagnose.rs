//! Diagnose a skewed run with `mimir-doctor`.
//!
//! Runs the same WordCount shuffle twice — once over a heavy power-law
//! (Zipf) corpus and once over a uniform one — assembles the per-rank
//! reports the way a trace session does, and feeds both to the doctor.
//! The skewed run draws a partition-skew finding naming the shuffle
//! phase and the hotspot rank; the uniform control comes back healthy.
//!
//! No combiner on purpose: partial reduction would collapse the hot key
//! to one KV per rank and hide exactly the shuffle-volume imbalance the
//! paper's Figure 10 is about.
//!
//! Run with: `cargo run --release -p mimir --example diagnose`

use mimir::prelude::*;
use mimir_obs::RankReport;

const RANKS: usize = 4;
const CORPUS_BYTES: usize = 256 * 1024;

/// Maps a corpus, shuffles raw `(word, 1)` pairs, and returns per-rank
/// reports carrying the shuffle skew and wait counters.
fn run_wordcount(corpus: impl Fn(usize) -> Vec<u8> + Send + Sync) -> Vec<RankReport> {
    run_world(RANKS, |comm| {
        let rank = comm.rank();
        let text = corpus(rank);
        let pool = MemPool::unlimited(format!("n{rank}"), 64 * 1024);
        let mut ctx = MimirContext::new(comm, pool, IoModel::free(), MimirConfig::default())
            .expect("context");
        let meta = KvMeta::cstr_key_u64_val();
        let out = ctx
            .job()
            .kv_meta(meta)
            .map_shuffle(&mut |em| {
                for line in mimir::io::LineReader::new(&text) {
                    for word in mimir::io::words(line) {
                        em.emit(word, &1u64.to_le_bytes())?;
                    }
                }
                Ok(())
            })
            .expect("wordcount shuffle");

        let s = &out.stats;
        let mut r = RankReport::new(rank);
        r.ranks = RANKS as u64;
        r.shuffle.kvs_emitted = s.shuffle.kvs_emitted;
        r.shuffle.kv_bytes_emitted = s.shuffle.kv_bytes_emitted;
        r.shuffle.kvs_received = s.shuffle.kvs_received;
        r.shuffle.bytes_received = s.shuffle.bytes_received;
        r.shuffle.max_dest_bytes = s.shuffle.max_dest_bytes;
        r.shuffle.imbalance_permille = s.shuffle.imbalance_permille;
        r.shuffle.gini_permille = s.shuffle.gini_permille;
        r.waits.sync_wait_ns = s.shuffle.sync_wait_ns;
        r.waits.data_wait_ns = s.shuffle.data_wait_ns;
        r.waits.barrier_wait_ns = s.barrier_wait_ns;
        r.times.map_s = s.map_time.as_secs_f64();
        r
    })
}

fn main() {
    // Zipf(2.0): the top word alone carries ~60% of all occurrences, so
    // whichever rank its hash lands on receives several times its fair
    // share of shuffle bytes.
    let zipf = WikipediaWords {
        vocab: 50_000,
        zipf_s: 2.0,
        seed: 42,
    };
    println!("=== skewed corpus (Zipf s=2.0) ===");
    let reports = run_wordcount(|rank| zipf.generate(rank, RANKS, CORPUS_BYTES));
    let received: Vec<u64> = reports.iter().map(|r| r.shuffle.bytes_received).collect();
    println!("bytes received per rank: {received:?}");
    println!("{}", mimir_doctor::diagnose(&reports).to_text());

    println!("\n=== uniform control ===");
    let uniform = UniformWords::new(42);
    let reports = run_wordcount(|rank| uniform.generate(rank, RANKS, CORPUS_BYTES));
    let received: Vec<u64> = reports.iter().map(|r| r.shuffle.bytes_received).collect();
    println!("bytes received per rank: {received:?}");
    println!("{}", mimir_doctor::diagnose(&reports).to_text());
}
