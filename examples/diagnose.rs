//! Diagnose a skewed run with `mimir-doctor`.
//!
//! Runs the same WordCount shuffle twice — once over a heavy power-law
//! (Zipf) corpus and once over a uniform one — assembles the per-rank
//! reports the way a trace session does, and feeds both to the doctor.
//! The skewed run draws a partition-skew finding naming the shuffle
//! phase and the hotspot rank; the uniform control comes back healthy.
//! The skewed run is additionally flow-traced (shared-epoch recorders,
//! flow ids on every message), so the doctor measures its critical path
//! instead of guessing the straggler, and the per-segment breakdown is
//! printed. The control stays untraced: its story is the byte-counter
//! contrast, and on a time-sliced machine a measured path would honestly
//! (but distractingly) name whichever rank the scheduler starved.
//!
//! No combiner on purpose: partial reduction would collapse the hot key
//! to one KV per rank and hide exactly the shuffle-volume imbalance the
//! paper's Figure 10 is about.
//!
//! Run with: `cargo run --release -p mimir --example diagnose`

use std::time::Instant;

use mimir::prelude::*;
use mimir_obs::{RankReport, Recorder};

const RANKS: usize = 4;
const CORPUS_BYTES: usize = 256 * 1024;

/// Maps a corpus, shuffles raw `(word, 1)` pairs, and returns per-rank
/// reports carrying the shuffle skew and wait counters plus the flow
/// event timeline the critical-path engine consumes.
fn run_wordcount(corpus: impl Fn(usize) -> Vec<u8> + Send + Sync, traced: bool) -> Vec<RankReport> {
    // One epoch for the whole world: cross-rank timestamps (and thus
    // flow edges) are only comparable against a shared clock.
    let epoch = Instant::now();
    run_world(RANKS, move |comm| {
        let rank = comm.rank();
        if traced {
            let mut rec = Recorder::with_epoch(rank, 64 * 1024, epoch);
            rec.set_flow_enabled(true);
            mimir_obs::install(rec);
        }
        let text = corpus(rank);
        let pool = MemPool::unlimited(format!("n{rank}"), 64 * 1024);
        let mut ctx = MimirContext::new(comm, pool, IoModel::free(), MimirConfig::default())
            .expect("context");
        let meta = KvMeta::cstr_key_u64_val();
        let out = ctx
            .job()
            .kv_meta(meta)
            .map_shuffle(&mut |em| {
                for line in mimir::io::LineReader::new(&text) {
                    for word in mimir::io::words(line) {
                        em.emit(word, &1u64.to_le_bytes())?;
                    }
                }
                Ok(())
            })
            .expect("wordcount shuffle");

        let s = &out.stats;
        let mut r = RankReport::new(rank);
        r.ranks = RANKS as u64;
        if let Some(rec) = mimir_obs::take() {
            r.events = rec.events();
            r.events_dropped = rec.dropped();
        }
        r.shuffle.kvs_emitted = s.shuffle.kvs_emitted;
        r.shuffle.kv_bytes_emitted = s.shuffle.kv_bytes_emitted;
        r.shuffle.kvs_received = s.shuffle.kvs_received;
        r.shuffle.bytes_received = s.shuffle.bytes_received;
        r.shuffle.max_dest_bytes = s.shuffle.max_dest_bytes;
        r.shuffle.imbalance_permille = s.shuffle.imbalance_permille;
        r.shuffle.gini_permille = s.shuffle.gini_permille;
        r.waits.sync_wait_ns = s.shuffle.sync_wait_ns;
        r.waits.data_wait_ns = s.shuffle.data_wait_ns;
        r.waits.barrier_wait_ns = s.barrier_wait_ns;
        r.times.map_s = s.map_time.as_secs_f64();
        r
    })
}

fn main() {
    // Zipf(2.0): the top word alone carries ~60% of all occurrences, so
    // whichever rank its hash lands on receives several times its fair
    // share of shuffle bytes.
    let zipf = WikipediaWords {
        vocab: 50_000,
        zipf_s: 2.0,
        seed: 42,
    };
    println!("=== skewed corpus (Zipf s=2.0) ===");
    let reports = run_wordcount(|rank| zipf.generate(rank, RANKS, CORPUS_BYTES), true);
    let received: Vec<u64> = reports.iter().map(|r| r.shuffle.bytes_received).collect();
    println!("bytes received per rank: {received:?}");
    println!("{}", mimir_doctor::diagnose(&reports).to_text());
    if let Some(path) = mimir_doctor::critical_path(&reports) {
        println!("{}", path.to_text());
    }

    println!("\n=== uniform control ===");
    let uniform = UniformWords::new(42);
    let reports = run_wordcount(|rank| uniform.generate(rank, RANKS, CORPUS_BYTES), false);
    let received: Vec<u64> = reports.iter().map(|r| r.shuffle.bytes_received).collect();
    println!("bytes received per rank: {received:?}");
    println!("{}", mimir_doctor::diagnose(&reports).to_text());
}
