//! Reduce-side equi-join — a classic MapReduce pattern beyond the
//! paper's benchmarks, exercising tagged values and multi-input maps.
//!
//! Two synthetic datasets are joined on `user_id`:
//! * `users`:     (user_id, region)
//! * `purchases`: (user_id, amount)
//!
//! The map tags each record with its source; the reduce pairs every
//! purchase with its user's region and aggregates revenue per region.
//!
//! Run with: `cargo run --release -p mimir --example reduce_side_join`

use mimir::prelude::*;
use mimir_core::typed;

const RANKS: usize = 4;
const USERS: u64 = 10_000;
const PURCHASES_PER_RANK: u64 = 50_000;
const REGIONS: [&str; 4] = ["north", "south", "east", "west"];

fn main() {
    let nodes = NodeMap::new(RANKS, RANKS, 64 * 1024, 64 << 20).expect("node map");
    let nodes2 = nodes.clone();

    let per_rank = run_world(RANKS, move |comm| {
        let rank = comm.rank() as u64;
        let pool = nodes2.pool_for_rank(comm.rank());
        let mut ctx = MimirContext::new(comm, pool, IoModel::free(), MimirConfig::default())
            .expect("context");

        // Value layout: 1 tag byte + payload. Tag 0 = user record
        // (payload: region index), tag 1 = purchase (payload: u64 cents).
        let out = ctx
            .job()
            .kv_meta(KvMeta {
                key: mimir_core::LenHint::Fixed(8),
                val: mimir_core::LenHint::Var,
            })
            .map_reduce(
                &mut |em| {
                    // This rank's slice of the user table…
                    let mut uid = rank;
                    while uid < USERS {
                        let region = (uid % REGIONS.len() as u64) as u8;
                        em.emit(&typed::enc_u64(uid), &[0u8, region])?;
                        uid += RANKS as u64;
                    }
                    // …and a stream of purchases with a cheap LCG.
                    let mut state = 0x1234_5678u64.wrapping_add(rank);
                    for _ in 0..PURCHASES_PER_RANK {
                        state = state
                            .wrapping_mul(6_364_136_223_846_793_005)
                            .wrapping_add(1_442_695_040_888_963_407);
                        let uid = (state >> 13) % USERS;
                        let cents = (state >> 40) % 10_000;
                        let mut val = vec![1u8];
                        val.extend_from_slice(&typed::enc_u64(cents));
                        em.emit(&typed::enc_u64(uid), &val)?;
                    }
                    Ok(())
                },
                &mut |_uid, vals, em| {
                    // One user record and many purchases per key.
                    let mut region: Option<u8> = None;
                    let mut total = 0u64;
                    let mut n = 0u64;
                    for v in vals {
                        match v[0] {
                            0 => region = Some(v[1]),
                            _ => {
                                total += typed::dec_u64(&v[1..]);
                                n += 1;
                            }
                        }
                    }
                    let region = region.expect("every purchase has a user");
                    if n > 0 {
                        em.emit(&[region], &typed::enc_u64_pair(total, n))?;
                    }
                    Ok(())
                },
            )
            .expect("join job");

        // Aggregate (region -> revenue) locally; regions are few.
        let mut local = [(0u64, 0u64); REGIONS.len()];
        out.output
            .drain(|k, v| {
                let (cents, n) = typed::dec_u64_pair(v);
                local[k[0] as usize].0 += cents;
                local[k[0] as usize].1 += n;
                Ok(())
            })
            .expect("drain join output");
        local
    });

    let mut totals = [(0u64, 0u64); REGIONS.len()];
    for local in per_rank {
        for (i, (cents, n)) in local.iter().enumerate() {
            totals[i].0 += cents;
            totals[i].1 += n;
        }
    }
    println!(
        "revenue by region ({} purchases joined against {USERS} users):",
        RANKS as u64 * PURCHASES_PER_RANK
    );
    for (i, name) in REGIONS.iter().enumerate() {
        println!(
            "  {name:<6} ${:>12.2}  ({} purchases)",
            totals[i].0 as f64 / 100.0,
            totals[i].1
        );
    }
    let joined: u64 = totals.iter().map(|&(_, n)| n).sum();
    assert_eq!(joined, RANKS as u64 * PURCHASES_PER_RANK);
    println!("peak node memory: {} KiB", nodes.max_node_peak() / 1024);
}
