//! Mimir and MR-MPI must compute identical results on identical inputs —
//! the precondition for every comparison figure in the paper.

use mimir::apps::bfs::{bfs_mimir, bfs_mrmpi, bfs_serial, pick_root, BfsOptions};
use mimir::apps::octree::{octree_mimir, octree_mrmpi, OcOptions};
use mimir::apps::validate::{merge_counts, validate_bfs_tree};
use mimir::apps::wordcount::{wordcount_mimir, wordcount_mrmpi, WcOptions};
use mimir::prelude::*;

const RANKS: usize = 5;

#[test]
fn wordcount_equivalence() {
    let text_of = |rank: usize| WikipediaWords::new(21).generate(rank, RANKS, 60_000);

    let mimir_counts = merge_counts(run_world(RANKS, move |comm| {
        let pool = MemPool::unlimited("node", 64 * 1024);
        let mut ctx =
            MimirContext::new(comm, pool, IoModel::free(), MimirConfig::default()).unwrap();
        let text = text_of(ctx.rank());
        wordcount_mimir(&mut ctx, &text, &WcOptions::default())
            .unwrap()
            .0
    }));

    let mr_counts = merge_counts(run_world(RANKS, move |comm| {
        let pool = MemPool::unlimited("node", 64 * 1024);
        let store = SpillStore::new_temp("eq-wc", IoModel::free()).unwrap();
        let text = text_of(comm.rank());
        wordcount_mrmpi(
            comm,
            pool,
            store,
            MrMpiConfig::with_page_size(128 * 1024),
            &text,
            false,
        )
        .unwrap()
        .0
    }));

    assert_eq!(mimir_counts, mr_counts);
    assert!(!mimir_counts.is_empty());
}

#[test]
fn wordcount_equivalence_when_mrmpi_spills() {
    // Force MR-MPI out of core with tiny pages; Mimir stays in memory.
    // Results must still match — spilling is a performance event, not a
    // correctness event.
    let text_of = |rank: usize| UniformWords::new(8).generate(rank, 3, 80_000);

    let mimir_counts = merge_counts(run_world(3, move |comm| {
        let pool = MemPool::unlimited("node", 64 * 1024);
        let mut ctx =
            MimirContext::new(comm, pool, IoModel::free(), MimirConfig::default()).unwrap();
        let text = text_of(ctx.rank());
        wordcount_mimir(&mut ctx, &text, &WcOptions::default())
            .unwrap()
            .0
    }));

    let (mr_counts, spilled) = {
        let per_rank = run_world(3, move |comm| {
            let pool = MemPool::unlimited("node", 64 * 1024);
            let store = SpillStore::new_temp("eq-wc-spill", IoModel::free()).unwrap();
            let text = text_of(comm.rank());
            wordcount_mrmpi(
                comm,
                pool,
                store,
                MrMpiConfig::with_page_size(8 * 1024),
                &text,
                false,
            )
            .unwrap()
        });
        let spilled = per_rank.iter().any(|(_, m)| m.spilled);
        (
            merge_counts(per_rank.into_iter().map(|(c, _)| c).collect()),
            spilled,
        )
    };

    assert!(spilled, "fixture must actually spill");
    assert_eq!(mimir_counts, mr_counts);
}

#[test]
fn octree_equivalence() {
    let gen = PointGen::new(31);
    let n_points = 16_000;
    let opts = OcOptions::default();

    let dense = |per_rank: Vec<mimir::apps::octree::OcResult>| {
        per_rank
            .into_iter()
            .flat_map(|r| r.local_dense)
            .collect::<std::collections::BTreeMap<Vec<u8>, u64>>()
    };

    let mimir_dense = dense(run_world(RANKS, move |comm| {
        let pts = gen.generate(comm.rank(), RANKS, n_points);
        let pool = MemPool::unlimited("node", 64 * 1024);
        let mut ctx =
            MimirContext::new(comm, pool, IoModel::free(), MimirConfig::default()).unwrap();
        octree_mimir(&mut ctx, &pts, &opts).unwrap().0
    }));

    let mr_dense = dense(run_world(RANKS, move |comm| {
        let pts = gen.generate(comm.rank(), RANKS, n_points);
        let pool = MemPool::unlimited("node", 64 * 1024);
        let store = SpillStore::new_temp("eq-oc", IoModel::free()).unwrap();
        octree_mrmpi(
            comm,
            pool,
            &store,
            MrMpiConfig::with_page_size(128 * 1024),
            &pts,
            &opts,
        )
        .unwrap()
        .0
    }));

    assert_eq!(mimir_dense, mr_dense, "dense octants and counts");
    assert!(!mimir_dense.is_empty());
}

#[test]
fn bfs_equivalence() {
    let graph = Graph500::new(9, 13);
    let all_edges: Vec<(u64, u64)> = (0..RANKS).flat_map(|r| graph.edges(r, RANKS)).collect();

    let mimir_results = run_world(RANKS, move |comm| {
        let edges = graph.edges(comm.rank(), comm.size());
        let root = pick_root(comm, &edges);
        let pool = MemPool::unlimited("node", 64 * 1024);
        let mut ctx =
            MimirContext::new(comm, pool, IoModel::free(), MimirConfig::default()).unwrap();
        let (res, _) = bfs_mimir(&mut ctx, &edges, root, &BfsOptions::default()).unwrap();
        (root, res)
    });
    let mr_results = run_world(RANKS, move |comm| {
        let edges = graph.edges(comm.rank(), comm.size());
        let root = pick_root(comm, &edges);
        let pool = MemPool::unlimited("node", 64 * 1024);
        let store = SpillStore::new_temp("eq-bfs", IoModel::free()).unwrap();
        let (res, _) = bfs_mrmpi(
            comm,
            pool,
            &store,
            MrMpiConfig::with_page_size(128 * 1024),
            &edges,
            root,
            &BfsOptions::default(),
        )
        .unwrap();
        (root, res)
    });

    let root = mimir_results[0].0;
    assert_eq!(root, mr_results[0].0);
    let reference = bfs_serial(&all_edges, root);

    // Both trees are valid; both visit the same set.
    let a: Vec<_> = mimir_results.into_iter().map(|(_, r)| r).collect();
    let b: Vec<_> = mr_results.into_iter().map(|(_, r)| r).collect();
    assert_eq!(a[0].visited_global, b[0].visited_global);
    assert_eq!(
        a.iter().map(|r| r.depth).max(),
        b.iter().map(|r| r.depth).max()
    );
    validate_bfs_tree(a, &all_edges, root, &reference);
    validate_bfs_tree(b, &all_edges, root, &reference);
}
