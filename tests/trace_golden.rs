//! Golden-file test for the observability pipeline: a 4-rank WordCount
//! run with tracing enabled must export a chrome-trace document that
//! parses back as valid JSON with balanced, properly nested spans —
//! one span per phase per rank — plus exchange-round events, and the
//! MR-MPI spill regime must leave spill spans in the trace.

use std::collections::HashMap;
use std::time::Instant;

use mimir::prelude::*;
use mimir_apps::wordcount::{wordcount_mimir, wordcount_mrmpi, WcOptions};
use mimir_datagen::UniformWords;
use mimir_obs::{chrome_trace_string, Json, RankReport, Recorder};

const RANKS: usize = 4;

fn text(rank: usize) -> Vec<u8> {
    UniformWords {
        vocab: 512,
        word_len: 8,
        seed: 7,
    }
    .generate(rank, RANKS, 64 << 10)
}

/// Runs a traced 4-rank Mimir WordCount and returns every rank's report
/// (with events), gathered onto rank 0 exactly like the bench wiring.
fn traced_wordcount_reports() -> Vec<RankReport> {
    let epoch = Instant::now();
    let out = run_world(RANKS, move |comm| {
        let rank = comm.rank();
        mimir_obs::install(Recorder::with_epoch(rank, 16 * 1024, epoch));
        let m = {
            let pool = MemPool::unlimited("trace", 16 * 1024);
            let mut ctx = MimirContext::new(
                comm,
                pool,
                IoModel::free(),
                MimirConfig {
                    // Small partitions force several exchange rounds.
                    comm_buf_size: 4 * 1024,
                    ..MimirConfig::default()
                },
            )
            .unwrap();
            let t = text(rank);
            let (_, m) = wordcount_mimir(&mut ctx, &t, &WcOptions::default()).unwrap();
            m
        };
        let mut report = RankReport::new(rank);
        report.shuffle.kvs_emitted = m.kvs_emitted;
        report.shuffle.rounds = m.exchange_rounds;
        let rec = mimir_obs::take().expect("recorder installed above");
        report.events = rec.events().to_vec();
        report.events_dropped = rec.dropped();
        let gathered = comm.gather(0, report.to_json_string().into_bytes());
        gathered.map(|payloads| {
            payloads
                .iter()
                .map(|b| RankReport::from_json_string(std::str::from_utf8(b).unwrap()).unwrap())
                .collect::<Vec<_>>()
        })
    });
    out.into_iter().flatten().next().expect("rank 0 gathered")
}

#[test]
fn four_rank_wordcount_chrome_trace_is_valid_and_nested() {
    let reports = traced_wordcount_reports();
    assert_eq!(reports.len(), RANKS);
    for r in &reports {
        assert_eq!(r.events_dropped, 0, "ring large enough for this run");
        assert!(!r.events.is_empty(), "rank {} recorded events", r.rank);
    }

    let trace_text = chrome_trace_string(&reports);
    let doc = Json::parse(&trace_text).expect("chrome trace is valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");

    // Split span events by rank (tid), preserving order; the recorder
    // emits in timestamp order per rank.
    let mut by_rank: HashMap<u64, Vec<&Json>> = HashMap::new();
    for e in events {
        if matches!(e.get("ph").and_then(Json::as_str), Some("B") | Some("E")) {
            let tid = e.get("tid").and_then(Json::as_u64).expect("tid");
            by_rank.entry(tid).or_default().push(e);
        }
    }
    assert_eq!(by_rank.len(), RANKS, "every rank has span events");

    for (rank, spans) in &by_rank {
        // B/E events must balance and nest like a call stack: every E
        // closes the innermost open B of the same name.
        let mut stack: Vec<&str> = Vec::new();
        let mut phase_spans: HashMap<&str, usize> = HashMap::new();
        let mut rounds = 0usize;
        let mut last_ts = f64::NEG_INFINITY;
        for e in spans {
            let name = e.get("name").and_then(Json::as_str).unwrap();
            let ts = e.get("ts").and_then(Json::as_f64).unwrap();
            assert!(ts >= last_ts, "rank {rank}: timestamps monotonic");
            last_ts = ts;
            match e.get("ph").and_then(Json::as_str).unwrap() {
                "B" => {
                    stack.push(name);
                    match name {
                        "map" | "aggregate" | "convert" | "reduce" => {
                            *phase_spans.entry(name).or_default() += 1;
                        }
                        "exchange-round" => rounds += 1,
                        _ => {}
                    }
                }
                "E" => {
                    let open = stack
                        .pop()
                        .unwrap_or_else(|| panic!("rank {rank}: E \"{name}\" with no open span"));
                    assert_eq!(open, name, "rank {rank}: spans close innermost-first");
                }
                _ => unreachable!(),
            }
        }
        assert!(stack.is_empty(), "rank {rank}: all spans closed");
        // One span per phase per rank (map/aggregate/convert/reduce).
        for phase in ["map", "aggregate", "convert", "reduce"] {
            assert_eq!(
                phase_spans.get(phase).copied(),
                Some(1),
                "rank {rank}: exactly one {phase} span"
            );
        }
        assert!(rounds >= 1, "rank {rank}: exchange-round spans present");
    }
}

#[test]
fn spilling_mrmpi_run_traces_spill_events() {
    let epoch = Instant::now();
    let spill_counts = run_world(2, move |comm| {
        let rank = comm.rank();
        mimir_obs::install(Recorder::with_epoch(rank, 16 * 1024, epoch));
        let pool = MemPool::unlimited("trace", 4 * 1024);
        let store = SpillStore::new_temp("trace-golden", IoModel::free()).unwrap();
        // Tiny pages on a non-tiny input force the out-of-core path.
        let cfg = MrMpiConfig {
            page_size: 2 * 1024,
            ooc: OocMode::WhenNeeded,
        };
        let t = text(rank);
        let (_, m) = wordcount_mrmpi(comm, pool, store, cfg, &t, false).unwrap();
        assert!(m.spilled, "fixture must reach the spill regime");
        let rec = mimir_obs::take().unwrap();
        let begins = rec
            .events()
            .iter()
            .filter(|e| e.kind == mimir_obs::EventKind::SpillBegin)
            .count();
        let ends = rec
            .events()
            .iter()
            .filter(|e| e.kind == mimir_obs::EventKind::SpillEnd)
            .count();
        (begins, ends)
    });
    for (rank, (begins, ends)) in spill_counts.iter().enumerate() {
        assert!(*begins > 0, "rank {rank}: spill begin events recorded");
        assert!(*ends > 0, "rank {rank}: spill end events recorded");
    }
}
