//! The paper's memory claims at test scale: Mimir's footprint follows the
//! data while MR-MPI's follows its static page sets; Mimir fails cleanly
//! at the budget where MR-MPI spills; each optional optimization lowers
//! the relevant cost.

use mimir::apps::wordcount::{wordcount_mimir, wordcount_mrmpi, WcOptions};
use mimir::prelude::*;

const RANKS: usize = 4;

/// A WC corpus whose vocabulary is far smaller than the corpus — the
/// natural-text regime of the paper's datasets, where grouping structures
/// stay small relative to the KV stream.
fn corpus(rank: usize, total_bytes: usize) -> Vec<u8> {
    UniformWords {
        vocab: 1000,
        word_len: 8,
        seed: 4,
    }
    .generate(rank, RANKS, total_bytes)
}

fn mimir_peak(total_bytes: usize, opts: WcOptions, budget: usize) -> Result<usize, bool> {
    let nodes = NodeMap::new(RANKS, RANKS, 16 * 1024, budget).unwrap();
    let nodes2 = nodes.clone();
    run_world_result(RANKS, move |comm| {
        let text = corpus(comm.rank(), total_bytes);
        let pool = nodes2.pool_for_rank(comm.rank());
        let mut ctx = MimirContext::new(
            comm,
            pool,
            IoModel::free(),
            MimirConfig {
                comm_buf_size: 16 * 1024,
                ..MimirConfig::default()
            },
        )
        .unwrap();
        wordcount_mimir(&mut ctx, &text, &opts)
            .map(|_| ())
            .map_err(|e| e.is_oom())
    })
    .map_err(|e| matches!(e, WorldError::Aborted(true)))?;
    Ok(nodes.max_node_peak())
}

fn mrmpi_peak(total_bytes: usize, page_size: usize, budget: usize) -> (usize, bool) {
    let nodes = NodeMap::new(RANKS, RANKS, 16 * 1024, budget).unwrap();
    let nodes2 = nodes.clone();
    let results = run_world(RANKS, move |comm| {
        let text = corpus(comm.rank(), total_bytes);
        let pool = nodes2.pool_for_rank(comm.rank());
        let store = SpillStore::new_temp("mem-wc", IoModel::free()).unwrap();
        let (_, m) = wordcount_mrmpi(
            comm,
            pool,
            store,
            MrMpiConfig::with_page_size(page_size),
            &text,
            false,
        )
        .unwrap();
        m.spilled
    });
    (nodes.max_node_peak(), results.into_iter().any(|s| s))
}

#[test]
fn mimir_footprint_tracks_data_mrmpi_footprint_is_static() {
    let budget = 256 << 20;
    let m_small = mimir_peak(64 * 1024, WcOptions::default(), budget).unwrap();
    let m_large = mimir_peak(512 * 1024, WcOptions::default(), budget).unwrap();
    assert!(
        m_large > m_small * 2,
        "Mimir peak should grow with data: {m_small} -> {m_large}"
    );

    let (r_small, s1) = mrmpi_peak(64 * 1024, 64 * 1024, budget);
    let (r_large, s2) = mrmpi_peak(512 * 1024, 64 * 1024, budget);
    assert_eq!(r_small, r_large, "MR-MPI page sets are static");
    assert!(!s1, "small dataset must fit MR-MPI's pages");
    assert!(s2, "large dataset must overflow MR-MPI's pages");
}

#[test]
fn mimir_beats_mrmpi_on_small_inputs() {
    // Figures 8/9: "Mimir always uses less memory than MR-MPI does …
    // at least 25% less".
    let budget = 256 << 20;
    let mimir = mimir_peak(128 * 1024, WcOptions::default(), budget).unwrap();
    let (mrmpi, _) = mrmpi_peak(128 * 1024, 64 * 1024, budget);
    assert!(
        (mimir as f64) < 0.75 * mrmpi as f64,
        "Mimir {mimir} vs MR-MPI {mrmpi}"
    );
}

#[test]
fn mimir_fails_cleanly_at_the_node_budget() {
    // A dataset whose intermediate KVs exceed the node budget: Mimir
    // reports OOM (it does not spill), per the paper's missing points.
    let tight_budget = 1024 * 1024; // comm buffers alone are 128 KiB
    let res = mimir_peak(1 << 20, WcOptions::default(), tight_budget);
    assert_eq!(res, Err(true), "expected a clean OOM");
    // The same dataset succeeds with the optimization stack (pr avoids
    // the KVC+KMVC peak).
    let res = mimir_peak(1 << 20, WcOptions::all(), tight_budget);
    assert!(res.is_ok(), "optimizations should fit the budget: {res:?}");
}

#[test]
fn optimization_stack_lowers_peak_in_order() {
    // Figure 13's staircase: base ≥ hint ≥ hint+pr (each strictly lower
    // for WordCount).
    let budget = 256 << 20;
    let base = mimir_peak(256 * 1024, WcOptions::default(), budget).unwrap();
    let hint = mimir_peak(
        256 * 1024,
        WcOptions {
            hint: true,
            ..WcOptions::default()
        },
        budget,
    )
    .unwrap();
    let hint_pr = mimir_peak(
        256 * 1024,
        WcOptions {
            hint: true,
            partial_reduce: true,
            ..WcOptions::default()
        },
        budget,
    )
    .unwrap();
    assert!(hint < base, "hint {hint} vs base {base}");
    assert!(hint_pr < hint, "hint+pr {hint_pr} vs hint {hint}");
}

#[test]
fn spilling_charges_the_io_model_heavily() {
    // Figure 1's mechanism: once MR-MPI leaves memory, the modeled PFS
    // time dwarfs compute time.
    let io = IoModel::new(IoModelConfig::lustre_scaled()).unwrap();
    let io2 = io.clone();
    run_world(RANKS, move |comm| {
        let text = corpus(comm.rank(), 512 * 1024);
        let pool = MemPool::unlimited("node", 16 * 1024);
        let store = SpillStore::new_temp("spill-io", io2.clone()).unwrap();
        let (_, m) = wordcount_mrmpi(
            comm,
            pool,
            store,
            MrMpiConfig::with_page_size(16 * 1024),
            &text,
            false,
        )
        .unwrap();
        assert!(m.spilled);
    });
    let modeled = io.modeled_time();
    assert!(
        modeled > std::time::Duration::from_millis(200),
        "spills should cost dearly on the modeled PFS: {modeled:?}"
    );
}

#[test]
fn communication_buffers_bound_mimir_recv_memory() {
    // Paper Section III-B: the receive buffer never needs to be larger
    // than the send buffer, even under total key skew.
    let nodes = NodeMap::new(RANKS, RANKS, 16 * 1024, 64 << 20).unwrap();
    let nodes2 = nodes.clone();
    run_world(RANKS, move |comm| {
        let pool = nodes2.pool_for_rank(comm.rank());
        let mut ctx = MimirContext::new(
            comm,
            pool,
            IoModel::free(),
            MimirConfig {
                comm_buf_size: 8 * 1024,
                ..MimirConfig::default()
            },
        )
        .unwrap();
        // Every rank sends everything to ONE key's owner.
        let out = ctx
            .job()
            .kv_meta(KvMeta::cstr_key_u64_val())
            .map_shuffle(&mut |em| {
                for i in 0..5000u64 {
                    em.emit(b"only-key", &i.to_le_bytes())?;
                }
                Ok(())
            })
            .unwrap();
        let n = out.output.len();
        // The owner holds all 4×5000 KVs; others none.
        assert!(n == 0 || n == 4 * 5000);
    });
}
