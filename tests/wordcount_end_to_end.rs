//! End-to-end WordCount through the full stack: corpus materialized on
//! the simulated parallel file system, record-aligned splits read per
//! rank, counts validated against the serial reference, across node
//! layouts and buffer sizes.

use mimir::apps::validate::merge_counts;
use mimir::apps::wordcount::{wordcount_mimir, wordcount_serial, WcOptions};
use mimir::prelude::*;

fn corpus_file(total_bytes: usize) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("mimir-wc-e2e-{}-{total_bytes}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("corpus.txt");
    let g = WikipediaWords::new(3);
    mimir::datagen::write_corpus(&path, 4, |r, n| g.generate(r, n, total_bytes)).unwrap();
    path
}

#[test]
fn file_based_wordcount_matches_serial_across_layouts() {
    let path = corpus_file(200_000);
    let content = std::fs::read(&path).unwrap();
    let expected = wordcount_serial(&[&content]);

    for (ranks, ranks_per_node) in [(1, 1), (4, 4), (6, 2), (8, 3)] {
        let nodes = NodeMap::new(ranks, ranks_per_node, 64 * 1024, 64 << 20).unwrap();
        let path2 = path.clone();
        let per_rank = run_world(ranks, move |comm| {
            let pool = nodes.pool_for_rank(comm.rank());
            let mut ctx =
                MimirContext::new(comm, pool, IoModel::free(), MimirConfig::default()).unwrap();
            let text = ctx.read_text_split(&path2).unwrap();
            wordcount_mimir(&mut ctx, &text, &WcOptions::all())
                .unwrap()
                .0
        });
        let got = merge_counts(per_rank);
        assert_eq!(got, expected, "ranks={ranks} rpn={ranks_per_node}");
    }
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

#[test]
fn tiny_comm_buffers_force_many_rounds_same_answer() {
    let path = corpus_file(100_000);
    let content = std::fs::read(&path).unwrap();
    let expected = wordcount_serial(&[&content]);

    let path2 = path.clone();
    let per_rank = run_world(4, move |comm| {
        let pool = MemPool::unlimited("node", 64 * 1024);
        // 1 KiB comm buffer → 256 B partitions → dozens of rounds.
        let cfg = MimirConfig {
            comm_buf_size: 1024,
            ..MimirConfig::default()
        };
        let mut ctx = MimirContext::new(comm, pool, IoModel::free(), cfg).unwrap();
        let text = ctx.read_text_split(&path2).unwrap();
        let (counts, metrics) = wordcount_mimir(&mut ctx, &text, &WcOptions::default()).unwrap();
        (counts, metrics.exchange_rounds)
    });
    let rounds = per_rank[0].1;
    assert!(rounds > 10, "expected many rounds, got {rounds}");
    let got = merge_counts(per_rank.into_iter().map(|(c, _)| c).collect());
    assert_eq!(got, expected);
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

#[test]
fn input_reads_are_charged_to_the_io_model() {
    let path = corpus_file(50_000);
    let io = IoModel::new(IoModelConfig::lustre_scaled()).unwrap();
    let io2 = io.clone();
    let path2 = path.clone();
    run_world(2, move |comm| {
        let pool = MemPool::unlimited("node", 64 * 1024);
        let ctx = MimirContext::new(comm, pool, io2.clone(), MimirConfig::default()).unwrap();
        let _ = ctx.read_text_split(&path2).unwrap();
    });
    let stats = io.stats();
    assert!(stats.bytes_read >= 50_000, "read {} B", stats.bytes_read);
    assert!(io.modeled_time() > std::time::Duration::ZERO);
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

#[test]
fn empty_input_produces_empty_output() {
    let per_rank = run_world(3, |comm| {
        let pool = MemPool::unlimited("node", 64 * 1024);
        let mut ctx =
            MimirContext::new(comm, pool, IoModel::free(), MimirConfig::default()).unwrap();
        wordcount_mimir(&mut ctx, b"", &WcOptions::default())
            .unwrap()
            .0
    });
    assert!(per_rank.iter().all(Vec::is_empty));
}

#[test]
fn single_word_corpus() {
    let per_rank = run_world(4, |comm| {
        let pool = MemPool::unlimited("node", 64 * 1024);
        let mut ctx =
            MimirContext::new(comm, pool, IoModel::free(), MimirConfig::default()).unwrap();
        let text = b"same same same\nsame\n".repeat(100);
        wordcount_mimir(&mut ctx, &text, &WcOptions::all())
            .unwrap()
            .0
    });
    let got = merge_counts(per_rank);
    assert_eq!(got.len(), 1);
    assert_eq!(got[&b"same".to_vec()], 4 * 400);
}

#[test]
fn output_written_to_part_files() {
    let dir = std::env::temp_dir().join(format!("mimir-wc-out-{}", std::process::id()));
    let dir2 = dir.clone();
    let io = IoModel::new(IoModelConfig::lustre_scaled()).unwrap();
    let io2 = io.clone();
    run_world(3, move |comm| {
        let pool = MemPool::unlimited("node", 64 * 1024);
        let mut ctx = MimirContext::new(comm, pool, io2.clone(), MimirConfig::default()).unwrap();
        let text = b"red green blue red\nblue red\n".repeat(10);
        let (_, _) = {
            // Use the raw job API so the output container is available.
            let meta = KvMeta::cstr_key_u64_val();
            let out = ctx
                .job()
                .kv_meta(meta)
                .out_meta(meta)
                .map_partial_reduce(
                    &mut |em| {
                        for line in mimir::io::LineReader::new(&text) {
                            for w in mimir::io::words(line) {
                                em.emit(w, &1u64.to_le_bytes())?;
                            }
                        }
                        Ok(())
                    },
                    Box::new(|_k, a, b, o| {
                        let s = u64::from_le_bytes(a.try_into().unwrap())
                            + u64::from_le_bytes(b.try_into().unwrap());
                        o.extend_from_slice(&s.to_le_bytes());
                    }),
                )
                .unwrap();
            let path = ctx
                .write_text_output(out.output, &dir2, |k, v, line| {
                    line.push_str(&String::from_utf8_lossy(k));
                    line.push('\t');
                    line.push_str(&u64::from_le_bytes(v.try_into().unwrap()).to_string());
                })
                .unwrap();
            assert!(path.exists());
            ((), ())
        };
    });
    // Merge all part files and verify totals.
    let mut counts = std::collections::HashMap::new();
    for entry in std::fs::read_dir(&dir).unwrap() {
        let content = std::fs::read_to_string(entry.unwrap().path()).unwrap();
        for line in content.lines() {
            let (word, count) = line.split_once('\t').unwrap();
            counts.insert(word.to_string(), count.parse::<u64>().unwrap());
        }
    }
    assert_eq!(counts["red"], 3 * 30);
    assert_eq!(counts["green"], 3 * 10);
    assert_eq!(counts["blue"], 3 * 20);
    assert!(
        io.stats().bytes_written > 0,
        "output charged to the PFS model"
    );
    std::fs::remove_dir_all(&dir).ok();
}
