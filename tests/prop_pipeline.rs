//! Property-based tests over the full pipeline: for arbitrary KV
//! multisets and configurations, the frameworks must agree with a
//! reference grouping, and the optimizations must be semantics-preserving.

use std::collections::HashMap;

use mimir::prelude::*;
use mimir_core::typed;
use proptest::prelude::*;

/// Reference: group-by-key and sum, single-threaded.
fn reference_sums(kvs: &[(Vec<u8>, u64)]) -> HashMap<Vec<u8>, u64> {
    let mut out: HashMap<Vec<u8>, u64> = HashMap::new();
    for (k, v) in kvs {
        let e = out.entry(k.clone()).or_insert(0);
        *e = e.wrapping_add(*v);
    }
    out
}

fn sum_combine(_k: &[u8], a: &[u8], b: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(&typed::enc_u64(typed::dec_u64(a).wrapping_add(typed::dec_u64(b))));
}

/// Runs a sum-by-key job over `kvs` split across `ranks`, with the given
/// optimization combination, and returns the merged output.
fn run_sum_job(
    kvs: Vec<(Vec<u8>, u64)>,
    ranks: usize,
    pr: bool,
    cps: bool,
    comm_buf: usize,
) -> HashMap<Vec<u8>, u64> {
    let shared = std::sync::Arc::new(kvs);
    let results = run_world(ranks, move |comm| {
        let rank = comm.rank();
        let pool = MemPool::unlimited("node", 16 * 1024);
        let mut ctx = MimirContext::new(
            comm,
            pool,
            IoModel::free(),
            MimirConfig {
                comm_buf_size: comm_buf,
            },
        )
        .unwrap();
        let meta = KvMeta {
            key: mimir_core::LenHint::Var,
            val: mimir_core::LenHint::Fixed(8),
        };
        let my_kvs = shared.clone();
        let mut map = move |em: &mut dyn mimir_core::Emitter| {
            for (i, (k, v)) in my_kvs.iter().enumerate() {
                if i % ranks == rank {
                    em.emit(k, &typed::enc_u64(*v))?;
                }
            }
            Ok(())
        };
        let job = ctx.job().kv_meta(meta).out_meta(meta);
        let out = match (pr, cps) {
            (true, true) => job
                .map_partial_reduce_compress(&mut map, Box::new(sum_combine), Box::new(sum_combine))
                .unwrap(),
            (true, false) => job
                .map_partial_reduce(&mut map, Box::new(sum_combine))
                .unwrap(),
            (false, true) => job
                .map_reduce_compress(&mut map, Box::new(sum_combine), &mut |k, vals, em| {
                    let total = vals.map(typed::dec_u64).fold(0u64, u64::wrapping_add);
                    em.emit(k, &typed::enc_u64(total))
                })
                .unwrap(),
            (false, false) => job
                .map_reduce(&mut map, &mut |k, vals, em| {
                    let total = vals.map(typed::dec_u64).fold(0u64, u64::wrapping_add);
                    em.emit(k, &typed::enc_u64(total))
                })
                .unwrap(),
        };
        let mut local = Vec::new();
        out.output
            .drain(|k, v| {
                local.push((k.to_vec(), typed::dec_u64(v)));
                Ok(())
            })
            .unwrap();
        local
    });
    let mut merged = HashMap::new();
    for rank_out in results {
        for (k, v) in rank_out {
            assert!(merged.insert(k, v).is_none(), "key on two ranks");
        }
    }
    merged
}

/// Strategy: small sets of short byte keys (collision-heavy) with values.
fn kv_strategy() -> impl Strategy<Value = Vec<(Vec<u8>, u64)>> {
    prop::collection::vec(
        (
            prop::collection::vec(proptest::num::u8::ANY, 0..12),
            proptest::num::u64::ANY,
        ),
        0..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sum_by_key_matches_reference(kvs in kv_strategy(), ranks in 1usize..5) {
        let expected = reference_sums(&kvs);
        let got = run_sum_job(kvs, ranks, false, false, 64 * 1024);
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn optimizations_preserve_semantics(
        kvs in kv_strategy(),
        ranks in 1usize..4,
        pr in proptest::bool::ANY,
        cps in proptest::bool::ANY,
    ) {
        let expected = reference_sums(&kvs);
        let got = run_sum_job(kvs, ranks, pr, cps, 64 * 1024);
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn tiny_comm_buffers_preserve_semantics(kvs in kv_strategy(), ranks in 1usize..4) {
        let expected = reference_sums(&kvs);
        // 96-byte partitions force an exchange round every couple of KVs.
        let got = run_sum_job(kvs, ranks, false, false, 96 * ranks);
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn splitter_partitions_every_record_once(
        records in prop::collection::vec(
            prop::collection::vec((1u8..=255).prop_filter("no newline", |&b| b != b'\n'), 0..20),
            0..50,
        ),
        parts in 1usize..8,
    ) {
        let mut data = Vec::new();
        for r in &records {
            data.extend_from_slice(r);
            data.push(b'\n');
        }
        let ranges = mimir::io::splitter::split_records(&data, parts, b'\n');
        let mut collected: Vec<Vec<u8>> = Vec::new();
        for r in ranges {
            for line in data[r].split(|&b| b == b'\n') {
                if !line.is_empty() {
                    collected.push(line.to_vec());
                }
            }
        }
        let expected: Vec<Vec<u8>> =
            records.into_iter().filter(|r| !r.is_empty()).collect();
        prop_assert_eq!(collected, expected);
    }

    #[test]
    fn kv_codec_roundtrips_any_hint(
        kvs in prop::collection::vec(
            (prop::collection::vec(1u8..=255, 0..16), prop::collection::vec(proptest::num::u8::ANY, 0..16)),
            0..40,
        ),
    ) {
        use mimir_core::{encode_push, KvDecoder, LenHint};
        // CStr keys: generated keys exclude NUL by construction.
        for meta in [
            KvMeta::var(),
            KvMeta { key: LenHint::CStr, val: mimir_core::LenHint::Var },
        ] {
            let mut buf = Vec::new();
            for (k, v) in &kvs {
                encode_push(meta, k, v, &mut buf);
            }
            let decoded: Vec<(Vec<u8>, Vec<u8>)> = KvDecoder::new(meta, &buf)
                .map(|(k, v)| (k.to_vec(), v.to_vec()))
                .collect();
            let expected: Vec<(Vec<u8>, Vec<u8>)> = kvs.clone();
            prop_assert_eq!(decoded, expected);
        }
    }
}
