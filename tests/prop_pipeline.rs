//! Randomized tests over the full pipeline: for arbitrary KV multisets
//! and configurations, the frameworks must agree with a reference
//! grouping, and the optimizations must be semantics-preserving. Driven
//! by a seeded PRNG so failures replay deterministically.

use std::collections::HashMap;

use mimir::prelude::*;
use mimir_core::typed;
use mimir_datagen::rank_rng;

/// Reference: group-by-key and sum, single-threaded.
fn reference_sums(kvs: &[(Vec<u8>, u64)]) -> HashMap<Vec<u8>, u64> {
    let mut out: HashMap<Vec<u8>, u64> = HashMap::new();
    for (k, v) in kvs {
        let e = out.entry(k.clone()).or_insert(0);
        *e = e.wrapping_add(*v);
    }
    out
}

fn sum_combine(_k: &[u8], a: &[u8], b: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(&typed::enc_u64(
        typed::dec_u64(a).wrapping_add(typed::dec_u64(b)),
    ));
}

/// Random multiset: short byte keys (collision-heavy) with u64 values.
fn gen_kvs(seed: u64, case: usize) -> Vec<(Vec<u8>, u64)> {
    let mut rng = rank_rng(seed, case);
    (0..rng.gen_range(0..200))
        .map(|_| {
            let k: Vec<u8> = (0..rng.gen_range(0..12))
                .map(|_| rng.gen_range(0..256) as u8)
                .collect();
            (k, rng.next_u64())
        })
        .collect()
}

/// Runs a sum-by-key job over `kvs` split across `ranks`, with the given
/// optimization combination, and returns the merged output.
fn run_sum_job(
    kvs: Vec<(Vec<u8>, u64)>,
    ranks: usize,
    pr: bool,
    cps: bool,
    comm_buf: usize,
) -> HashMap<Vec<u8>, u64> {
    let shared = std::sync::Arc::new(kvs);
    let results = run_world(ranks, move |comm| {
        let rank = comm.rank();
        let pool = MemPool::unlimited("node", 16 * 1024);
        let mut ctx = MimirContext::new(
            comm,
            pool,
            IoModel::free(),
            MimirConfig {
                comm_buf_size: comm_buf,
                ..MimirConfig::default()
            },
        )
        .unwrap();
        let meta = KvMeta {
            key: mimir_core::LenHint::Var,
            val: mimir_core::LenHint::Fixed(8),
        };
        let my_kvs = shared.clone();
        let mut map = move |em: &mut dyn mimir_core::Emitter| {
            for (i, (k, v)) in my_kvs.iter().enumerate() {
                if i % ranks == rank {
                    em.emit(k, &typed::enc_u64(*v))?;
                }
            }
            Ok(())
        };
        let job = ctx.job().kv_meta(meta).out_meta(meta);
        let out = match (pr, cps) {
            (true, true) => job
                .map_partial_reduce_compress(&mut map, Box::new(sum_combine), Box::new(sum_combine))
                .unwrap(),
            (true, false) => job
                .map_partial_reduce(&mut map, Box::new(sum_combine))
                .unwrap(),
            (false, true) => job
                .map_reduce_compress(&mut map, Box::new(sum_combine), &mut |k, vals, em| {
                    let total = vals.map(typed::dec_u64).fold(0u64, u64::wrapping_add);
                    em.emit(k, &typed::enc_u64(total))
                })
                .unwrap(),
            (false, false) => job
                .map_reduce(&mut map, &mut |k, vals, em| {
                    let total = vals.map(typed::dec_u64).fold(0u64, u64::wrapping_add);
                    em.emit(k, &typed::enc_u64(total))
                })
                .unwrap(),
        };
        let mut local = Vec::new();
        out.output
            .drain(|k, v| {
                local.push((k.to_vec(), typed::dec_u64(v)));
                Ok(())
            })
            .unwrap();
        local
    });
    let mut merged = HashMap::new();
    for rank_out in results {
        for (k, v) in rank_out {
            assert!(merged.insert(k, v).is_none(), "key on two ranks");
        }
    }
    merged
}

#[test]
fn sum_by_key_matches_reference() {
    for case in 0..24usize {
        let kvs = gen_kvs(0x5100_0001, case);
        let ranks = 1 + case % 4;
        let expected = reference_sums(&kvs);
        let got = run_sum_job(kvs, ranks, false, false, 64 * 1024);
        assert_eq!(got, expected, "case {case}, ranks {ranks}");
    }
}

#[test]
fn optimizations_preserve_semantics() {
    for case in 0..24usize {
        let kvs = gen_kvs(0x5100_0002, case);
        let ranks = 1 + case % 3;
        let (pr, cps) = (case % 4 / 2 == 1, case % 2 == 1);
        let expected = reference_sums(&kvs);
        let got = run_sum_job(kvs, ranks, pr, cps, 64 * 1024);
        assert_eq!(got, expected, "case {case}, pr={pr}, cps={cps}");
    }
}

#[test]
fn tiny_comm_buffers_preserve_semantics() {
    for case in 0..24usize {
        let kvs = gen_kvs(0x5100_0003, case);
        let ranks = 1 + case % 3;
        let expected = reference_sums(&kvs);
        // 96-byte partitions force an exchange round every couple of KVs.
        let got = run_sum_job(kvs, ranks, false, false, 96 * ranks);
        assert_eq!(got, expected, "case {case}, ranks {ranks}");
    }
}

#[test]
fn splitter_partitions_every_record_once() {
    for case in 0..24usize {
        let mut rng = rank_rng(0x5100_0004, case);
        let records: Vec<Vec<u8>> = (0..rng.gen_range(0..50))
            .map(|_| {
                (0..rng.gen_range(0..20))
                    .map(|_| {
                        // Any byte except NUL and the record separator.
                        loop {
                            let b = 1 + rng.gen_range(0..255) as u8;
                            if b != b'\n' {
                                return b;
                            }
                        }
                    })
                    .collect()
            })
            .collect();
        let parts = 1 + rng.gen_range(0..7);
        let mut data = Vec::new();
        for r in &records {
            data.extend_from_slice(r);
            data.push(b'\n');
        }
        let ranges = mimir::io::splitter::split_records(&data, parts, b'\n');
        let mut collected: Vec<Vec<u8>> = Vec::new();
        for r in ranges {
            for line in data[r].split(|&b| b == b'\n') {
                if !line.is_empty() {
                    collected.push(line.to_vec());
                }
            }
        }
        let expected: Vec<Vec<u8>> = records.into_iter().filter(|r| !r.is_empty()).collect();
        assert_eq!(collected, expected, "case {case}, parts {parts}");
    }
}

#[test]
fn kv_codec_roundtrips_any_hint() {
    use mimir_core::{encode_push, KvDecoder, LenHint};
    for case in 0..24usize {
        let mut rng = rank_rng(0x5100_0005, case);
        // CStr keys: generated keys exclude NUL by construction.
        let kvs: Vec<(Vec<u8>, Vec<u8>)> = (0..rng.gen_range(0..40))
            .map(|_| {
                let k: Vec<u8> = (0..rng.gen_range(0..16))
                    .map(|_| 1 + rng.gen_range(0..255) as u8)
                    .collect();
                let v: Vec<u8> = (0..rng.gen_range(0..16))
                    .map(|_| rng.gen_range(0..256) as u8)
                    .collect();
                (k, v)
            })
            .collect();
        for meta in [
            KvMeta::var(),
            KvMeta {
                key: LenHint::CStr,
                val: mimir_core::LenHint::Var,
            },
        ] {
            let mut buf = Vec::new();
            for (k, v) in &kvs {
                encode_push(meta, k, v, &mut buf);
            }
            let decoded: Vec<(Vec<u8>, Vec<u8>)> = KvDecoder::new(meta, &buf)
                .map(|(k, v)| (k.to_vec(), v.to_vec()))
                .collect();
            assert_eq!(decoded, kvs, "case {case}");
        }
    }
}
