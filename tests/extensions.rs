//! End-to-end tests for the extension features beyond the paper's core:
//! custom partitioners and out-of-core staging of job outputs.

use mimir::prelude::*;
use mimir_core::{typed, Partitioner, StagedKvs};

#[test]
fn block_partitioner_gives_contiguous_ownership() {
    let n_keys = 1000u64;
    let out = run_world(4, move |comm| {
        let pool = MemPool::unlimited("node", 64 * 1024);
        let mut ctx =
            MimirContext::new(comm, pool, IoModel::free(), MimirConfig::default()).unwrap();
        let res = ctx
            .job()
            .kv_meta(KvMeta::fixed(8, 8))
            .partitioner(Partitioner::u64_block(n_keys))
            .map_shuffle(&mut |em| {
                for v in 0..n_keys {
                    em.emit(&typed::enc_u64(v), &typed::enc_u64(v * 2))?;
                }
                Ok(())
            })
            .unwrap();
        let mut keys = Vec::new();
        res.output
            .drain(|k, _| {
                keys.push(typed::dec_u64(k));
                Ok(())
            })
            .unwrap();
        keys.sort_unstable();
        keys
    });
    // Each rank owns one contiguous block; together they cover 0..1000
    // exactly 4 times (4 emitting ranks).
    let mut all = Vec::new();
    for (rank, keys) in out.iter().enumerate() {
        if keys.is_empty() {
            continue;
        }
        let lo = keys[0];
        let hi = *keys.last().unwrap();
        let distinct: std::collections::BTreeSet<u64> = keys.iter().copied().collect();
        assert_eq!(
            distinct.len() as u64,
            hi - lo + 1,
            "rank {rank} block is contiguous"
        );
        all.extend(distinct);
    }
    all.sort_unstable();
    assert_eq!(all, (0..n_keys).collect::<Vec<_>>());
    assert_eq!(
        out.iter().map(|k| k.len()).sum::<usize>() as u64,
        4 * n_keys
    );
}

#[test]
fn custom_partitioner_reduces_on_chosen_rank() {
    // Everything to rank 1, regardless of key.
    let out = run_world(3, |comm| {
        let pool = MemPool::unlimited("node", 64 * 1024);
        let mut ctx =
            MimirContext::new(comm, pool, IoModel::free(), MimirConfig::default()).unwrap();
        let res = ctx
            .job()
            .partitioner(Partitioner::custom("to-rank-1", |_k, _n| 1))
            .map_partial_reduce(
                &mut |em| {
                    for i in 0..100u64 {
                        em.emit(format!("k{}", i % 10).as_bytes(), &typed::enc_u64(1))?;
                    }
                    Ok(())
                },
                Box::new(|_k, a, b, out| {
                    out.extend_from_slice(&typed::enc_u64(typed::dec_u64(a) + typed::dec_u64(b)));
                }),
            )
            .unwrap();
        res.output.len()
    });
    assert_eq!(out, vec![0, 10, 0]);
}

#[test]
fn staged_output_survives_between_stages() {
    let counts = run_world(4, |comm| {
        let pool = MemPool::new("node", 64 * 1024, 32 << 20).unwrap();
        let io = IoModel::free();
        let store = SpillStore::new_temp("stage-e2e", io.clone()).unwrap();
        let mut ctx = MimirContext::new(comm, pool.clone(), io, MimirConfig::default()).unwrap();

        // Stage 1: per-key counts.
        let meta = KvMeta::cstr_key_u64_val();
        let stage1 = ctx
            .job()
            .kv_meta(meta)
            .out_meta(meta)
            .map_partial_reduce(
                &mut |em| {
                    for i in 0..2000u64 {
                        em.emit(format!("word{}", i % 50).as_bytes(), &typed::enc_u64(1))?;
                    }
                    Ok(())
                },
                Box::new(|_k, a, b, out| {
                    out.extend_from_slice(&typed::enc_u64(typed::dec_u64(a) + typed::dec_u64(b)));
                }),
            )
            .unwrap();

        // Park it; memory for the output must be released.
        let used_before_park = pool.used();
        let staged = StagedKvs::park(stage1.output, &store).unwrap();
        assert!(pool.used() <= used_before_park);

        // ... an unrelated memory-hungry stage runs here ...
        let _scratch = pool.try_reserve(16 << 20).unwrap();

        // Stage 2: restore and post-process (histogram of counts).
        let mut restored = staged.restore(&pool).unwrap();
        let mut histogram: std::collections::BTreeMap<u64, u64> = Default::default();
        restored
            .drain_all(|_k, v| {
                *histogram.entry(typed::dec_u64(v)).or_default() += 1;
                Ok(())
            })
            .unwrap();
        histogram
    });
    // 50 words × 40 occurrences × 4 ranks = each word counted 160 total,
    // distributed across owners; every count bucket must be 160.
    let mut total_words = 0;
    for rank_hist in counts {
        for (count, n_words) in rank_hist {
            assert_eq!(count, 160);
            total_words += n_words;
        }
    }
    assert_eq!(total_words, 50);
}

#[test]
fn staging_keeps_hints() {
    run_world(1, |comm| {
        let pool = MemPool::unlimited("node", 64 * 1024);
        let io = IoModel::free();
        let store = SpillStore::new_temp("stage-hints", io.clone()).unwrap();
        let mut ctx = MimirContext::new(comm, pool.clone(), io, MimirConfig::default()).unwrap();
        let meta = KvMeta::fixed(8, 16);
        let out = ctx
            .job()
            .kv_meta(meta)
            .map_shuffle(&mut |em| {
                for i in 0..64u64 {
                    em.emit(&typed::enc_u64(i), &typed::enc_u64_pair(i, i * i))?;
                }
                Ok(())
            })
            .unwrap();
        let staged = StagedKvs::park(out.output, &store).unwrap();
        assert_eq!(staged.meta(), meta);
        let restored = staged.restore(&pool).unwrap();
        let mut ok = 0;
        restored
            .drain(|k, v| {
                let i = typed::dec_u64(k);
                assert_eq!(typed::dec_u64_pair(v), (i, i * i));
                ok += 1;
                Ok(())
            })
            .unwrap();
        assert_eq!(ok, 64);
    });
}
