//! End-to-end BFS on Graph500 Kronecker graphs: tree validity, depth
//! consistency with the serial reference, both optimization flags.

use mimir::apps::bfs::{bfs_mimir, bfs_serial, pick_root, BfsOptions};
use mimir::apps::validate::validate_bfs_tree;
use mimir::prelude::*;

fn run_bfs(
    scale: u32,
    ranks: usize,
    opts: BfsOptions,
) -> (u64, Vec<mimir::apps::bfs::BfsResult>, Vec<(u64, u64)>) {
    let graph = Graph500::new(scale, 17);
    let all_edges: Vec<(u64, u64)> = (0..ranks).flat_map(|r| graph.edges(r, ranks)).collect();
    let nodes = NodeMap::new(ranks, 2.min(ranks), 64 * 1024, 256 << 20).unwrap();
    let results = run_world(ranks, move |comm| {
        let edges = graph.edges(comm.rank(), comm.size());
        let root = pick_root(comm, &edges);
        let pool = nodes.pool_for_rank(comm.rank());
        let mut ctx =
            MimirContext::new(comm, pool, IoModel::free(), MimirConfig::default()).unwrap();
        let (res, _) = bfs_mimir(&mut ctx, &edges, root, &opts).unwrap();
        (root, res)
    });
    let root = results[0].0;
    (
        root,
        results.into_iter().map(|(_, r)| r).collect(),
        all_edges,
    )
}

#[test]
fn tree_is_valid_and_depth_matches_reference() {
    for opts in [
        BfsOptions::default(),
        BfsOptions {
            hint: true,
            compress: false,
        },
        BfsOptions::all(),
    ] {
        let (root, per_rank, all_edges) = run_bfs(10, 4, opts);
        let reference = bfs_serial(&all_edges, root);
        let visited = per_rank[0].visited_global;
        assert_eq!(visited as usize, reference.len(), "{opts:?}");
        let max_depth_result = per_rank.iter().map(|r| r.depth).max().unwrap();
        let eccentricity = *reference.values().max().unwrap();
        assert_eq!(max_depth_result, eccentricity, "{opts:?}");
        validate_bfs_tree(per_rank, &all_edges, root, &reference);
    }
}

#[test]
fn works_on_many_ranks() {
    let (root, per_rank, all_edges) = run_bfs(9, 9, BfsOptions::all());
    let reference = bfs_serial(&all_edges, root);
    validate_bfs_tree(per_rank, &all_edges, root, &reference);
}

#[test]
fn single_rank_traversal() {
    let (root, per_rank, all_edges) = run_bfs(8, 1, BfsOptions::default());
    let reference = bfs_serial(&all_edges, root);
    assert_eq!(per_rank[0].parents.len(), reference.len());
    validate_bfs_tree(per_rank, &all_edges, root, &reference);
}

#[test]
fn disconnected_component_stays_unvisited() {
    // A path graph 0-1-2 plus an isolated edge 10-11: BFS from 0 must
    // not reach 10/11.
    let results = run_world(2, |comm| {
        let edges: Vec<(u64, u64)> = if comm.rank() == 0 {
            vec![(0, 1), (1, 2)]
        } else {
            vec![(10, 11)]
        };
        let pool = MemPool::unlimited("node", 64 * 1024);
        let mut ctx =
            MimirContext::new(comm, pool, IoModel::free(), MimirConfig::default()).unwrap();
        let (res, _) = bfs_mimir(&mut ctx, &edges, 0, &BfsOptions::default()).unwrap();
        res
    });
    let visited = results[0].visited_global;
    assert_eq!(visited, 3);
    let all: std::collections::HashMap<u64, u64> = results
        .into_iter()
        .flat_map(|r| r.parents.into_iter())
        .collect();
    assert!(!all.contains_key(&10));
    assert!(!all.contains_key(&11));
    assert_eq!(all[&0], 0);
}

#[test]
fn compress_reduces_traversal_kv_volume_on_dense_graphs() {
    // Dense graph: many duplicate (neighbor, parent) proposals per level,
    // which is exactly what traversal-side compression merges.
    let kv_bytes_of = |cps: bool| {
        let graph = Graph500::new(9, 3);
        let opts = BfsOptions {
            hint: true,
            compress: cps,
        };
        let runs = run_world(4, move |comm| {
            let edges = graph.edges(comm.rank(), comm.size());
            let root = pick_root(comm, &edges);
            let pool = MemPool::unlimited("node", 64 * 1024);
            let mut ctx =
                MimirContext::new(comm, pool, IoModel::free(), MimirConfig::default()).unwrap();
            bfs_mimir(&mut ctx, &edges, root, &opts).unwrap().1
        });
        runs.iter().map(|m| m.kv_bytes).sum::<u64>()
    };
    let plain = kv_bytes_of(false);
    let compressed = kv_bytes_of(true);
    assert!(
        compressed < plain,
        "cps should shrink shuffled bytes: {compressed} vs {plain}"
    );
}
