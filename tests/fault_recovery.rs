//! Fault injection + recovery: an iterative job is killed mid-run, the
//! world is restarted against the same checkpoint directory, and the
//! final result must match a fault-free execution while provably
//! skipping the already-checkpointed iterations.

use std::collections::HashMap;

use mimir::prelude::*;
use mimir_core::{run_iterative_with_recovery, typed, CheckpointStore};

const RANKS: usize = 4;
const TOTAL_ITERS: u32 = 12;
const CKPT_INTERVAL: u32 = 3;

/// One incarnation of the iterative job. `fault_at` kills rank 1 at the
/// given iteration (before it completes). Returns per-rank (final-state,
/// iterations-executed) on success.
#[allow(clippy::type_complexity)]
fn incarnation(
    ckpt_dir: std::path::PathBuf,
    fault_at: Option<u32>,
) -> std::thread::Result<Vec<(HashMap<u64, u64>, u32)>> {
    std::panic::catch_unwind(move || {
        run_world(RANKS, move |comm| {
            let rank = comm.rank();
            let pool = MemPool::unlimited("node", 64 * 1024);
            let io = IoModel::free();
            let ckpt = CheckpointStore::open(&ckpt_dir, rank, io.clone()).unwrap();
            let mut ctx = MimirContext::new(comm, pool, io, MimirConfig::default()).unwrap();

            let (state, executed) = run_iterative_with_recovery(
                &mut ctx,
                &ckpt,
                CKPT_INTERVAL,
                HashMap::<u64, u64>::new,
                |s| {
                    // Encode as flat (k, v) pairs, sorted for determinism.
                    let mut pairs: Vec<_> = s.iter().map(|(&k, &v)| (k, v)).collect();
                    pairs.sort_unstable();
                    let mut out = Vec::with_capacity(pairs.len() * 16);
                    for (k, v) in pairs {
                        out.extend_from_slice(&typed::enc_u64_pair(k, v));
                    }
                    out
                },
                |bytes| bytes.chunks_exact(16).map(typed::dec_u64_pair).collect(),
                move |ctx, state, iteration| {
                    if fault_at == Some(iteration) && ctx.rank() == 1 {
                        panic!("injected fault at iteration {iteration}");
                    }
                    // One MapReduce round per iteration: every rank emits
                    // (iteration-dependent key, 1); owners fold into state.
                    let res = ctx
                        .job()
                        .kv_meta(KvMeta::fixed(8, 8))
                        .out_meta(KvMeta::fixed(8, 8))
                        .map_partial_reduce(
                            &mut |em| {
                                for i in 0..50u64 {
                                    let key = u64::from(iteration) * 7 + i % 13;
                                    em.emit(&typed::enc_u64(key), &typed::enc_u64(1))?;
                                }
                                Ok(())
                            },
                            Box::new(|_k, a, b, o| {
                                o.extend_from_slice(&typed::enc_u64(
                                    typed::dec_u64(a) + typed::dec_u64(b),
                                ));
                            }),
                        )
                        .unwrap();
                    res.output.drain(|k, v| {
                        *state.entry(typed::dec_u64(k)).or_insert(0) += typed::dec_u64(v);
                        Ok(())
                    })?;
                    Ok(iteration + 1 >= TOTAL_ITERS)
                },
            )
            .unwrap();
            (state, executed)
        })
    })
}

fn merged(results: &[(HashMap<u64, u64>, u32)]) -> HashMap<u64, u64> {
    let mut out = HashMap::new();
    for (local, _) in results {
        for (&k, &v) in local {
            assert!(out.insert(k, v).is_none(), "key owned by two ranks");
        }
    }
    out
}

#[test]
fn crash_recovery_resumes_from_checkpoint_and_matches_fault_free() {
    let base = std::env::temp_dir().join(format!("mimir-ft-{}", std::process::id()));

    // Reference: fault-free run in its own checkpoint dir.
    let clean = incarnation(base.join("clean"), None).expect("clean run");
    let reference = merged(&clean);
    assert_eq!(clean[0].1, TOTAL_ITERS, "clean run executes everything");

    // Faulty run: rank 1 dies at iteration 7 (checkpoints exist for
    // iterations 2 and 5).
    let dir = base.join("faulty");
    let crash = incarnation(dir.clone(), Some(7));
    assert!(crash.is_err(), "the injected fault must abort the world");

    // Restart against the same checkpoint directory.
    let recovered = incarnation(dir, None).expect("recovery run");
    let result = merged(&recovered);
    assert_eq!(result, reference, "recovered result matches fault-free");

    // Recovery resumed after iteration 5: it executed 12 - 6 = 6
    // iterations instead of 12.
    let executed = recovered[0].1;
    assert_eq!(
        executed,
        TOTAL_ITERS - 6,
        "recovery must skip checkpointed work"
    );

    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn recovery_with_no_checkpoints_starts_fresh() {
    let base = std::env::temp_dir().join(format!("mimir-ft-fresh-{}", std::process::id()));
    let run = incarnation(base.join("fresh"), None).expect("run");
    assert_eq!(run[0].1, TOTAL_ITERS);
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn ranks_with_mismatched_checkpoints_roll_back_together() {
    // Rank 0 has a newer checkpoint than the others: the world must
    // restart from the *oldest* (coordinated rollback).
    let base = std::env::temp_dir().join(format!("mimir-ft-skew-{}", std::process::id()));
    let dir = base.join("skew");
    std::fs::create_dir_all(&dir).unwrap();

    // Seed a skewed checkpoint landscape by hand: all ranks have iter 2,
    // rank 0 additionally has iter 5.
    let io = IoModel::free();
    let empty_state: Vec<u8> = Vec::new();
    for rank in 0..RANKS {
        let store = CheckpointStore::open(&dir, rank, io.clone()).unwrap();
        store.save(2, &empty_state).unwrap();
        if rank == 0 {
            store.save(5, &empty_state).unwrap();
        }
    }

    let recovered = incarnation(dir, None).expect("recovery run");
    // Restart point is after iteration 2 → 12 - 3 = 9 iterations run.
    assert_eq!(recovered[0].1, TOTAL_ITERS - 3);
    std::fs::remove_dir_all(&base).ok();
}
